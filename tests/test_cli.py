"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces.catalog import Trace
from repro.traces.io import save_trace
from repro.traces.synthetic import conflict_series


def _save_conflict_trace(tmp_path):
    values = conflict_series(600, seed=9)
    trace = Trace(
        vm_id="CLI", metric="CPU_usedsec", interval_seconds=300,
        values=values, timestamps=np.arange(values.size, dtype=np.int64) * 300,
    )
    path = tmp_path / "trace.csv"
    save_trace(trace, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestArtifactCommands:
    def test_headline(self, capsys):
        assert main(["headline", "--folds", "2"]) == 0
        out = capsys.readouterr().out
        assert "valid traces: 52" in out

    def test_table2(self, capsys):
        assert main(["table2", "--folds", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "CPU_usedsec" in out

    def test_table2_other_vm(self, capsys):
        assert main(["table2", "--folds", "2", "--vm", "VM3"]) == 0
        assert "VM3" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3", "--folds", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "NaN" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "VM2/CPU_usedsec" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6", "--folds", "2"]) == 0
        assert "Figure 6" in capsys.readouterr().out


class TestTraceCommands:
    def test_generate_traces(self, tmp_path, capsys):
        assert main(["generate-traces", str(tmp_path / "out"), "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "wrote 60 traces" in out
        assert (tmp_path / "out" / "manifest.csv").exists()

    def test_assess_recommends_conflict_series(self, tmp_path, capsys):
        path = _save_conflict_trace(tmp_path)
        code = main(["assess", str(path)])
        out = capsys.readouterr().out
        assert "headroom" in out
        assert code == 0  # recommendation -> exit 0

    def test_frontier(self, tmp_path, capsys):
        path = _save_conflict_trace(tmp_path)
        assert main(["frontier", str(path)]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out and "LAR" in out

    def test_assess_rejects_white_noise(self, tmp_path, capsys):
        from repro.traces.synthetic import white_noise_series

        values = white_noise_series(600, mean=5.0, std=1.0, seed=8)
        trace = Trace(
            vm_id="CLI", metric="noise", interval_seconds=300,
            values=values,
            timestamps=np.arange(values.size, dtype=np.int64) * 300,
        )
        path = tmp_path / "noise.csv"
        save_trace(trace, path)
        # Non-recommendation signals through the exit code.
        assert main(["assess", str(path)]) == 1
        assert "prefer the static" in capsys.readouterr().out


class TestAblationCommand:
    def test_ablation_pool_sweep(self, capsys):
        assert main(["ablation", "pool", "--folds", "1"]) == 0
        out = capsys.readouterr().out
        assert "paper-pool" in out and "extended-pool" in out

    def test_ablation_unknown_knob(self):
        with pytest.raises(SystemExit):
            main(["ablation", "learning-rate"])


class TestFleetCommand:
    def test_fleet_simulation(self, capsys):
        assert main([
            "fleet", "--streams", "6", "--ticks", "120",
            "--workers", "1", "--max-rows", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Fleet: 6 streams" in out
        assert "stream-ticks/sec" in out
        assert "(3 more streams)" in out

    def test_fleet_rejects_bad_sizes(self, capsys):
        assert main(["fleet", "--streams", "0"]) == 2
        assert main(["fleet", "--workers", "0"]) == 2

    def test_fleet_telemetry_flag(self, capsys):
        assert main([
            "fleet", "--streams", "4", "--ticks", "120",
            "--workers", "1", "--telemetry",
        ]) == 0
        out = capsys.readouterr().out
        assert "Phase spans" in out
        assert "Events:" in out

    def test_fleet_stats_and_prom_out(self, capsys, tmp_path):
        import json

        stats = tmp_path / "telemetry.json"
        prom = tmp_path / "metrics.prom"
        assert main([
            "fleet", "--streams", "4", "--ticks", "120", "--workers", "1",
            "--stats-out", str(stats), "--prom-out", str(prom),
        ]) == 0
        doc = json.loads(stats.read_text())
        assert doc["telemetry"]["enabled"] is True
        assert doc["fleet"]["n_streams"] == 4
        from repro.obs import parse_prometheus_text

        parsed = parse_prometheus_text(prom.read_text())
        assert parsed[("repro_fleet_streams", ())] == 4.0


class TestObsCommand:
    def test_summary_format(self, capsys):
        assert main(["obs", "--streams", "4", "--ticks", "140"]) == 0
        out = capsys.readouterr().out
        assert "Phase spans" in out
        assert "tick.knn_query" in out
        assert "train.pca_eigh" in out
        assert "Events:" in out

    def test_prom_format_parses(self, capsys):
        assert main([
            "obs", "--streams", "4", "--ticks", "140", "--format", "prom",
        ]) == 0
        from repro.obs import parse_prometheus_text

        parsed = parse_prometheus_text(capsys.readouterr().out)
        assert parsed[("repro_fleet_streams", ())] == 4.0

    def test_json_format(self, capsys):
        import json

        assert main([
            "obs", "--streams", "4", "--ticks", "140", "--format", "json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["telemetry"]["enabled"] is True
        assert "repro_fleet_ticks_total" in doc["telemetry"]["metrics"]

    def test_rejects_bad_sizes(self, capsys):
        assert main(["obs", "--streams", "0"]) == 2

    def test_quantiles_table(self, capsys):
        assert main([
            "obs", "--streams", "4", "--ticks", "140", "--quantiles",
        ]) == 0
        out = capsys.readouterr().out
        assert "Phase latency quantiles" in out
        assert "p99" in out and "tick.knn_query" in out

    def test_trace_out_writes_chrome_trace(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        assert main([
            "obs", "--streams", "4", "--ticks", "140",
            "--trace-out", str(trace_path),
        ]) == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        doc = json.loads(trace_path.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "M" in phases
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all("ts" in e and "dur" in e for e in spans)
        assert {e["name"] for e in spans} & {"tick.audit", "train.ar_fit"}


class TestFleetFlightCommand:
    def test_flight_dir_arms_recorder(self, capsys, tmp_path):
        flight_dir = tmp_path / "flight"
        assert main([
            "fleet", "--streams", "4", "--ticks", "100", "--workers", "1",
            "--flight-dir", str(flight_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "flight recorder" in out
        # Either the storm tripped a dump or the recorder reports armed.
        assert "anomaly snapshot" in out or "armed" in out
