"""Bit-exactness and cost tests for the batched fleet tick engine.

The engine (:mod:`repro.serving.engine`) is an execution strategy, not a
model change: ``batched=True`` must produce *bit-identical* results to
the per-stream loop (``batched=False``) — same forecasts, same learned
labels, same QA audits, same classifier memory. These tests drive two
fleets through identical feeds, one per path, and compare everything.
"""

import numpy as np
import pytest

from repro.core.config import LARConfig
from repro.core.online import OnlineLARPredictor
from repro.learn.knn import KNNClassifier
from repro.learn.voting import _VECTOR_VOTE_MAX_K, majority_vote
from repro.serving import FleetConfig, PredictionFleet


def _drive(config, feed_fn, ticks, *, forecast_every=1, names=None):
    """Run batched and loop fleets through the same feed, asserting parity."""
    names = names or [f"s{i}" for i in range(6)]
    batched = PredictionFleet(config, streams=names)
    loop = PredictionFleet(config, streams=names)
    for t in range(ticks):
        vals = feed_fn(t, names)
        if forecast_every and t % forecast_every == 0:
            fa = batched.forecast_all(batched=True)
            fb = loop.forecast_all(batched=False)
            assert fa == fb, f"forecast mismatch at tick {t}"
        la = batched.ingest(vals, batched=True)
        lb = loop.ingest(vals, batched=False)
        assert la == lb, f"learned-label mismatch at tick {t}"
    return batched, loop


def _assert_same_state(batched, loop):
    """Deep equality of every per-stream serving artifact."""
    assert batched.metrics() == loop.metrics()
    for name in batched.stream_names:
        sa, sb = batched._streams[name], loop._streams[name]
        assert sa.qa.audits == sb.qa.audits, name
        pa, pb = sa.predictor, sb.predictor
        assert (pa is None) == (pb is None), name
        if pa is None:
            continue
        np.testing.assert_array_equal(
            pa.recent_history(), pb.recent_history(), err_msg=name
        )
        ca, cb = pa._classifier, pb._classifier
        np.testing.assert_array_equal(ca._X, cb._X, err_msg=name)
        np.testing.assert_array_equal(ca._y, cb._y, err_msg=name)


def _walk_feed(seed=0, drift=0.05, noise=0.15):
    rng = np.random.default_rng(seed)
    state = {}

    def feed(t, names):
        for n in names:
            state[n] = (
                state.get(n, float(rng.standard_normal()))
                + noise * float(rng.standard_normal())
                + drift
            )
        return dict(state)

    return feed


class TestBatchedParity:
    def test_forecasts_labels_audits_and_memory_match(self):
        config = FleetConfig(qa_threshold=4.0)
        batched, loop = _drive(config, _walk_feed(seed=1), 160)
        _assert_same_state(batched, loop)

    def test_parity_through_drift_and_retrains(self):
        """Regime shifts force QA breaches; parity must survive the
        retrain → new predictor → engine re-attach cycle."""
        config = FleetConfig(
            max_memory=24, qa_threshold=0.5, audit_window=16,
            audit_interval=4, retrain_window=96, history_limit=256,
        )
        rng = np.random.default_rng(2)
        state = {}

        def feed(t, names):
            drift = 0.6 if (t // 80) % 2 else 0.02
            for n in names:
                state[n] = (
                    state.get(n, 0.0)
                    + 0.2 * float(rng.standard_normal()) + drift
                )
            return dict(state)

        batched, loop = _drive(config, feed, 280)
        assert batched.metrics().total_retrains > 0  # the point of the test
        _assert_same_state(batched, loop)

    def test_parity_on_constant_streams_with_exact_ties(self):
        """Constant and alternating streams produce duplicate feature
        rows, i.e. exact distance ties — where nondeterministic top-k
        selection would first diverge."""
        config = FleetConfig(qa_threshold=50.0)

        def feed(t, names):
            out = {}
            for i, n in enumerate(names):
                out[n] = 1.0 if i % 2 == 0 else float(t % 2)
            return out

        batched, loop = _drive(config, feed, 150)
        _assert_same_state(batched, loop)

    def test_ingest_without_prior_forecast(self):
        """ingest must recompute stale pendings batched, identically."""
        config = FleetConfig(qa_threshold=4.0)
        batched, loop = _drive(
            config, _walk_feed(seed=3), 140, forecast_every=0
        )
        _assert_same_state(batched, loop)

    def test_subset_forecasts_match(self):
        config = FleetConfig(qa_threshold=4.0)
        names = [f"s{i}" for i in range(6)]
        batched = PredictionFleet(config, streams=names)
        loop = PredictionFleet(config, streams=names)
        feed = _walk_feed(seed=4)
        for t in range(130):
            vals = feed(t, names)
            subset = names[t % 3 :: 2]
            assert batched.forecast_all(subset, batched=True) == (
                loop.forecast_all(subset, batched=False)
            ), t
            assert batched.ingest(vals, batched=True) == (
                loop.ingest(vals, batched=False)
            ), t
        _assert_same_state(batched, loop)

    def test_parity_with_pca_disabled(self):
        config = FleetConfig(
            lar=LARConfig(n_components=None), qa_threshold=4.0
        )
        batched, loop = _drive(config, _walk_feed(seed=5), 120)
        _assert_same_state(batched, loop)

    def test_ineligible_pool_falls_back_identically(self):
        """Extended-pool streams can't be stacked; the batched entry
        points must transparently serve them through the loop."""
        config = FleetConfig(
            lar=LARConfig(extended_pool=True), qa_threshold=4.0
        )
        batched, loop = _drive(config, _walk_feed(seed=6), 110)
        engine = batched._engine
        assert engine is not None
        assert not any(engine.serves(n) for n in batched.stream_names)
        _assert_same_state(batched, loop)

    def test_stream_add_remove_mid_serve(self):
        config = FleetConfig(qa_threshold=4.0)
        names = [f"s{i}" for i in range(5)]
        batched = PredictionFleet(config, streams=names)
        loop = PredictionFleet(config, streams=names)
        feed = _walk_feed(seed=7)
        live = list(names)
        for t in range(170):
            if t == 90:
                for fleet in (batched, loop):
                    fleet.remove_stream("s1")
                    fleet.add_stream("s9")
                live.remove("s1")
                live.append("s9")
            vals = {n: v for n, v in feed(t, live).items() if n in live}
            assert batched.forecast_all(batched=True) == (
                loop.forecast_all(batched=False)
            ), t
            assert batched.ingest(vals, batched=True) == (
                loop.ingest(vals, batched=False)
            ), t
        _assert_same_state(batched, loop)

    def test_save_load_roundtrip_continues_identically(self, tmp_path):
        config = FleetConfig(qa_threshold=4.0)
        batched, loop = _drive(config, _walk_feed(seed=8), 120)
        batched.save(tmp_path / "fleet")
        restored = PredictionFleet.load(tmp_path / "fleet")
        feed = _walk_feed(seed=9)
        names = list(restored.stream_names)
        for t in range(40):
            vals = feed(t, names)
            assert restored.forecast_all(batched=True) == (
                loop.forecast_all(batched=False)
            ), t
            assert restored.ingest(vals, batched=True) == (
                loop.ingest(vals, batched=False)
            ), t
        _assert_same_state(restored, loop)


class TestBatchedCost:
    """Per-tick cost guards: the batched path must not degenerate into
    the per-stream loop it replaces."""

    def _warm_fleet(self, n_streams=8, ticks=70):
        config = FleetConfig(qa_threshold=50.0)
        names = [f"s{i}" for i in range(n_streams)]
        fleet = PredictionFleet(config, streams=names)
        feed = _walk_feed(seed=10)
        for t in range(ticks):
            fleet.ingest(feed(t, names))
        assert fleet.metrics().n_trained == n_streams
        return fleet, feed, names

    def test_batched_forecast_makes_no_per_stream_calls(self, monkeypatch):
        fleet, feed, names = self._warm_fleet()
        calls = {"forecast": 0, "kneighbors": 0}
        orig_fc = OnlineLARPredictor.forecast
        orig_kn = KNNClassifier.kneighbors

        def counting_fc(self):
            calls["forecast"] += 1
            return orig_fc(self)

        def counting_kn(self, X):
            calls["kneighbors"] += 1
            return orig_kn(self, X)

        monkeypatch.setattr(OnlineLARPredictor, "forecast", counting_fc)
        monkeypatch.setattr(KNNClassifier, "kneighbors", counting_kn)
        out = fleet.forecast_all(batched=True)
        assert len(out) == len(names)
        assert calls == {"forecast": 0, "kneighbors": 0}

    def test_batched_ingest_makes_no_per_stream_queries(self, monkeypatch):
        fleet, feed, names = self._warm_fleet()
        fleet.forecast_all(batched=True)
        calls = {"n": 0}

        def counting(self, *a, **kw):
            calls["n"] += 1
            raise AssertionError("per-stream query on the batched path")

        monkeypatch.setattr(KNNClassifier, "kneighbors", counting)
        monkeypatch.setattr(OnlineLARPredictor, "forecast", counting)
        monkeypatch.setattr(OnlineLARPredictor, "observe", counting)
        learned = fleet.ingest(feed(99, names), batched=True)
        assert set(learned) == set(names)
        assert calls["n"] == 0

    def test_engine_memory_ring_stays_synced_incrementally(self):
        """Steady-state ticks must not trigger full memory reloads."""
        fleet, feed, names = self._warm_fleet()
        fleet.forecast_all(batched=True)
        fleet.ingest(feed(98, names), batched=True)
        engine = fleet._engine
        reloads = {"n": 0}
        orig = type(engine)._reload_memory

        def counting_reload(self, entry):
            reloads["n"] += 1
            return orig(self, entry)

        type(engine)._reload_memory = counting_reload
        try:
            for t in range(100, 110):
                fleet.forecast_all(batched=True)
                fleet.ingest(feed(t, names), batched=True)
        finally:
            type(engine)._reload_memory = orig
        assert reloads["n"] == 0


class TestGatherFree:
    """The gather-free fast path (views + recycled scratch + stacked QA
    + bulk learn) must be bit-identical to the legacy engine mode it
    replaces, and must actually stop allocating in steady state."""

    def _drive_pair(self, ticks=120, n_streams=6, seed=3):
        config = FleetConfig(qa_threshold=4.0)
        names = [f"s{i}" for i in range(n_streams)]
        fast = PredictionFleet(config, streams=names)
        legacy = PredictionFleet(config, streams=names)
        legacy._get_engine().gather_free = False
        feed = _walk_feed(seed=seed)
        for t in range(ticks):
            vals = feed(t, names)
            fa = fast.forecast_all(batched=True)
            fb = legacy.forecast_all(batched=True)
            assert fa == fb, f"forecast mismatch at tick {t}"
            la = fast.ingest(vals, batched=True)
            lb = legacy.ingest(vals, batched=True)
            assert la == lb, f"learned-label mismatch at tick {t}"
            fast.run_pending_retrains()
            legacy.run_pending_retrains()
        return fast, legacy

    def test_legacy_mode_is_bit_identical(self):
        fast, legacy = self._drive_pair()
        _assert_same_state(fast, legacy)
        for name in fast.stream_names:
            qa_a = fast._streams[name].qa
            qa_b = legacy._streams[name].qa
            assert tuple(qa_a._sq_errors) == tuple(qa_b._sq_errors), name
            assert qa_a._sq_sum == qa_b._sq_sum, name
            assert qa_a.state_dict() == qa_b.state_dict(), name

    def test_contiguous_rows_select_as_slice(self):
        fleet = PredictionFleet(
            FleetConfig(qa_threshold=50.0), streams=["a", "b", "c"]
        )
        feed = _walk_feed(seed=5)
        for t in range(70):
            fleet.ingest(feed(t, ["a", "b", "c"]), batched=True)
        engine = fleet._engine
        full = np.arange(len(engine._rows), dtype=np.intp)
        assert engine._selector(full) == slice(0, len(engine._rows))
        gappy = np.array([0, 2], dtype=np.intp)
        assert engine._selector(gappy) is gappy
        engine.gather_free = False
        assert engine._selector(full) is full

    def test_steady_state_tick_recycles_scratch(self):
        """After one warm tick, further ticks reuse the same scratch
        arrays — the allocation-free property the tentpole claims.

        ``max_memory`` bounds the memories so the mirror capacity (and
        with it the distance-kernel scratch shapes) has plateaued by
        the time the check runs.
        """
        config = FleetConfig(qa_threshold=50.0, max_memory=32)
        names = [f"s{i}" for i in range(8)]
        fleet = PredictionFleet(config, streams=names)
        feed = _walk_feed(seed=7)
        for t in range(70):
            fleet.forecast_all(batched=True)
            fleet.ingest(feed(t, names), batched=True)
        engine = fleet._engine
        before = {k: id(v) for k, v in engine._scratch.items()}
        assert before  # the warm ticks populated the scratch table
        for t in range(70, 75):
            fleet.forecast_all(batched=True)
            fleet.ingest(feed(t, names), batched=True)
        after = {k: id(v) for k, v in engine._scratch.items()}
        assert before == after

    def test_qa_ineligible_stream_falls_back(self):
        """A stream whose assuror is a subclass must stay on the
        per-stream loop — and still produce identical results."""
        from repro.core.qa import PredictionQualityAssuror

        class CustomQA(PredictionQualityAssuror):
            pass

        config = FleetConfig(qa_threshold=4.0)
        names = ["a", "b", "c"]
        fast = PredictionFleet(config, streams=names)
        loop = PredictionFleet(config, streams=names)
        for fleet in (fast, loop):
            state = fleet._streams["b"]
            custom = CustomQA(
                config.qa_threshold,
                audit_window=config.audit_window,
                audit_interval=config.audit_interval,
                on_breach=state.qa.on_breach,
            )
            state.qa = custom
        feed = _walk_feed(seed=9)
        for t in range(120):
            vals = feed(t, names)
            fa = fast.forecast_all(batched=True)
            fb = loop.forecast_all(batched=False)
            assert fa == fb
            assert fast.ingest(vals, batched=True) == loop.ingest(
                vals, batched=False
            )
        assert not fast._engine.serves("b")
        assert fast._engine.serves("a")
        _assert_same_state(fast, loop)


class TestVectorizedMajorityVote:
    def _reference(self, labels):
        """The original scalar rule: max count, then earliest first
        occurrence (== nearest neighbour among tied counts)."""
        out = np.empty(labels.shape[0], dtype=np.int64)
        for i, row in enumerate(labels):
            values, counts = np.unique(row, return_counts=True)
            best = counts.max()
            tied = values[counts == best]
            if tied.shape[0] == 1:
                out[i] = tied[0]
            else:
                first = min(
                    np.flatnonzero(row == v)[0] for v in tied
                )
                out[i] = row[first]
        return out

    def test_matches_reference_on_random_votes(self):
        rng = np.random.default_rng(11)
        for k in (1, 3, 5, 9):
            labels = rng.integers(1, 4, size=(500, k))
            np.testing.assert_array_equal(
                majority_vote(labels), self._reference(labels)
            )

    def test_large_k_fallback_matches(self):
        rng = np.random.default_rng(12)
        k = _VECTOR_VOTE_MAX_K + 3
        labels = rng.integers(1, 6, size=(40, k))
        np.testing.assert_array_equal(
            majority_vote(labels), self._reference(labels)
        )
