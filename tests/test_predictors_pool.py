"""Unit tests for the predictor pool and the registry."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, UnknownPredictorError
from repro.predictors.ar import ARPredictor
from repro.predictors.last import LastValuePredictor
from repro.predictors.pool import PredictorPool
from repro.predictors.registry import available_predictors, make_predictor, register_predictor
from repro.predictors.sw_avg import SlidingWindowAveragePredictor
from repro.traces.synthetic import ar1_series
from repro.util.windows import frame_with_targets


@pytest.fixture
def fitted_pool():
    pool = PredictorPool.paper_pool(ar_order=4)
    pool.fit(ar1_series(300, phi=0.8, seed=0))
    return pool


class TestConstruction:
    def test_paper_pool_labels(self):
        pool = PredictorPool.paper_pool()
        assert pool.names == ("LAST", "AR", "SW_AVG")
        assert pool.label_of("LAST") == 1
        assert pool.label_of("AR") == 2
        assert pool.label_of("SW_AVG") == 3

    def test_extended_pool_contains_paper_pool(self):
        pool = PredictorPool.extended_pool(ar_order=6)
        assert set(("LAST", "AR", "SW_AVG")).issubset(pool.names)
        assert len(pool) == 10

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PredictorPool([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            PredictorPool([LastValuePredictor(), LastValuePredictor()])

    def test_non_predictor_rejected(self):
        with pytest.raises(ConfigurationError):
            PredictorPool([LastValuePredictor(), "AR"])


class TestLookup:
    def test_by_name_and_label_agree(self, fitted_pool):
        for name in fitted_pool.names:
            label = fitted_pool.label_of(name)
            assert fitted_pool.name_of(label) == name
            assert fitted_pool.by_label(label) is fitted_pool.by_name(name)

    def test_unknown_name(self, fitted_pool):
        with pytest.raises(UnknownPredictorError):
            fitted_pool.by_name("ARIMA")

    def test_unknown_label(self, fitted_pool):
        with pytest.raises(UnknownPredictorError):
            fitted_pool.by_label(0)
        with pytest.raises(UnknownPredictorError):
            fitted_pool.by_label(4)


class TestBatchOperations:
    def test_predict_all_shape_and_columns(self, fitted_pool):
        frames = np.random.default_rng(1).standard_normal((9, 4))
        out = fitted_pool.predict_all(frames)
        assert out.shape == (9, 3)
        np.testing.assert_array_equal(out[:, 0], frames[:, -1])  # LAST column
        np.testing.assert_allclose(out[:, 2], frames.mean(axis=1))  # SW column

    def test_errors_are_absolute(self, fitted_pool):
        frames = np.zeros((2, 4))
        targets = np.array([1.0, -1.0])
        err = fitted_pool.errors(frames, targets)
        assert (err >= 0.0).all()
        assert err[0, 0] == pytest.approx(1.0)  # LAST predicts 0

    def test_errors_length_mismatch(self, fitted_pool):
        with pytest.raises(ConfigurationError):
            fitted_pool.errors(np.zeros((3, 4)), np.zeros(2))

    def test_best_labels_per_step(self, fitted_pool):
        frames = np.array([[0.0, 0.0, 0.0, 2.0], [0.0, 0.0, 0.0, 0.0]])
        # Target equal to last value -> LAST exact -> label 1.
        labels = fitted_pool.best_labels(frames, np.array([2.0, 0.0]))
        assert labels[0] == 1

    def test_best_labels_tie_goes_to_pool_order(self):
        pool = PredictorPool([LastValuePredictor(), SlidingWindowAveragePredictor()])
        frames = np.full((3, 4), 5.0)
        targets = np.full(3, 5.0)  # both exact -> tie -> LAST (label 1)
        np.testing.assert_array_equal(pool.best_labels(frames, targets), 1)

    def test_smoothed_labels_majority(self, fitted_pool):
        """With a large smoothing window every step gets the same label
        (whoever has the lowest overall MSE)."""
        series = ar1_series(200, phi=0.9, seed=2)
        F, y = frame_with_targets(series, 4)
        labels = fitted_pool.best_labels(F, y, smooth_window=10_000)
        assert np.unique(labels).size == 1

    def test_smooth_window_validated(self, fitted_pool):
        with pytest.raises(ConfigurationError):
            fitted_pool.best_labels(np.zeros((2, 4)), np.zeros(2), smooth_window=0)

    def test_predict_with_labels_routing(self, fitted_pool):
        frames = np.random.default_rng(3).standard_normal((6, 4))
        targets = np.zeros(6)
        labels = np.array([1, 1, 2, 3, 3, 3])
        out = fitted_pool.predict_with_labels(frames, labels)
        all_preds = fitted_pool.predict_all(frames)
        for i, lab in enumerate(labels):
            assert out[i] == pytest.approx(all_preds[i, lab - 1])

    def test_predict_with_labels_shape_check(self, fitted_pool):
        with pytest.raises(ConfigurationError):
            fitted_pool.predict_with_labels(np.zeros((3, 4)), np.array([1, 2]))


class TestFitReset:
    def test_fit_returns_self(self):
        pool = PredictorPool.paper_pool(ar_order=3)
        assert pool.fit(ar1_series(100, seed=4)) is pool

    def test_reset_unfits_ar(self, fitted_pool):
        fitted_pool.reset()
        ar = fitted_pool.by_name("AR")
        assert not ar.is_fitted


class TestRegistry:
    def test_builtins_present(self):
        names = available_predictors()
        for expected in ("LAST", "AR", "SW_AVG", "EWMA", "MEDIAN", "TENDENCY",
                         "POLYFIT", "TREND", "ARI", "ADAPT_AVG"):
            assert expected in names

    def test_make_with_kwargs(self):
        ar = make_predictor("AR", order=7)
        assert isinstance(ar, ARPredictor)
        assert ar.order == 7

    def test_unknown_name(self):
        with pytest.raises(UnknownPredictorError):
            make_predictor("PROPHET")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            register_predictor("LAST", LastValuePredictor)

    def test_register_custom_and_use(self):
        class Constant(LastValuePredictor):
            name = "CONST42_TEST"

            def _predict_batch(self, frames):
                return np.full(frames.shape[0], 42.0)

        register_predictor("CONST42_TEST", Constant)
        p = make_predictor("CONST42_TEST")
        assert p.predict_next([1.0]) == 42.0

    def test_factory_must_return_predictor(self):
        register_predictor("BROKEN_TEST", lambda: "not a predictor")
        with pytest.raises(ConfigurationError):
            make_predictor("BROKEN_TEST")
