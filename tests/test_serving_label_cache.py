"""Parity and property suite for the incremental label cache.

The label cache (``repro.serving.label_cache`` + ``repro.core.relabel``)
is an execution accelerator, not a model change: a spliced relabel must
be **bit-identical** to relabelling the same window from scratch under
the same frozen parameters — same squared pool errors, same smoothed
labels, same classifier memory, same forecasts — on both the per-stream
and the batched path. This suite pins that contract:

* kernel bit tests: :func:`windowed_label_sums` equals a strict
  left-to-right scalar accumulation, and its bits are independent of
  the ``[lo, hi)`` range requested — the property that makes boundary
  recomputation safe;
* hypothesis splice-parity over overlapping, disjoint, and shrinking
  window geometries, per-stream and batched vs loop;
* fleet-level storm parity: ``label_cache=True`` and ``False`` fleets
  produce identical forecasts tick for tick;
* invalidation: config/params fingerprint mismatches miss (and drop the
  stale tail), stream removal drops the tail;
* persistence: cache tails survive a save/load round trip and the
  restored fleet keeps splicing.
"""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LARConfig
from repro.core.online import OnlineLARPredictor
from repro.core.relabel import (
    CachedLabels,
    plan_splice,
    relabel_group,
    windowed_label_sums,
)
from repro.parallel.pool_exec import ParallelConfig
from repro.serving import (
    BatchedTrainEngine,
    FleetConfig,
    LabelCache,
    PredictionFleet,
    config_fingerprint,
    params_fingerprint,
)
from repro.traces.synthetic import ar1_series

SERIAL = ParallelConfig(max_workers=1)


def _fleet_config(**overrides):
    defaults = dict(
        lar=LARConfig(window=5),
        min_train=20,
        qa_threshold=2.0,
        audit_window=8,
        audit_interval=4,
        retrain_window=40,
        parallel=SERIAL,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _memory_rows(predictor):
    clf = predictor._classifier
    return clf._X.copy(), clf._y.copy(), dict(clf._label_counts)


def _assert_results_identical(a, b):
    """Two RelabelResults carry the same bits everywhere it matters."""
    assert np.array_equal(a.sq, b.sq)
    assert np.array_equal(a.labels, b.labels)
    xa, ya, ca = _memory_rows(a.predictor)
    xb, yb, cb = _memory_rows(b.predictor)
    assert np.array_equal(xa, xb)
    assert np.array_equal(ya, yb)
    assert ca == cb
    fa, fb = a.predictor.forecast(), b.predictor.forecast()
    assert fa.value == fb.value
    assert fa.predictor_label == fb.predictor_label


class TestWindowedLabelSums:
    def test_matches_scalar_left_to_right_accumulation(self):
        rng = np.random.default_rng(0)
        sq = rng.random((2, 40, 3))
        smooth = 7
        half = smooth // 2
        out = np.empty_like(sq)
        windowed_label_sums(sq, smooth, 0, 40, out)
        for s in range(2):
            for i in range(40):
                for m in range(3):
                    acc = 0.0
                    for j in range(max(i - half, 0), min(i + smooth - half, 40)):
                        acc += sq[s, j, m]
                    assert out[s, i, m] == acc

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        smooth=st.integers(min_value=1, max_value=12),
        bounds=st.tuples(
            st.integers(min_value=0, max_value=29),
            st.integers(min_value=1, max_value=30),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_subrange_bits_independent_of_requested_range(
        self, seed, smooth, bounds
    ):
        """out[:, i] depends only on the window contents — computing a
        subrange must reproduce the full range's bits exactly (the
        property splice boundary recomputation relies on)."""
        lo, hi = min(bounds), max(bounds)
        if lo == hi:
            hi = lo + 1
        sq = np.random.default_rng(seed).random((2, 30, 3))
        full = np.empty_like(sq)
        windowed_label_sums(sq, smooth, 0, 30, full)
        partial = np.full_like(sq, np.nan)
        windowed_label_sums(sq, smooth, lo, hi, partial)
        assert np.array_equal(partial[:, lo:hi], full[:, lo:hi])


class TestPlanSplice:
    def test_backward_shift_is_a_miss(self):
        assert plan_splice(10, 50, 5, 50, 5) is None

    def test_disjoint_windows_are_a_miss(self):
        assert plan_splice(0, 50, 50, 50, 5) is None
        assert plan_splice(0, 50, 80, 50, 5) is None

    def test_same_start_reuses_leading_edge_labels(self):
        plan = plan_splice(0, 50, 0, 60, 6)
        assert plan.delta == 0 and plan.reuse == 50
        # Shared left edge: cached rows clipped identically, so label
        # reuse starts at frame 0; only the right boundary recomputes.
        assert plan.label_lo == 0
        assert plan.label_hi == 50 - (6 - 3)

    def test_shifted_window_recomputes_both_boundaries(self):
        plan = plan_splice(0, 50, 10, 50, 6)
        assert plan.delta == 10 and plan.reuse == 40
        assert plan.label_lo == 3
        assert plan.label_hi == 40 - 3

    def test_shrinking_window_caps_reuse(self):
        plan = plan_splice(0, 50, 5, 20, 4)
        assert plan.reuse == 20  # the whole (smaller) new window

    @given(
        old_start=st.integers(min_value=0, max_value=100),
        n_old=st.integers(min_value=1, max_value=100),
        delta=st.integers(min_value=-50, max_value=150),
        n_new=st.integers(min_value=1, max_value=100),
        smooth=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounds_are_always_consistent(
        self, old_start, n_old, delta, n_new, smooth
    ):
        plan = plan_splice(old_start, n_old, old_start + delta, n_new, smooth)
        if plan is None:
            assert delta < 0 or min(n_old - delta, n_new) <= 0
            return
        assert 0 <= plan.label_lo <= plan.label_hi <= plan.reuse
        assert 0 < plan.reuse <= min(n_old - plan.delta, n_new)
        # Cached slice indices stay inside the cached tail.
        assert plan.delta + plan.reuse <= n_old


class TestPerStreamSpliceParity:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        stride=st.integers(min_value=0, max_value=100),
        n_new=st.integers(min_value=30, max_value=80),
        smooth=st.sampled_from([1, 2, 6, 10]),
    )
    @settings(max_examples=25, deadline=None)
    def test_spliced_relabel_bit_identical_to_full(
        self, seed, stride, n_new, smooth
    ):
        """Overlapping, disjoint, and shrinking geometries all reduce
        to the same bits as a cold full relabel."""
        series = 10.0 + 3.0 * ar1_series(200, phi=0.85, seed=seed)
        predictor = OnlineLARPredictor(
            LARConfig(window=5), label_smoothing=smooth
        ).train(series[:80])
        warm = predictor.relabel(series[:80], start=0)
        tail = CachedLabels(0, warm.sq, warm.labels)
        predictor = warm.predictor
        window = series[stride : stride + n_new]
        full = predictor.relabel(window, start=stride)
        spliced = predictor.relabel(window, start=stride, cached=tail)
        _assert_results_identical(full, spliced)
        assert full.reused == 0
        plan = plan_splice(0, 75, stride, n_new - 5, smooth)
        if plan is None:
            assert spliced.reused == 0
        else:
            assert spliced.reused == plan.reuse
            assert spliced.labels_reused == plan.label_hi - plan.label_lo

    def test_relabel_returns_a_new_predictor_with_frozen_params(self):
        series = 10.0 + 3.0 * ar1_series(120, phi=0.85, seed=3)
        predictor = OnlineLARPredictor(LARConfig(window=5)).train(series[:80])
        result = predictor.relabel(series[40:120], start=40)
        assert result.predictor is not predictor
        old_norm = predictor._runner.pipeline.normalizer
        new_norm = result.predictor._runner.pipeline.normalizer
        assert new_norm.mean == old_norm.mean
        assert new_norm.std == old_norm.std
        old_ar = predictor._runner.pool[1]
        new_ar = result.predictor._runner.pool[1]
        assert np.array_equal(new_ar.coefficients_, old_ar.coefficients_)
        assert params_fingerprint(result.predictor) == params_fingerprint(
            predictor
        )


class TestBatchedMatchesPerStream:
    def test_mixed_geometry_burst_bit_identical_to_loop(self):
        """One burst mixing cache hits with different deltas, a miss,
        a disjoint tail, and two window lengths: the batched engine
        groups them by (length, geometry) and every stream still
        carries the per-stream bits."""
        config = _fleet_config(label_smoothing=6, retrain_window=None)
        engine = BatchedTrainEngine(config)
        n = 6
        series = [
            10.0 + 3.0 * ar1_series(220, phi=0.85, seed=s) for s in range(n)
        ]
        predictors = engine.train_many([s[:80] for s in series])
        warm = engine.relabel_many(
            [(predictors[i], series[i][:80], 0, None) for i in range(n)]
        )
        tails = [CachedLabels(0, r.sq, r.labels) for r in warm]
        predictors = [r.predictor for r in warm]
        tasks = [
            (predictors[0], series[0][20:100], 20, tails[0]),   # delta 20
            (predictors[1], series[1][40:120], 40, tails[1]),   # delta 40
            (predictors[2], series[2][20:100], 20, None),       # miss
            (predictors[3], series[3][100:180], 100, tails[3]),  # disjoint
            (predictors[4], series[4][20:80], 20, tails[4]),    # shorter
            (predictors[5], series[5][20:100], 20, tails[5]),   # delta 20
        ]
        batched = engine.relabel_many(tasks)
        for result, (predictor, window, start, cached) in zip(batched, tasks):
            loop = predictor.relabel(window, start=start, cached=cached)
            _assert_results_identical(result, loop)
        assert batched[0].reused > 0 and batched[5].reused > 0
        assert batched[2].reused == 0
        assert batched[3].reused == 0  # no shared frames

    def test_group_rows_independent_of_stack_size(self):
        """Stream-count position independence: a stream's (sq, labels)
        rows carry the same bits whether it is relabelled alone or
        stacked with others (the claim the relabel kernels are built
        on — the stacked-matmul AR kernel notably lacks it)."""
        predictors = []
        histories = []
        for s in range(3):
            series = 10.0 + 3.0 * ar1_series(90, phi=0.85, seed=100 + s)
            predictors.append(
                OnlineLARPredictor(LARConfig(window=5)).train(series)
            )
            histories.append(series)
        def params(subset):
            runners = [predictors[i]._runner for i in subset]
            return dict(
                norm_means=np.array(
                    [r.pipeline.normalizer.mean for r in runners]
                ),
                norm_stds=np.array(
                    [r.pipeline.normalizer.std for r in runners]
                ),
                ar_phi=np.stack([r.pool[1].coefficients_ for r in runners]),
                ar_means=np.array([r.pool[1].mean_ for r in runners]),
                window=5,
                smooth=10,
                sw_window=runners[0].pool[2].window,
            )
        stacked = relabel_group(
            np.stack([histories[i] for i in range(3)]), **params(range(3))
        )
        for s in range(3):
            alone = relabel_group(histories[s][None], **params([s]))
            assert np.array_equal(stacked[2][s], alone[2][0])  # sq
            assert np.array_equal(stacked[3][s], alone[3][0])  # labels


def _drifting_feeds(names, n):
    """Two drift storms per stream, each a run of abrupt level shifts
    a few audit intervals apart: every jump re-breaches the QA, so a
    storm schedules a *cluster* of closely-spaced retrains over heavily
    overlapping windows — exactly the access pattern the cache serves.
    (A slow ramp would not do: the online learning path absorbs it
    without ever breaching.)"""
    feeds = {}
    third = n // 3
    for i, name in enumerate(names):
        series = 10.0 + 2.0 * ar1_series(n, phi=0.9, seed=7 * i + 1)
        for storm in (third, 2 * third):
            for j in range(3):
                series[storm + 10 * j :] += 15.0
        feeds[name] = series
    return feeds


def _serve(fleet, feeds, ticks):
    out = []
    for t in range(ticks):
        out.append(
            {n: (fc.value, fc.predictor_label)
             for n, fc in fleet.forecast_all().items()}
        )
        fleet.ingest({name: feeds[name][t] for name in fleet.stream_names})
    return out


def _serve_until_cached(fleet, feeds, max_ticks, names=None):
    """Serve ticks until the named streams (default: any one stream)
    hold a cache tail; returns the next tick index. Tails are transient
    state — a later cold retrain (low-overlap window) legitimately
    drops them — so lifecycle tests act at a moment the cache is known
    to be populated instead of assuming a storm's tails survive to an
    arbitrary endpoint."""
    for t in range(max_ticks):
        fleet.forecast_all()
        fleet.ingest({name: feeds[name][t] for name in fleet.stream_names})
        if names is None:
            if len(fleet._label_cache) > 0:
                return t + 1
        elif all(
            fleet._label_cache.tail(name) is not None for name in names
        ):
            return t + 1
    pytest.fail("the storm never populated the label cache")


class TestFleetStormParity:
    def test_cache_on_equals_cache_off_tick_for_tick(self):
        names = ["a", "b", "c"]
        ticks = 150
        feeds = _drifting_feeds(names, ticks)
        on = PredictionFleet(
            _fleet_config(label_cache=True), streams=names, telemetry=True
        )
        off = PredictionFleet(
            _fleet_config(label_cache=False), streams=names
        )
        assert _serve(on, feeds, ticks) == _serve(off, feeds, ticks)
        retrains = on.metrics().total_retrains
        assert retrains == off.metrics().total_retrains
        assert retrains > 0
        # The parity is only meaningful if the cache actually spliced.
        snap = on.telemetry.registry.snapshot()
        hits = snap["repro_fleet_label_cache_hits_total"]["series"][0]["value"]
        assert hits > 0

    def test_batched_equals_loop_with_cache_on(self):
        names = ["a", "b", "c"]
        ticks = 150
        feeds = _drifting_feeds(names, ticks)
        batched = PredictionFleet(_fleet_config(), streams=names)
        loop = PredictionFleet(_fleet_config(), streams=names)
        out_b = []
        out_l = []
        for t in range(ticks):
            out_b.append(
                {n: fc.value for n, fc in batched.forecast_all().items()}
            )
            out_l.append(
                {n: fc.value
                 for n, fc in loop.forecast_all(batched=False).items()}
            )
            values = {name: feeds[name][t] for name in names}
            batched.ingest(values)
            loop.ingest(values, batched=False)
        assert out_b == out_l

    def test_policy_off_refits_cold_every_time(self):
        """min_relabel_overlap=None is the legacy behavior: no stream
        ever relabels incrementally and the cache stays empty."""
        names = ["a", "b"]
        ticks = 150
        feeds = _drifting_feeds(names, ticks)
        fleet = PredictionFleet(
            _fleet_config(min_relabel_overlap=None),
            streams=names,
            telemetry=True,
        )
        _serve(fleet, feeds, ticks)
        assert fleet.metrics().total_retrains > 0
        assert len(fleet._label_cache) == 0
        snap = fleet.telemetry.registry.snapshot()
        assert (
            snap["repro_fleet_label_cache_hits_total"]["series"][0]["value"]
            == 0
        )


class TestInvalidation:
    def _tail_args(self):
        rng = np.random.default_rng(1)
        return rng.random((20, 3)), rng.integers(1, 4, size=20)

    def test_lookup_on_empty_cache_is_a_cold_miss(self):
        cache = LabelCache()
        assert cache.lookup("s", "cfg", "params") == (None, "cold")

    def test_config_fingerprint_mismatch_drops_the_tail(self):
        cache = LabelCache()
        sq, labels = self._tail_args()
        cache.store("s", 10, sq, labels, "cfg-a", "p-1")
        cached, reason = cache.lookup("s", "cfg-b", "p-1")
        assert cached is None and reason == "config"
        assert cache.tail("s") is None  # stale rows can never splice

    def test_params_fingerprint_mismatch_drops_the_tail(self):
        cache = LabelCache()
        sq, labels = self._tail_args()
        cache.store("s", 10, sq, labels, "cfg", "p-1")
        cached, reason = cache.lookup("s", "cfg", "p-2")
        assert cached is None and reason == "params"
        assert cache.tail("s") is None

    def test_matching_lookup_returns_the_stored_rows(self):
        cache = LabelCache()
        sq, labels = self._tail_args()
        cache.store("s", 10, sq, labels, "cfg", "p-1")
        cached, reason = cache.lookup("s", "cfg", "p-1")
        assert reason is None
        assert cached.start == 10
        assert np.array_equal(cached.sq, sq)
        assert np.array_equal(cached.labels, labels)

    def test_config_fingerprint_tracks_labelling_relevant_knobs(self):
        base = _fleet_config()
        fp = config_fingerprint(base)
        assert fp == config_fingerprint(_fleet_config())  # deterministic
        assert fp != config_fingerprint(_fleet_config(label_smoothing=11))
        assert fp != config_fingerprint(
            _fleet_config(lar=LARConfig(window=6))
        )
        assert fp != config_fingerprint(_fleet_config(lar=LARConfig(k=5)))
        assert fp != config_fingerprint(
            _fleet_config(lar=LARConfig(window=5, ar_order=3))
        )
        # Knobs that do not affect labelling leave the fingerprint alone.
        assert fp == config_fingerprint(_fleet_config(qa_threshold=9.0))
        assert fp == config_fingerprint(_fleet_config(max_memory=None))

    def test_params_fingerprint_tracks_the_frozen_fit(self):
        series = 10.0 + 3.0 * ar1_series(120, phi=0.85, seed=5)
        a = OnlineLARPredictor(LARConfig(window=5)).train(series[:80])
        same = OnlineLARPredictor(LARConfig(window=5)).train(series[:80])
        other = OnlineLARPredictor(LARConfig(window=5)).train(series[40:120])
        assert params_fingerprint(a) == params_fingerprint(same)
        assert params_fingerprint(a) != params_fingerprint(other)
        # A relabel keeps the frozen parameters, so the fingerprint
        # survives it — the property that lets tails roll forward.
        relabelled = a.relabel(series[20:100], start=20).predictor
        assert params_fingerprint(relabelled) == params_fingerprint(a)

    def test_stream_removal_drops_the_tail(self):
        names = ["a", "b"]
        feeds = _drifting_feeds(names, 150)
        fleet = PredictionFleet(_fleet_config(), streams=names)
        _serve_until_cached(fleet, feeds, 150, names=["a"])
        assert fleet._label_cache.tail("a") is not None
        fleet.remove_stream("a")
        assert fleet._label_cache.tail("a") is None
        fleet.add_stream("a")
        # The re-added stream starts from scratch: no fit window on
        # record, so its next (re)train refits cold.
        assert fleet._streams["a"].params_window is None


class TestCachePersistence:
    def _stormed_fleet(self, names, feeds):
        """A fleet served to a moment the cache holds at least one tail."""
        fleet = PredictionFleet(_fleet_config(), streams=names)
        tick = _serve_until_cached(fleet, feeds, 150)
        return fleet, tick

    def test_tails_survive_the_round_trip(self):
        names = ["a", "b"]
        feeds = _drifting_feeds(names, 200)
        fleet, tick = self._stormed_fleet(names, feeds)
        with tempfile.TemporaryDirectory() as directory:
            fleet.save(directory)
            restored = PredictionFleet.load(directory)
        restored_tails = 0
        for name in names:
            tail = fleet._label_cache.tail(name)
            back = restored._label_cache.tail(name)
            if tail is None:
                assert back is None
                continue
            restored_tails += 1
            assert back.start == tail.start
            assert np.array_equal(back.sq, tail.sq)
            assert np.array_equal(back.labels, tail.labels)
            assert back.config_fp == tail.config_fp
            assert back.params_fp == tail.params_fp
            assert (
                restored._streams[name].params_window
                == fleet._streams[name].params_window
            )
        assert restored_tails > 0
        # The restored fleet keeps making the original's splice
        # decisions: serving the same continuation produces identical
        # forecasts through the next storm's retrains.
        assert [
            {n: fc.value for n, fc in out.items()}
            for out in _serve_more(fleet, feeds, tick, 200)
        ] == [
            {n: fc.value for n, fc in out.items()}
            for out in _serve_more(restored, feeds, tick, 200)
        ]

    def test_edited_manifest_config_invalidates_the_tails(self):
        """Fingerprints persist as written: a manifest edited to a
        different labelling config misses instead of splicing rows
        computed under the old one."""
        names = ["a", "b"]
        feeds = _drifting_feeds(names, 200)
        fleet, _ = self._stormed_fleet(names, feeds)
        with tempfile.TemporaryDirectory() as directory:
            fleet.save(directory)
            manifest_path = Path(directory) / "fleet.json"
            manifest = json.loads(manifest_path.read_text())
            manifest["config"]["label_smoothing"] += 1
            manifest_path.write_text(json.dumps(manifest))
            restored = PredictionFleet.load(directory)
        missed = 0
        for name in names:
            tail = restored._label_cache.tail(name)
            if tail is None:
                continue
            cached, reason = restored._label_cache.lookup(
                name, restored._config_fp, tail.params_fp
            )
            assert cached is None and reason == "config"
            missed += 1
        assert missed > 0


def _serve_more(fleet, feeds, start, stop):
    out = []
    for t in range(start, stop):
        out.append(fleet.forecast_all())
        fleet.ingest({name: feeds[name][t] for name in fleet.stream_names})
    return out


@pytest.mark.slow
class TestDeepSpliceParity:
    """The same parity property at a search depth too slow for every
    run (``-m slow``; CI runs it in its own step)."""

    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        stride=st.integers(min_value=0, max_value=150),
        n_new=st.integers(min_value=8, max_value=120),
        smooth=st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=200, deadline=None)
    def test_spliced_relabel_bit_identical_to_full(
        self, seed, stride, n_new, smooth
    ):
        series = 10.0 + 3.0 * ar1_series(300, phi=0.85, seed=seed)
        predictor = OnlineLARPredictor(
            LARConfig(window=5), label_smoothing=smooth
        ).train(series[:100])
        warm = predictor.relabel(series[:100], start=0)
        tail = CachedLabels(0, warm.sq, warm.labels)
        predictor = warm.predictor
        window = series[stride : stride + n_new]
        full = predictor.relabel(window, start=stride)
        spliced = predictor.relabel(window, start=stride, cached=tail)
        _assert_results_identical(full, spliced)
