"""Unit tests for the Prediction Quality Assuror."""

import numpy as np
import pytest

from repro.core.qa import AuditRecord, PredictionQualityAssuror
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            PredictionQualityAssuror(threshold=0.0)

    def test_invalid_windows(self):
        with pytest.raises(ConfigurationError):
            PredictionQualityAssuror(audit_window=0)
        with pytest.raises(ConfigurationError):
            PredictionQualityAssuror(audit_interval=0)

    def test_invalid_callback(self):
        with pytest.raises(ConfigurationError):
            PredictionQualityAssuror(on_breach="notify")


class TestAuditing:
    def test_audit_fires_on_interval(self):
        qa = PredictionQualityAssuror(threshold=10.0, audit_interval=3)
        assert qa.record(0.0, 0.1) is None
        assert qa.record(0.0, 0.1) is None
        audit = qa.record(0.0, 0.1)
        assert isinstance(audit, AuditRecord)
        assert audit.step == 3
        assert not audit.breached

    def test_breach_latches(self):
        qa = PredictionQualityAssuror(threshold=0.5, audit_interval=1, audit_window=4)
        qa.record(0.0, 10.0)  # squared error 100 >> 0.5
        assert qa.retraining_due
        # Good predictions do not clear the latch by themselves.
        qa.record(0.0, 0.0)
        assert qa.retraining_due

    def test_acknowledge_clears_latch_and_history(self):
        qa = PredictionQualityAssuror(threshold=0.5, audit_interval=1, audit_window=4)
        qa.record(0.0, 10.0)
        qa.acknowledge_retraining()
        assert not qa.retraining_due
        # After the error history reset, a clean audit passes.
        audit = qa.record(0.0, 0.0)
        assert not audit.breached

    def test_window_mse_uses_recent_only(self):
        qa = PredictionQualityAssuror(threshold=100.0, audit_interval=1, audit_window=2)
        qa.record(0.0, 10.0)
        qa.record(0.0, 0.0)
        audit = qa.record(0.0, 0.0)
        assert audit.window_mse == pytest.approx(0.0)

    def test_on_breach_callback(self):
        seen = []
        qa = PredictionQualityAssuror(
            threshold=0.5, audit_interval=1, on_breach=seen.append
        )
        qa.record(0.0, 5.0)
        assert len(seen) == 1
        assert seen[0].breached

    def test_non_finite_rejected(self):
        qa = PredictionQualityAssuror()
        with pytest.raises(ConfigurationError):
            qa.record(float("nan"), 1.0)

    def test_record_batch(self):
        qa = PredictionQualityAssuror(threshold=0.5, audit_interval=2, audit_window=8)
        audits = qa.record_batch(np.zeros(6), np.zeros(6))
        assert len(audits) == 3
        assert qa.step == 6

    def test_record_batch_shape_check(self):
        qa = PredictionQualityAssuror()
        with pytest.raises(ConfigurationError):
            qa.record_batch([1.0, 2.0], [1.0])

    def test_audit_history_kept(self):
        qa = PredictionQualityAssuror(threshold=1.0, audit_interval=1)
        qa.record_batch(np.zeros(5), np.zeros(5))
        assert len(qa.audits) == 5


class TestRecordBatchVectorized:
    def test_partial_window_audits_match_loop(self):
        """Audits that fire before the window fills average the partial
        window, bit-identically to the loop's ``np.mean`` over the deque."""
        rng = np.random.default_rng(11)
        p = rng.normal(0.0, 2.0, size=9)
        o = rng.normal(0.0, 2.0, size=9)
        qa_b = PredictionQualityAssuror(
            threshold=0.5, audit_window=16, audit_interval=2
        )
        qa_l = PredictionQualityAssuror(
            threshold=0.5, audit_window=16, audit_interval=2
        )
        fired = qa_b.record_batch(p, o)
        expected = [
            rec
            for i in range(9)
            if (rec := qa_l.record(float(p[i]), float(o[i]))) is not None
        ]
        assert fired == expected
        assert qa_b.audits == qa_l.audits

    def test_empty_batch_is_a_no_op(self):
        qa = PredictionQualityAssuror()
        assert qa.record_batch([], []) == []
        assert qa.step == 0
        assert qa.version == 0

    def test_non_finite_batch_rejected_before_any_mutation(self):
        """Unlike the loop, the batch validates up front: nothing is
        recorded when any pair is non-finite (documented difference)."""
        qa = PredictionQualityAssuror(audit_interval=1)
        with pytest.raises(ConfigurationError):
            qa.record_batch([1.0, float("inf")], [0.0, 0.0])
        assert qa.step == 0
        assert len(qa._sq_errors) == 0
        assert qa.audits == []

    def test_2d_input_rejected(self):
        qa = PredictionQualityAssuror()
        with pytest.raises(ConfigurationError):
            qa.record_batch(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_on_breach_sees_post_batch_state(self):
        """The batch applies fully before callbacks run (documented
        difference from the loop's mid-stream dispatch)."""
        steps_seen = []
        qa = PredictionQualityAssuror(
            threshold=0.5, audit_interval=2,
            on_breach=lambda rec: steps_seen.append(qa.step),
        )
        qa.record_batch([5.0, 5.0, 5.0, 5.0], [0.0, 0.0, 0.0, 0.0])
        assert steps_seen == [4, 4]

    def test_version_bumps_once_per_batch(self):
        qa = PredictionQualityAssuror()
        qa.record_batch(np.zeros(7), np.zeros(7))
        assert qa.version == 1


class TestRollingMse:
    def test_zero_before_any_record(self):
        assert PredictionQualityAssuror().rolling_mse == 0.0

    def test_matches_audit_window_mean(self):
        qa = PredictionQualityAssuror(threshold=10.0, audit_window=4)
        for err in (1.0, 2.0, 3.0):
            qa.record(err, 0.0)
        assert qa.rolling_mse == pytest.approx((1.0 + 4.0 + 9.0) / 3.0)

    def test_windowed(self):
        qa = PredictionQualityAssuror(threshold=10.0, audit_window=2)
        for err in (5.0, 1.0, 2.0):
            qa.record(err, 0.0)
        assert qa.rolling_mse == pytest.approx((1.0 + 4.0) / 2.0)

    def test_running_sum_tracks_evictions(self):
        """The O(1) running sum stays consistent with the deque through
        many wrap-arounds of the window."""
        qa = PredictionQualityAssuror(threshold=1e9, audit_window=5)
        rng = np.random.default_rng(4)
        for _ in range(200):
            qa.record(float(rng.normal()), 0.0)
        assert qa.rolling_mse == pytest.approx(
            float(np.mean(qa._sq_errors)), rel=1e-12
        )

    def test_acknowledge_resets_running_sum(self):
        qa = PredictionQualityAssuror(threshold=1e9)
        qa.record(3.0, 0.0)
        qa.acknowledge_retraining()
        assert qa.rolling_mse == 0.0
        qa.record(2.0, 0.0)
        assert qa.rolling_mse == 4.0


class TestStateDict:
    def drive(self):
        qa = PredictionQualityAssuror(
            threshold=0.5, audit_window=8, audit_interval=4
        )
        rng = np.random.default_rng(3)
        for _ in range(19):
            qa.record(float(rng.normal()), 0.0)
        return qa

    def test_roundtrip_resumes_audit_schedule(self):
        qa = self.drive()
        clone = PredictionQualityAssuror(
            threshold=0.5, audit_window=8, audit_interval=4
        ).load_state_dict(qa.state_dict())
        assert clone.step == qa.step
        assert clone.retraining_due == qa.retraining_due
        assert clone.rolling_mse == qa.rolling_mse
        assert clone.audits == qa.audits
        # The next record must behave identically in both instances.
        audit_a = qa.record(0.3, 0.0)
        audit_b = clone.record(0.3, 0.0)
        assert audit_a == audit_b

    def test_state_is_json_serializable(self):
        import json

        state = json.loads(json.dumps(self.drive().state_dict()))
        clone = PredictionQualityAssuror(
            threshold=0.5, audit_window=8, audit_interval=4
        ).load_state_dict(state)
        assert clone.step == 19

    def test_malformed_state_rejected(self):
        qa = PredictionQualityAssuror()
        with pytest.raises(ConfigurationError):
            qa.load_state_dict({"sq_errors": []})
        with pytest.raises(ConfigurationError):
            qa.load_state_dict(
                {"sq_errors": [], "step": -1, "retraining_due": False}
            )

    def test_lifetime_counters_round_trip(self):
        qa = self.drive()
        assert qa.audits_total == len(qa.audits)
        assert qa.breaches_total == sum(1 for a in qa.audits if a.breached)
        assert qa.breaches_total > 0
        clone = PredictionQualityAssuror(
            threshold=0.5, audit_window=8, audit_interval=4
        ).load_state_dict(qa.state_dict())
        assert clone.audits_total == qa.audits_total
        assert clone.breaches_total == qa.breaches_total

    def test_legacy_state_backfills_counters(self):
        """States written before the counters existed restore them from
        the audit list those states kept in full."""
        qa = self.drive()
        state = qa.state_dict()
        del state["audits_total"], state["breaches_total"]
        clone = PredictionQualityAssuror(
            threshold=0.5, audit_window=8, audit_interval=4
        ).load_state_dict(state)
        assert clone.audits_total == qa.audits_total
        assert clone.breaches_total == qa.breaches_total

    def test_malformed_counters_rejected(self):
        qa = PredictionQualityAssuror()
        state = self.drive().state_dict()
        state["audits_total"] = "many"
        with pytest.raises(ConfigurationError):
            qa.load_state_dict(state)

    def test_running_sum_travels_verbatim(self):
        """The history-dependent running sum is persisted as-is, so the
        restored QA reports the *exact* rolling_mse the original did."""
        qa = self.drive()
        state = qa.state_dict()
        assert state["sq_sum"] == qa._sq_sum
        clone = PredictionQualityAssuror(
            threshold=0.5, audit_window=8, audit_interval=4
        ).load_state_dict(state)
        assert clone._sq_sum == qa._sq_sum
        assert clone.rolling_mse == qa.rolling_mse

    def test_legacy_state_backfills_running_sum(self):
        """States written before ``sq_sum`` existed re-sum the saved
        window in record order."""
        qa = self.drive()
        state = qa.state_dict()
        del state["sq_sum"]
        clone = PredictionQualityAssuror(
            threshold=0.5, audit_window=8, audit_interval=4
        ).load_state_dict(state)
        assert clone._sq_sum == sum(state["sq_errors"], 0.0)
        assert clone.rolling_mse == pytest.approx(qa.rolling_mse, rel=1e-12)

    def test_malformed_running_sum_rejected(self):
        qa = PredictionQualityAssuror()
        state = self.drive().state_dict()
        state["sq_sum"] = "heavy"
        with pytest.raises(ConfigurationError):
            qa.load_state_dict(state)
