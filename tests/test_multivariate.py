"""Unit tests for the multi-resource (VAR) extension."""

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    DataError,
    InsufficientDataError,
    NotFittedError,
)
from repro.multivariate.var import CrossResourcePredictor, VARModel
from repro.traces.synthetic import ar1_series, white_noise_series


def _coupled_pair(n=2000, seed=0, lead=1, coupling=0.9):
    """cpu follows mem with a one-step lead: the ref [20] scenario."""
    rng = np.random.default_rng(seed)
    mem = ar1_series(n + lead, phi=0.9, seed=rng)
    cpu = coupling * mem[:-lead] + 0.3 * rng.standard_normal(n)
    return {"cpu": cpu, "mem": mem[lead:]}


class TestVARModel:
    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            VARModel().predict_next({"a": np.arange(5.0)})

    def test_recovers_univariate_ar1(self):
        """A VAR over one series degenerates to plain AR."""
        x = ar1_series(20000, phi=0.7, seed=1)
        model = VARModel(order=1).fit({"x": x})
        # coefficient layout: [intercept, A1] for the single metric.
        assert model.coefficients_[1, 0] == pytest.approx(0.7, abs=0.03)

    def test_cross_coefficients_found(self):
        """With a leading companion the cross-lag coefficient dominates."""
        data = _coupled_pair(seed=2)
        model = VARModel(order=1).fit(data)
        names = model.metric_names_
        cpu_col = names.index("cpu")
        mem_row = 1 + names.index("mem")  # lag-1 block
        assert abs(model.coefficients_[mem_row, cpu_col]) > 0.5

    def test_prediction_improves_with_companion(self):
        """The ref [20] claim: cross-correlation lowers CPU MSE."""
        data = _coupled_pair(n=4000, seed=3)
        half = 2000
        train = {k: v[:half] for k, v in data.items()}
        test = {k: v[half:] for k, v in data.items()}
        joint = VARModel(order=2).fit(train)
        solo = VARModel(order=2).fit({"cpu": train["cpu"]})

        def mse(model, metrics):
            errs = []
            for t in range(2, len(test["cpu"])):
                recent = {m: test[m][t - 2 : t] for m in metrics}
                pred = model.predict_next(recent)["cpu"]
                errs.append((pred - test["cpu"][t]) ** 2)
            return float(np.mean(errs))

        assert mse(joint, ("cpu", "mem")) < 0.8 * mse(solo, ("cpu",))

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            VARModel().fit({"a": np.arange(50.0), "b": np.arange(40.0)})

    def test_too_short(self):
        with pytest.raises(InsufficientDataError):
            VARModel(order=4).fit({"a": np.arange(6.0), "b": np.arange(6.0)})

    def test_missing_metric_at_predict(self):
        model = VARModel(order=1).fit(
            {"a": ar1_series(100, seed=4), "b": ar1_series(100, seed=5)}
        )
        with pytest.raises(DataError, match="missing"):
            model.predict_next({"a": np.arange(5.0)})

    def test_short_history_at_predict(self):
        model = VARModel(order=3).fit({"a": ar1_series(100, seed=6)})
        with pytest.raises(InsufficientDataError):
            model.predict_next({"a": np.arange(2.0)})

    def test_collinear_series_survive_via_ridge(self):
        x = ar1_series(500, seed=7)
        model = VARModel(order=2, ridge=1e-6).fit({"a": x, "b": x.copy()})
        pred = model.predict_next({"a": x[-2:], "b": x[-2:]})
        assert np.isfinite(pred["a"])


class TestCrossResourcePredictor:
    def test_pool_integration(self):
        """XVAR joins a pool and beats univariate AR on coupled data."""
        from repro.predictors import ARPredictor, PredictorPool
        from repro.util.windows import frame_with_targets

        data = _coupled_pair(n=3000, seed=8)
        half = 1500
        xvar = CrossResourcePredictor("cpu", order=2).fit_joint(
            {k: v[:half] for k, v in data.items()}
        )
        ar = ARPredictor(order=5).fit(data["cpu"][:half])

        F_cpu, y = frame_with_targets(data["cpu"][half:], 5)
        F_mem, _ = frame_with_targets(data["mem"][half:], 5)
        xvar.set_context_frames(np.asarray(F_cpu), {"mem": np.asarray(F_mem)})
        xvar_mse = float(np.mean((xvar.predict_batch(F_cpu) - y) ** 2))
        ar_mse = float(np.mean((ar.predict_batch(F_cpu) - y) ** 2))
        assert xvar_mse < ar_mse

    def test_context_required(self):
        data = _coupled_pair(n=500, seed=9)
        xvar = CrossResourcePredictor("cpu", order=2).fit_joint(data)
        with pytest.raises(DataError, match="context"):
            xvar.predict_batch(np.zeros((3, 5)))

    def test_context_row_mismatch(self):
        data = _coupled_pair(n=500, seed=10)
        xvar = CrossResourcePredictor("cpu", order=2).fit_joint(data)
        with pytest.raises(DataError, match="rows"):
            xvar.set_context_frames(np.zeros((3, 5)), {"mem": np.zeros((2, 5))})

    def test_subset_dispatch_alignment(self):
        """The pool routes label subsets; content-keyed lookups align."""
        data = _coupled_pair(n=600, seed=14)
        xvar = CrossResourcePredictor("cpu", order=2).fit_joint(data)
        from repro.util.windows import frame_with_targets

        F_cpu, _ = frame_with_targets(data["cpu"][300:], 5)
        F_mem, _ = frame_with_targets(data["mem"][300:], 5)
        F_cpu = np.asarray(F_cpu)
        xvar.set_context_frames(F_cpu, {"mem": np.asarray(F_mem)})
        full = xvar.predict_batch(F_cpu)
        subset = xvar.predict_batch(F_cpu[10:20])
        np.testing.assert_allclose(subset, full[10:20])

    def test_unannounced_frame_rejected(self):
        data = _coupled_pair(n=500, seed=15)
        xvar = CrossResourcePredictor("cpu", order=2).fit_joint(data)
        xvar.set_context_frames(np.ones((2, 5)), {"mem": np.ones((2, 5))})
        with pytest.raises(DataError, match="announced"):
            xvar.predict_batch(np.zeros((1, 5)))

    def test_univariate_fallback_fit(self):
        """Plain pool fit() degenerates to a univariate VAR (no context
        needed afterwards)."""
        xvar = CrossResourcePredictor("cpu", order=2)
        xvar.fit(ar1_series(300, seed=11))
        out = xvar.predict_batch(np.random.default_rng(12).standard_normal((4, 5)))
        assert out.shape == (4,)

    def test_target_must_be_in_training(self):
        xvar = CrossResourcePredictor("cpu")
        with pytest.raises(ConfigurationError):
            xvar.fit_joint({"mem": np.arange(100.0)})

    def test_reset(self):
        data = _coupled_pair(n=500, seed=13)
        xvar = CrossResourcePredictor("cpu", order=2).fit_joint(data)
        xvar.reset()
        assert not xvar.is_fitted
