"""Unit tests for the multi-stream serving layer (repro.serving)."""

import numpy as np
import pytest

from repro.core.config import LARConfig
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.parallel.pool_exec import ParallelConfig
from repro.serving import (
    FleetConfig,
    FleetMetrics,
    PredictionFleet,
    load_fleet,
    save_fleet,
)
from repro.traces.synthetic import ar1_series, white_noise_series

SERIAL = ParallelConfig(max_workers=1)


def small_config(**overrides):
    defaults = dict(
        lar=LARConfig(window=5),
        min_train=30,
        qa_threshold=3.0,
        audit_window=16,
        audit_interval=8,
        parallel=SERIAL,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def feed(fleet, feeds, start, stop, *, forecast_first=True):
    for t in range(start, stop):
        if forecast_first:
            fleet.forecast_all()
        fleet.ingest({name: feeds[name][t] for name in fleet.stream_names})


@pytest.fixture
def warm_fleet():
    """A 4-stream fleet driven past warm-up, plus its feeds."""
    fleet = PredictionFleet(small_config(), streams=["a", "b", "c", "d"])
    feeds = {
        name: 10.0 + 2.0 * ar1_series(400, phi=0.9, seed=i)
        for i, name in enumerate(fleet.stream_names)
    }
    feed(fleet, feeds, 0, 60)
    return fleet, feeds


class TestFleetConfig:
    def test_min_train_floor(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(lar=LARConfig(window=5), min_train=6)

    def test_history_limit_vs_min_train(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(min_train=64, history_limit=32)

    def test_retrain_window_floor(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(lar=LARConfig(window=5), retrain_window=4)

    def test_threshold_positive(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(qa_threshold=0.0)


class TestStreamLifecycle:
    def test_add_remove_contains(self):
        fleet = PredictionFleet(small_config())
        fleet.add_stream("x").add_stream("y")
        assert len(fleet) == 2 and "x" in fleet and "z" not in fleet
        fleet.remove_stream("x")
        assert fleet.stream_names == ("y",)

    def test_duplicate_and_invalid_names(self):
        fleet = PredictionFleet(small_config(), streams=["x"])
        with pytest.raises(ConfigurationError):
            fleet.add_stream("x")
        with pytest.raises(ConfigurationError):
            fleet.add_stream("")

    def test_unknown_stream_operations(self):
        fleet = PredictionFleet(small_config(), streams=["x"])
        with pytest.raises(ConfigurationError):
            fleet.ingest({"nope": 1.0})
        with pytest.raises(ConfigurationError):
            fleet.forecast("nope")
        with pytest.raises(ConfigurationError):
            fleet.remove_stream("nope")

    def test_lazy_training_at_min_train(self):
        cfg = small_config()
        fleet = PredictionFleet(cfg, streams=["x"])
        series = ar1_series(cfg.min_train + 5, phi=0.8, seed=1)
        for t in range(cfg.min_train - 1):
            fleet.ingest({"x": series[t]})
            assert not fleet.is_trained("x")
        with pytest.raises(NotFittedError):
            fleet.forecast("x")
        fleet.ingest({"x": series[cfg.min_train - 1]})
        assert fleet.is_trained("x")
        fc = fleet.forecast("x")
        assert np.isfinite(fc.value)

    def test_warmup_streams_omitted_from_forecast_all(self):
        fleet = PredictionFleet(small_config(), streams=["cold", "warm"])
        series = ar1_series(60, phi=0.8, seed=2)
        for t in range(40):
            fleet.ingest({"warm": series[t]})
        out = fleet.forecast_all()
        assert set(out) == {"warm"}


class TestIngest:
    def test_batched_returns_per_stream_labels(self, warm_fleet):
        fleet, feeds = warm_fleet
        labels = fleet.ingest(
            {name: feeds[name][60] for name in fleet.stream_names}
        )
        assert set(labels) == set(fleet.stream_names)
        assert all(lab in (1, 2, 3) for lab in labels.values())

    def test_partial_batches_allowed(self, warm_fleet):
        fleet, feeds = warm_fleet
        before = {m.name: m.ticks for m in fleet.metrics().streams}
        fleet.ingest({"a": feeds["a"][60]})
        after = {m.name: m.ticks for m in fleet.metrics().streams}
        assert after["a"] == before["a"] + 1
        assert after["b"] == before["b"]

    def test_non_finite_rejected_before_any_mutation(self, warm_fleet):
        fleet, feeds = warm_fleet
        before = fleet.metrics()
        with pytest.raises(ConfigurationError):
            fleet.ingest({"a": feeds["a"][60], "b": float("nan")})
        after = fleet.metrics()
        assert [m.ticks for m in after.streams] == [
            m.ticks for m in before.streams
        ]

    def test_ingest_without_forecast_still_audits(self):
        """The QA must see a (forecast, observation) pair per tick even
        when the caller never reads forecasts."""
        fleet = PredictionFleet(small_config(), streams=["x"])
        series = ar1_series(80, phi=0.8, seed=3)
        for t in range(80):
            fleet.ingest({"x": series[t]})
        m = fleet.metrics().streams[0]
        assert m.trained
        assert m.rolling_mse > 0.0
        assert sum(m.selections.values()) == 80 - 30  # one per served tick


class TestRetraining:
    def drifting_fleet(self, auto_retrain):
        cfg = small_config(
            qa_threshold=2.0, retrain_window=60, auto_retrain=auto_retrain
        )
        fleet = PredictionFleet(cfg, streams=["calm", "drift"])
        calm = 10.0 + ar1_series(200, phi=0.9, seed=4)
        drift = calm.copy()
        drift[100:] = 80.0 + 10.0 * white_noise_series(100, seed=5)
        return fleet, {"calm": calm, "drift": drift}

    def test_qa_breach_retrains_only_drifting_stream(self):
        fleet, feeds = self.drifting_fleet(auto_retrain=True)
        feed(fleet, feeds, 0, 200)
        by_name = {m.name: m for m in fleet.metrics().streams}
        assert by_name["drift"].retrain_count >= 1
        assert by_name["calm"].retrain_count == 0
        assert by_name["drift"].breaches >= 1

    def test_manual_retrain_scheduling(self):
        fleet, feeds = self.drifting_fleet(auto_retrain=False)
        feed(fleet, feeds, 0, 40)
        fleet.run_pending_retrains()  # initial (lazy) training
        feed(fleet, feeds, 40, 140)  # drift begins at tick 100
        assert "drift" in fleet.pending_retrains
        done = fleet.run_pending_retrains()
        assert "drift" in done
        assert fleet.pending_retrains == ()
        by_name = {m.name: m for m in fleet.metrics().streams}
        assert by_name["drift"].retrain_count >= 1

    def test_retrain_resets_qa_window(self):
        fleet, feeds = self.drifting_fleet(auto_retrain=False)
        feed(fleet, feeds, 0, 40)
        fleet.run_pending_retrains()
        feed(fleet, feeds, 40, 140)
        fleet.run_pending_retrains()
        state = fleet._streams["drift"]
        assert not state.qa.retraining_due
        assert state.qa.rolling_mse == 0.0

    def test_retrain_burst_through_process_pool(self):
        """A burst of due streams goes through one parallel_map call,
        including across real worker processes."""
        cfg = small_config(
            auto_retrain=False,
            parallel=ParallelConfig(max_workers=2, min_items_per_worker=1),
        )
        fleet = PredictionFleet(cfg, streams=["p", "q", "r", "s"])
        feeds = {
            name: 5.0 + ar1_series(40, phi=0.8, seed=i)
            for i, name in enumerate(fleet.stream_names)
        }
        feed(fleet, feeds, 0, 30, forecast_first=False)
        assert set(fleet.pending_retrains) == {"p", "q", "r", "s"}
        done = fleet.run_pending_retrains()
        assert set(done) == {"p", "q", "r", "s"}
        assert len(fleet.forecast_all()) == 4


class TestMetrics:
    def test_snapshot_fields(self, warm_fleet):
        fleet, _ = warm_fleet
        metrics = fleet.metrics()
        assert isinstance(metrics, FleetMetrics)
        assert metrics.n_streams == 4 and metrics.n_trained == 4
        assert metrics.total_ticks == 4 * 60
        for m in metrics.streams:
            assert m.memory_size > 0
            assert m.history_length > 0
            assert m.rolling_mse >= 0.0
        assert sum(metrics.selections.values()) == sum(
            sum(m.selections.values()) for m in metrics.streams
        )

    def test_render_truncates(self, warm_fleet):
        fleet, _ = warm_fleet
        text = fleet.metrics().render(max_rows=2)
        assert "Fleet: 4 streams" in text
        assert "(2 more streams)" in text

    def test_repr(self, warm_fleet):
        fleet, _ = warm_fleet
        assert "streams=4" in repr(fleet)


class TestPersistence:
    def test_roundtrip_reproduces_forecasts(self, warm_fleet, tmp_path):
        fleet, feeds = warm_fleet
        fleet.save(tmp_path / "fleet")
        restored = PredictionFleet.load(tmp_path / "fleet")
        assert restored.stream_names == fleet.stream_names
        original = fleet.forecast_all()
        back = restored.forecast_all()
        for name in original:
            assert original[name].value == back[name].value
            assert (
                original[name].predictor_label == back[name].predictor_label
            )

    def test_roundtrip_preserves_counters_and_warmup(self, tmp_path):
        cfg = small_config()
        fleet = PredictionFleet(cfg, streams=["warm", "cold"])
        series = ar1_series(60, phi=0.8, seed=6)
        for t in range(40):
            fleet.ingest({"warm": series[t]})
        for t in range(10):
            fleet.ingest({"cold": series[t]})
        save_fleet(fleet, tmp_path / "f")
        restored = load_fleet(tmp_path / "f")
        orig = {m.name: m for m in fleet.metrics().streams}
        back = {m.name: m for m in restored.metrics().streams}
        for name in ("warm", "cold"):
            assert back[name].ticks == orig[name].ticks
            assert back[name].trained == orig[name].trained
            assert back[name].selections == orig[name].selections
        # The cold stream's warm-up buffer survived: 20 more values
        # finish its training.
        for t in range(10, 30):
            restored.ingest({"cold": series[t]})
        assert restored.is_trained("cold")

    def test_streams_resume_learning_after_restore(self, warm_fleet, tmp_path):
        fleet, feeds = warm_fleet
        fleet.save(tmp_path / "f")
        restored = PredictionFleet.load(tmp_path / "f")
        feed(fleet, feeds, 60, 90)
        feed(restored, feeds, 60, 90)
        a = fleet.forecast_all()
        b = restored.forecast_all()
        for name in a:
            assert a[name].value == b[name].value

    def test_not_a_fleet_directory(self, tmp_path):
        with pytest.raises(DataError):
            load_fleet(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "fleet.json").write_text("{not json")
        with pytest.raises(DataError):
            load_fleet(tmp_path)

    def test_bad_format_version(self, tmp_path):
        (tmp_path / "fleet.json").write_text('{"format_version": 99}')
        with pytest.raises(DataError):
            load_fleet(tmp_path)
