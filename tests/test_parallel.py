"""Unit tests for the process-pool helpers."""

import os

import pytest

from repro.exceptions import ConfigurationError
from repro.parallel import pool_exec
from repro.parallel.pool_exec import (
    ParallelConfig,
    parallel_map,
    persistent_pool,
    shutdown_persistent_pool,
)


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


class TestParallelConfig:
    def test_defaults(self):
        cfg = ParallelConfig()
        assert cfg.max_workers is None
        assert cfg.chunksize == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(max_workers=0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(min_items_per_worker=0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(chunksize=0)

    def test_serial_for_tiny_workloads(self):
        cfg = ParallelConfig(max_workers=8, min_items_per_worker=4)
        assert cfg.resolved_workers(3) == 1

    def test_worker_cap(self):
        cfg = ParallelConfig(max_workers=4, min_items_per_worker=1)
        assert cfg.resolved_workers(100) == 4

    def test_explicit_serial(self):
        assert ParallelConfig(max_workers=1).resolved_workers(1000) == 1


class TestParallelMap:
    def test_serial_path(self):
        out = parallel_map(_square, range(5), config=ParallelConfig(max_workers=1))
        assert out == [0, 1, 4, 9, 16]

    def test_parallel_path_preserves_order(self):
        cfg = ParallelConfig(max_workers=2, min_items_per_worker=1)
        out = parallel_map(_square, range(20), config=cfg)
        assert out == [x * x for x in range(20)]

    def test_empty(self):
        assert parallel_map(_square, []) == []

    def test_worker_exception_propagates(self):
        cfg = ParallelConfig(max_workers=2, min_items_per_worker=1)
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_boom, range(8), config=cfg)

    def test_non_callable_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_map("fn", [1, 2])

    def test_serial_equals_parallel(self):
        serial = parallel_map(_square, range(30), config=ParallelConfig(max_workers=1))
        parallel = parallel_map(
            _square, range(30), config=ParallelConfig(max_workers=2, min_items_per_worker=1)
        )
        assert serial == parallel


class TestPersistentPool:
    def test_same_pool_reused_across_requests(self):
        shutdown_persistent_pool()
        first = persistent_pool(2)
        assert persistent_pool(2) is first
        # a smaller request rides the existing (larger) pool
        assert persistent_pool(1) is first
        shutdown_persistent_pool()

    def test_pool_grows_on_demand(self):
        shutdown_persistent_pool()
        small = persistent_pool(1)
        grown = persistent_pool(2)
        assert grown is not small
        assert persistent_pool(2) is grown
        shutdown_persistent_pool()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            persistent_pool(0)

    def test_parallel_map_reuses_the_persistent_pool(self):
        shutdown_persistent_pool()
        cfg = ParallelConfig(max_workers=2, min_items_per_worker=1)
        assert parallel_map(_square, range(8), config=cfg) == [
            x * x for x in range(8)
        ]
        first = pool_exec._pool
        assert first is not None
        assert parallel_map(_square, range(8), config=cfg) == [
            x * x for x in range(8)
        ]
        assert pool_exec._pool is first  # no re-fork between bursts
        shutdown_persistent_pool()
        assert pool_exec._pool is None

    def test_worker_exception_leaves_pool_usable(self):
        shutdown_persistent_pool()
        cfg = ParallelConfig(max_workers=2, min_items_per_worker=1)
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_boom, range(4), config=cfg)
        # an ordinary exception is not a broken pool; the next burst
        # reuses the same workers
        assert parallel_map(_square, range(4), config=cfg) == [0, 1, 4, 9]
        shutdown_persistent_pool()

    def test_shutdown_is_idempotent(self):
        shutdown_persistent_pool()
        shutdown_persistent_pool()
        assert pool_exec._pool is None


class TestUnpicklableFallback:
    def test_lambda_falls_back_to_serial(self):
        cfg = ParallelConfig(max_workers=4, min_items_per_worker=1)
        out = parallel_map(lambda x: x + 1, range(10), config=cfg)
        assert out == list(range(1, 11))

    def test_closure_falls_back_to_serial(self):
        offset = 7

        def shift(x):
            return x + offset

        cfg = ParallelConfig(max_workers=4, min_items_per_worker=1)
        assert parallel_map(shift, range(5), config=cfg) == [7, 8, 9, 10, 11]
