"""Unit and property tests for the k-NN classifier and the KD-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.learn.kdtree import KDTree
from repro.learn.knn import KNNClassifier


def _two_blobs(n=60, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, 2)) + [-4.0, 0.0]
    b = rng.standard_normal((n, 2)) + [4.0, 0.0]
    X = np.vstack([a, b])
    y = np.array([1] * n + [2] * n)
    return X, y


class TestKDTree:
    def test_single_point(self):
        tree = KDTree([[1.0, 2.0]])
        d, i = tree.query(np.array([1.0, 2.0]), 1)
        assert d[0] == pytest.approx(0.0)
        assert i[0] == 0

    def test_matches_brute_force(self):
        rng = np.random.default_rng(1)
        pts = rng.standard_normal((300, 3))
        tree = KDTree(pts, leaf_size=8)
        for q in rng.standard_normal((20, 3)):
            d, idx = tree.query(q, 5)
            brute = np.linalg.norm(pts - q, axis=1)
            order = np.argsort(brute)[:5]
            np.testing.assert_allclose(np.sort(d), np.sort(brute[order]), atol=1e-10)

    def test_k_too_large(self):
        tree = KDTree(np.zeros((3, 2)))
        with pytest.raises(ConfigurationError):
            tree.query(np.zeros(2), 4)

    def test_wrong_dimension_query(self):
        tree = KDTree(np.zeros((3, 2)))
        with pytest.raises(DataError):
            tree.query(np.zeros(3), 1)

    def test_identical_points_become_leaf(self):
        tree = KDTree(np.ones((100, 2)), leaf_size=4)
        d, i = tree.query(np.ones(2), 3)
        np.testing.assert_allclose(d, 0.0)

    def test_query_many_shapes(self):
        rng = np.random.default_rng(2)
        pts = rng.standard_normal((50, 2))
        tree = KDTree(pts)
        d, i = tree.query_many(rng.standard_normal((7, 2)), 3)
        assert d.shape == (7, 3)
        assert i.shape == (7, 3)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 60), st.just(2)),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        ),
        st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_exactness(self, pts, k):
        """Tree k-NN distances always equal brute-force distances."""
        if k > pts.shape[0]:
            return
        tree = KDTree(pts, leaf_size=4)
        q = pts[0] + 0.5
        d, idx = tree.query(q, k)
        brute = np.sort(np.linalg.norm(pts - q, axis=1))[:k]
        np.testing.assert_allclose(np.sort(d), brute, atol=1e-8)


class TestKNNClassifierConstruction:
    def test_even_k_rejected(self):
        with pytest.raises(ConfigurationError, match="odd"):
            KNNClassifier(k=2)

    def test_bad_algorithm(self):
        with pytest.raises(ConfigurationError):
            KNNClassifier(k=3, algorithm="ball_tree")

    def test_k_exceeds_training_set(self):
        with pytest.raises(ConfigurationError):
            KNNClassifier(k=5).fit(np.zeros((3, 2)), [1, 2, 1])


class TestKNNClassifierBehaviour:
    def test_separable_blobs_high_accuracy(self):
        X, y = _two_blobs()
        clf = KNNClassifier(k=3).fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_single_sample_prediction(self):
        X, y = _two_blobs()
        clf = KNNClassifier(k=3).fit(X, y)
        assert clf.predict_one([-4.0, 0.0]) == 1
        assert clf.predict_one([4.0, 0.0]) == 2

    def test_1nn_memorizes_training_data(self):
        X, y = _two_blobs(n=20)
        clf = KNNClassifier(k=1).fit(X, y)
        assert clf.score(X, y) == 1.0

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            KNNClassifier(k=3).predict(np.zeros((1, 2)))

    def test_brute_and_tree_agree(self):
        X, y = _two_blobs(n=100, seed=5)
        test = np.random.default_rng(6).standard_normal((40, 2)) * 3.0
        brute = KNNClassifier(k=3, algorithm="brute").fit(X, y).predict(test)
        tree = KNNClassifier(k=3, algorithm="kd_tree").fit(X, y).predict(test)
        np.testing.assert_array_equal(brute, tree)

    def test_kneighbors_sorted_by_distance(self):
        X, y = _two_blobs()
        clf = KNNClassifier(k=5).fit(X, y)
        d, _ = clf.kneighbors(np.zeros((3, 2)))
        assert (np.diff(d, axis=1) >= -1e-12).all()

    def test_k_equal_to_n(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 2])
        clf = KNNClassifier(k=3).fit(X, y)
        # All points are neighbours; majority is 1.
        assert clf.predict_one([5.0]) == 1

    def test_predict_proba_rows_sum_to_one(self):
        X, y = _two_blobs()
        clf = KNNClassifier(k=3).fit(X, y)
        proba = clf.predict_proba(np.zeros((4, 2)))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_three_way_tie_resolves_to_nearest(self):
        """k=3 over 3 classes can tie 1-1-1; the nearest neighbour's
        label must win (the documented deterministic rule)."""
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([7, 8, 9])
        clf = KNNClassifier(k=3).fit(X, y)
        assert clf.predict_one([1.1]) == 7
        assert clf.predict_one([2.9]) == 9

    def test_feature_count_mismatch(self):
        X, y = _two_blobs()
        clf = KNNClassifier(k=3).fit(X, y)
        with pytest.raises(DataError):
            clf.predict(np.zeros((2, 5)))

    def test_non_integer_labels_rejected(self):
        with pytest.raises(DataError):
            KNNClassifier(k=1).fit(np.zeros((2, 1)), [0.5, 1.5])

    def test_auto_backend_picks_tree_for_large_low_dim(self):
        rng = np.random.default_rng(7)
        X = rng.standard_normal((3000, 2))
        y = (X[:, 0] > 0).astype(int)
        clf = KNNClassifier(k=3, algorithm="auto").fit(X, y)
        # The index is lazy — a fresh fit is often evicted down to
        # max_memory before any query — but the first query builds it.
        assert clf._tree is None
        clf.predict_one([0.0, 0.0])
        assert clf._tree is not None

    def test_auto_backend_brute_for_small(self):
        X, y = _two_blobs(n=20)
        clf = KNNClassifier(k=3, algorithm="auto").fit(X, y)
        clf.predict_one([0.0, 0.0])
        assert clf._tree is None


class TestDistanceWeighting:
    def test_invalid_weights(self):
        with pytest.raises(ConfigurationError):
            KNNClassifier(k=3, weights="gaussian")

    def test_exact_match_dominates(self):
        """With distance weighting, a training point identical to the
        query outvotes any majority of farther neighbours."""
        X = np.array([[0.0, 0.0], [0.2, 0.0], [0.2, 0.1]])
        y = np.array([9, 1, 1])
        clf = KNNClassifier(k=3, weights="distance").fit(X, y)
        assert clf.predict_one([0.0, 0.0]) == 9
        # Plain majority would say 1.
        uniform = KNNClassifier(k=3, weights="uniform").fit(X, y)
        assert uniform.predict_one([0.0, 0.0]) == 1

    def test_near_neighbour_outweighs_far_pair(self):
        X = np.array([[0.0], [5.0], [5.1]])
        y = np.array([7, 2, 2])
        clf = KNNClassifier(k=3, weights="distance").fit(X, y)
        assert clf.predict_one([0.4]) == 7

    def test_agrees_with_uniform_when_unambiguous(self):
        X, y = _two_blobs()
        u = KNNClassifier(k=3, weights="uniform").fit(X, y)
        d = KNNClassifier(k=3, weights="distance").fit(X, y)
        queries = np.array([[-4.0, 0.0], [4.0, 0.0], [-3.5, 1.0]])
        np.testing.assert_array_equal(u.predict(queries), d.predict(queries))
