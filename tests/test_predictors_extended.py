"""Unit tests for the extended-pool predictors."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError, InsufficientDataError
from repro.predictors.adaptive_window import AdaptiveWindowMeanPredictor
from repro.predictors.arima import DifferencedARPredictor
from repro.predictors.ewma import EWMAPredictor
from repro.predictors.median import WindowMedianPredictor
from repro.predictors.polyfit import PolyFitPredictor
from repro.predictors.tendency import TendencyPredictor
from repro.predictors.trend import LinearTrendPredictor
from repro.traces.synthetic import ar1_series, random_walk_series, white_noise_series
from repro.util.windows import frame_with_targets


def _mse_on(pred, series, window=6):
    F, y = frame_with_targets(series, window)
    out = pred.predict_batch(F)
    return float(np.mean((out - y) ** 2))


class TestEWMA:
    def test_unbiased_on_constant(self):
        p = EWMAPredictor(alpha=0.3)
        assert p.predict_next(np.full(8, 4.2)) == pytest.approx(4.2)

    def test_alpha_one_is_last(self):
        p = EWMAPredictor(alpha=1.0)
        assert p.predict_next([1.0, 2.0, 9.0]) == pytest.approx(9.0)

    def test_weights_decay_geometrically(self):
        p = EWMAPredictor(alpha=0.5)
        w = p._weights(3)
        assert w[2] / w[1] == pytest.approx(2.0)
        assert w.sum() == pytest.approx(1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            EWMAPredictor(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EWMAPredictor(alpha=1.5)

    def test_weight_cache_per_length(self):
        p = EWMAPredictor(alpha=0.5)
        p.predict_next(np.ones(4))
        p.predict_next(np.ones(7))
        assert set(p._weights_cache) == {4, 7}


class TestMedian:
    def test_robust_to_one_spike(self):
        p = WindowMedianPredictor()
        assert p.predict_next([1.0, 1.0, 100.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_windowed(self):
        p = WindowMedianPredictor(window=3)
        assert p.predict_next([9.0, 9.0, 1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_window_exceeds_frame(self):
        with pytest.raises(DataError):
            WindowMedianPredictor(window=10).predict_next([1.0, 2.0])

    def test_beats_mean_on_spiky_series(self):
        from repro.traces.synthetic import bursty_series

        x = bursty_series(1000, burst_prob=0.05, burst_scale=50.0, seed=1)
        from repro.predictors.sw_avg import SlidingWindowAveragePredictor

        med_mse = _mse_on(WindowMedianPredictor(), x)
        avg_mse = _mse_on(SlidingWindowAveragePredictor(), x)
        assert med_mse < avg_mse


class TestTendency:
    def test_continues_increase(self):
        p = TendencyPredictor(gain=1.0)
        pred = p.predict_next([1.0, 2.0, 3.0])
        assert pred > 3.0

    def test_continues_decrease(self):
        p = TendencyPredictor(gain=1.0)
        pred = p.predict_next([3.0, 2.0, 1.0])
        assert pred < 1.0

    def test_flat_window_predicts_last(self):
        p = TendencyPredictor()
        assert p.predict_next(np.full(5, 2.0)) == pytest.approx(2.0)

    def test_needs_two_values(self):
        with pytest.raises(DataError):
            TendencyPredictor().predict_next([1.0])

    def test_invalid_gain(self):
        with pytest.raises(ConfigurationError):
            TendencyPredictor(gain=0.0)


class TestPolyFit:
    def test_exact_on_polynomial(self):
        """A degree-2 model extrapolates an exact quadratic perfectly."""
        t = np.arange(10.0)
        series = 2.0 + 3.0 * t + 0.5 * t * t
        p = PolyFitPredictor(points=6, degree=2)
        pred = p.predict_next(series[:9][-6:])
        # predicting series[9] from points 3..8
        assert pred == pytest.approx(series[9], rel=1e-9)

    def test_exact_on_line_degree1(self):
        series = 1.0 + 4.0 * np.arange(8.0)
        p = PolyFitPredictor(points=4, degree=1)
        assert p.predict_next(series[:-1][-4:]) == pytest.approx(series[-1])

    def test_degree_must_be_below_points(self):
        with pytest.raises(ConfigurationError):
            PolyFitPredictor(points=3, degree=3)

    def test_frame_too_short(self):
        with pytest.raises(DataError):
            PolyFitPredictor(points=5, degree=2).predict_next([1.0, 2.0, 3.0])


class TestLinearTrend:
    def test_exact_on_line(self):
        series = 5.0 - 2.0 * np.arange(6.0)
        p = LinearTrendPredictor()
        assert p.predict_next(series) == pytest.approx(5.0 - 2.0 * 6.0)

    def test_constant_window(self):
        assert LinearTrendPredictor().predict_next(np.full(4, 3.0)) == pytest.approx(3.0)

    def test_window_of_one_is_last(self):
        assert LinearTrendPredictor().predict_next([7.0]) == pytest.approx(7.0)

    def test_agrees_with_polyfit_degree1(self):
        rng = np.random.default_rng(0)
        frame = rng.standard_normal(6)
        trend = LinearTrendPredictor().predict_next(frame)
        poly = PolyFitPredictor(points=6, degree=1).predict_next(frame)
        assert trend == pytest.approx(poly, rel=1e-9)


class TestDifferencedAR:
    def test_requires_fit(self):
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            DifferencedARPredictor(order=2).predict_next(np.arange(5.0))

    def test_beats_plain_ar_on_random_walk(self):
        """Integration handles the unit root a stationary AR misfits."""
        from repro.predictors.ar import ARPredictor

        x = random_walk_series(4000, step_std=1.0, seed=2)
        train, test = x[:2000], x[2000:]
        ari = DifferencedARPredictor(order=4).fit(train)
        from repro.predictors.sw_avg import SlidingWindowAveragePredictor

        F, y = frame_with_targets(test, 6)
        ari_mse = float(np.mean((ari.predict_batch(F) - y) ** 2))
        sw_mse = float(np.mean((SlidingWindowAveragePredictor().predict_batch(F) - y) ** 2))
        assert ari_mse < sw_mse

    def test_frame_needs_order_plus_one(self):
        p = DifferencedARPredictor(order=3).fit(random_walk_series(100, seed=3))
        with pytest.raises(DataError):
            p.predict_next([1.0, 2.0, 3.0])

    def test_training_too_short(self):
        with pytest.raises(InsufficientDataError):
            DifferencedARPredictor(order=5).fit(np.arange(6.0))

    def test_reset(self):
        p = DifferencedARPredictor(order=2).fit(random_walk_series(100, seed=4))
        p.reset()
        assert p.coefficients_ is None


class TestAdaptiveWindow:
    def test_selects_long_window_on_white_noise(self):
        """On i.i.d. noise, longer averages are strictly better."""
        x = white_noise_series(4000, seed=5)
        p = AdaptiveWindowMeanPredictor(max_window=8).fit(x)
        assert p.selected_window_ >= 6

    def test_selects_short_window_on_persistent_series(self):
        """On a strongly persistent series the last value dominates."""
        x = random_walk_series(4000, seed=6)
        p = AdaptiveWindowMeanPredictor(max_window=8).fit(x)
        assert p.selected_window_ <= 2

    def test_prediction_uses_selected_window(self):
        x = white_noise_series(500, seed=7)
        p = AdaptiveWindowMeanPredictor(max_window=4).fit(x)
        w = p.selected_window_
        frame = np.arange(8.0)
        assert p.predict_next(frame) == pytest.approx(frame[-w:].mean())

    def test_training_too_short(self):
        with pytest.raises(InsufficientDataError):
            AdaptiveWindowMeanPredictor(max_window=10).fit(np.arange(8.0))

    def test_frame_shorter_than_selected(self):
        x = white_noise_series(500, seed=8)
        p = AdaptiveWindowMeanPredictor(max_window=8).fit(x)
        if p.selected_window_ > 2:
            with pytest.raises(DataError):
                p.predict_next([1.0, 2.0])
