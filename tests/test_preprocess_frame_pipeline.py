"""Unit tests for the Framer and the combined PreprocessPipeline."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.preprocess.frame import Framer
from repro.preprocess.pipeline import PreprocessPipeline


class TestFramer:
    def test_frames_shape(self):
        f = Framer(3)
        assert f.frames(np.arange(10.0)).shape == (8, 3)

    def test_frames_with_targets_count(self):
        f = Framer(4)
        X, y = f.frames_with_targets(np.arange(10.0))
        assert X.shape == (6, 4)
        assert y.shape == (6,)
        assert f.count(10) == 6

    def test_count_short_series(self):
        assert Framer(5).count(4) == 0
        assert Framer(5).count(5) == 0  # one frame but no target
        assert Framer(5).count(6) == 1

    def test_tail(self):
        f = Framer(3)
        np.testing.assert_array_equal(f.tail(np.arange(6.0)), [3.0, 4.0, 5.0])

    def test_equality_and_hash(self):
        assert Framer(3) == Framer(3)
        assert Framer(3) != Framer(4)
        assert hash(Framer(3)) == hash(Framer(3))


class TestPipelineConstruction:
    def test_n_components_exceeding_window_rejected(self):
        with pytest.raises(ConfigurationError):
            PreprocessPipeline(window=3, n_components=4)

    def test_pca_disabled(self):
        p = PreprocessPipeline(window=4, n_components=None)
        assert p.pca is None

    def test_min_variance_mode(self):
        p = PreprocessPipeline(window=5, n_components=None, min_variance=0.9)
        assert p.pca is not None
        assert p.pca.min_variance == 0.9


class TestPipelineBehaviour:
    def test_prepare_shapes(self, smooth_series):
        p = PreprocessPipeline(window=5, n_components=2).fit(smooth_series)
        data = p.prepare(smooth_series)
        n = len(smooth_series) - 5
        assert data.frames.shape == (n, 5)
        assert data.targets.shape == (n,)
        assert data.features.shape == (n, 2)
        assert len(data) == n

    def test_requires_fit(self, smooth_series):
        p = PreprocessPipeline(window=5)
        with pytest.raises(NotFittedError):
            p.prepare(smooth_series)

    def test_pca_off_features_are_frames(self, smooth_series):
        p = PreprocessPipeline(window=5, n_components=None).fit(smooth_series)
        data = p.prepare(smooth_series)
        np.testing.assert_array_equal(data.features, data.frames)

    def test_frozen_normalizer_on_test(self, smooth_series):
        """Test-half statistics must come from the train-half fit."""
        train, test = smooth_series[:200], smooth_series[200:]
        p = PreprocessPipeline(window=5).fit(train)
        z_train_mean = p.normalizer.mean
        _ = p.prepare(test)
        assert p.normalizer.mean == z_train_mean

    def test_prepare_tail_matches_batch(self, smooth_series):
        p = PreprocessPipeline(window=5).fit(smooth_series)
        frame, feature = p.prepare_tail(smooth_series)
        data = p.prepare(smooth_series)
        # The tail frame is the last *frame* of the series (which has no
        # target), so compare against framing the raw series directly.
        z = p.normalizer.transform(smooth_series)
        np.testing.assert_allclose(frame, z[-5:])
        np.testing.assert_allclose(feature, p.pca.transform(z[-5:]))
        assert feature.shape == (2,)
        assert data.features.shape[1] == 2

    def test_fit_prepare_equivalent(self, smooth_series):
        a = PreprocessPipeline(window=5).fit_prepare(smooth_series)
        p = PreprocessPipeline(window=5).fit(smooth_series)
        b = p.prepare(smooth_series)
        np.testing.assert_allclose(a.features, b.features)
