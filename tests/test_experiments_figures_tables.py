"""Unit tests for the per-figure/table experiment drivers."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.common import run_full_evaluation
from repro.experiments.fig6 import figure6, render_figure6
from repro.experiments.headline import headline_stats, render_headline
from repro.experiments.report import format_label_series, format_table, format_value
from repro.experiments.selection_series import (
    FIGURE_WINDOW_STEPS,
    figure4,
    figure5,
    selection_series,
)
from repro.experiments.table2 import table2, render_table2
from repro.experiments.table3 import table3, render_table3
from repro.vmm.vm import METRICS


@pytest.fixture(scope="module")
def evaluation():
    return run_full_evaluation(n_folds=2)


class TestReportHelpers:
    def test_format_value(self):
        assert format_value(float("nan")) == "NaN"
        assert format_value(None) == "NaN"
        assert format_value(1.23456, precision=2) == "1.23"
        assert format_value("AR") == "AR"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1.0, "x"], [2.0, "yy"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(l) for l in lines[2:]}) <= 2  # consistent widths

    def test_format_table_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_label_series(self):
        text = format_label_series([1, 2, 3, 1], names=("LAST", "AR", "SW_AVG"))
        assert "1231" in text
        assert "1=LAST" in text

    def test_format_label_series_wraps(self):
        text = format_label_series([1] * 100, width=40)
        lines = text.splitlines()
        assert len(lines[0]) == 40


class TestSelectionSeries:
    def test_figure4_shape(self):
        fig = figure4()
        assert fig.trace_id == "VM2/CPU_usedsec"
        # The 12-hour window is 144 samples; the first prediction needs
        # a full window of history, so 144 - 5 = 139 plotted steps.
        assert fig.n_steps == 139
        assert fig.n_steps <= FIGURE_WINDOW_STEPS
        assert fig.pool_names == ("LAST", "AR", "SW_AVG")

    def test_figure5_trace(self):
        fig = figure5()
        assert fig.trace_id == "VM2/NIC1_received"

    def test_labels_in_range(self):
        fig = figure4()
        for series in (fig.observed_best, fig.lar, fig.cum_mse):
            assert series.min() >= 1 and series.max() <= 3

    def test_best_predictor_varies_over_time(self):
        """The paper's core observation: the observed best predictor
        switches many times within the figure window."""
        fig = figure4()
        assert fig.switch_count("observed_best") > 10

    def test_lar_beats_nws_accuracy_on_figure_traces(self):
        fig = figure4()
        assert 0.0 <= fig.cum_mse_accuracy <= 1.0
        assert 0.0 <= fig.lar_accuracy <= 1.0

    def test_render_contains_sections(self):
        text = figure4().render()
        assert "Observed best predictor" in text
        assert "LARPredictor selection" in text
        assert "NWS Cum.MSE selection" in text

    def test_constant_trace_rejected(self, paper_traces):
        with pytest.raises(ConfigurationError):
            selection_series(paper_traces.get("VM3", "VD1_read"))


class TestTable2:
    def test_row_per_metric(self, evaluation):
        rows = table2(evaluation=evaluation)
        assert [r.metric for r in rows] == list(METRICS)

    def test_plar_is_row_minimum(self, evaluation):
        for row in table2(evaluation=evaluation):
            cells = [c for c in row.cells() if not math.isnan(c)]
            if cells:
                assert row.p_lar == min(cells)

    def test_best_column_excludes_plar(self, evaluation):
        for row in table2(evaluation=evaluation):
            assert row.best_column() in ("LAR", "LAST", "AR", "SW")

    def test_render(self, evaluation):
        text = render_table2(table2(evaluation=evaluation))
        assert "Table 2" in text
        assert "P-LAR" in text and "SW" in text

    def test_other_vm(self, evaluation):
        rows = table2(vm_id="VM3", evaluation=evaluation)
        by_metric = {r.metric: r for r in rows}
        assert math.isnan(by_metric["Memory_swapped"].lar)  # NaN cell


class TestTable3:
    def test_grid_complete(self, evaluation):
        grid = table3(evaluation=evaluation)
        assert len(grid.cells) == 60

    def test_nan_cells(self, evaluation):
        grid = table3(evaluation=evaluation)
        assert grid.cell("Memory_swapped", "VM3").render() == "NaN"
        assert grid.cell("NIC1_received", "VM5").render() == "NaN"

    def test_star_fraction_bounds(self, evaluation):
        grid = table3(evaluation=evaluation)
        assert 0.0 <= grid.star_fraction <= 1.0
        assert len(grid.valid_cells()) == 52

    def test_ar_dominates_winner_counts(self, evaluation):
        """Paper: 'Overall, the AR model performed better than the LAST
        and the SW_AVG models.'"""
        counts = table3(evaluation=evaluation).winner_counts()
        assert counts.get("AR", 0) > counts.get("LAST", 0)
        assert counts.get("AR", 0) > counts.get("SW_AVG", 0)

    def test_render(self, evaluation):
        text = render_table3(table3(evaluation=evaluation))
        assert "Table 3" in text
        assert "NaN" in text
        assert "*" in text


class TestFig6:
    def test_rows(self, evaluation):
        rows = figure6(evaluation=evaluation)
        assert [r.metric for r in rows] == list(METRICS)

    def test_plar_is_minimum_series(self, evaluation):
        for row in figure6(evaluation=evaluation):
            cells = [c for c in row.cells() if not math.isnan(c)]
            if cells:
                assert row.p_larp == min(cells)

    def test_render(self, evaluation):
        text = render_figure6(figure6(evaluation=evaluation))
        assert "Figure 6" in text
        assert "Knn-LARP" in text


class TestHeadline:
    def test_stats_fields(self, evaluation):
        stats = headline_stats(evaluation=evaluation)
        assert stats.n_valid_traces == 52
        assert 0.0 <= stats.lar_forecast_accuracy <= 1.0
        assert 0.0 <= stats.beats_nws_fraction <= 1.0
        assert stats.accuracy_margin == pytest.approx(
            stats.lar_forecast_accuracy - stats.nws_forecast_accuracy
        )

    def test_shape_claims(self, evaluation):
        """The paper's directional claims that must reproduce:

        1. LAR forecasts the best predictor better than the NWS rule.
        2. LAR beats the NWS selector on a majority of traces.
        3. The perfect selector has substantial headroom over NWS.
        """
        stats = headline_stats(evaluation=evaluation)
        assert stats.accuracy_margin > 0.0
        assert stats.beats_nws_fraction > 0.5
        assert stats.oracle_mse_reduction_vs_nws > 0.1
        assert stats.better_than_expert_fraction > 0.1

    def test_render(self, evaluation):
        text = render_headline(headline_stats(evaluation=evaluation))
        assert "paper: 44.23%" in text
        assert "paper: 66.67%" in text
