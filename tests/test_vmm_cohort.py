"""Unit tests for co-hosted (cohort) VM simulation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.vmm.devices import ConstantModel
from repro.vmm.host import HostServer
from repro.vmm.vm import METRICS, GuestVM


def _vm(vm_id: str, cpu: float) -> GuestVM:
    models = {m: ConstantModel(0.0) for m in METRICS}
    models["CPU_usedsec"] = ConstantModel(cpu)
    models["CPU_ready"] = ConstantModel(0.5)
    return GuestVM(vm_id=vm_id, description="t", models=models)


class TestSimulateCohort:
    def test_all_vms_reported(self):
        host = HostServer(background=ConstantModel(0.0))
        out = host.simulate_cohort([_vm("A", 10.0), _vm("B", 20.0)], 30, seed=0)
        assert set(out) == {"A", "B"}
        assert set(out["A"]) == set(METRICS)

    def test_no_contention_passthrough(self):
        host = HostServer(cpu_capacity=60.0, background=ConstantModel(0.0))
        out = host.simulate_cohort([_vm("A", 10.0), _vm("B", 20.0)], 20, seed=0)
        np.testing.assert_allclose(out["A"]["CPU_usedsec"], 10.0)
        np.testing.assert_allclose(out["B"]["CPU_usedsec"], 20.0)
        np.testing.assert_allclose(out["A"]["CPU_ready"], 0.5)

    def test_total_usage_never_exceeds_capacity(self):
        host = HostServer(cpu_capacity=60.0, background=ConstantModel(10.0))
        out = host.simulate_cohort(
            [_vm("A", 40.0), _vm("B", 50.0), _vm("C", 30.0)], 20, seed=0
        )
        total_guest = sum(out[i]["CPU_usedsec"] for i in ("A", "B", "C"))
        # Background gets the same proportional share: 10 * scale.
        scale = total_guest / (40.0 + 50.0 + 30.0)
        assert ((total_guest + 10.0 * scale) <= 60.0 + 1e-9).all()

    def test_contention_shared_proportionally(self):
        host = HostServer(cpu_capacity=60.0, background=ConstantModel(0.0))
        out = host.simulate_cohort([_vm("A", 40.0), _vm("B", 80.0)], 10, seed=0)
        # Total demand 120 on 60 capacity -> each halved.
        np.testing.assert_allclose(out["A"]["CPU_usedsec"], 20.0)
        np.testing.assert_allclose(out["B"]["CPU_usedsec"], 40.0)
        # Unserved 20 and 40 CPU-seconds -> ready of 33.3% and 66.7%
        # plus the 0.5 baseline.
        np.testing.assert_allclose(out["A"]["CPU_ready"], 0.5 + 20 / 60 * 100)
        np.testing.assert_allclose(out["B"]["CPU_ready"], 0.5 + 40 / 60 * 100)

    def test_cohort_couples_ready_traces(self):
        """A bursty neighbour's load shows up in a quiet guest's ready
        time — the cross-VM contention the paper's testbed exhibits."""
        from repro.vmm.devices import BurstyTrafficModel

        noisy_models = {m: ConstantModel(0.0) for m in METRICS}
        noisy_models["CPU_usedsec"] = BurstyTrafficModel(
            mean_on=50, mean_off=50, on_level=55.0, off_level=0.0,
            noise_std=0.0,
        )
        noisy_models["CPU_ready"] = ConstantModel(0.0)
        noisy = GuestVM(vm_id="noisy", description="t", models=noisy_models)
        quiet = _vm("quiet", 20.0)
        host = HostServer(cpu_capacity=60.0, background=ConstantModel(0.0))
        out = host.simulate_cohort([noisy, quiet], 2000, seed=1)
        neighbour_on = out["noisy"]["CPU_usedsec"] > 1.0
        ready_during_burst = out["quiet"]["CPU_ready"][neighbour_on].mean()
        ready_when_idle = out["quiet"]["CPU_ready"][~neighbour_on].mean()
        assert ready_during_burst > ready_when_idle + 1.0

    def test_validation(self):
        host = HostServer()
        with pytest.raises(ConfigurationError):
            host.simulate_cohort([], 10)
        with pytest.raises(ConfigurationError):
            host.simulate_cohort([_vm("A", 1.0), _vm("A", 2.0)], 10)
        with pytest.raises(ConfigurationError):
            host.simulate_cohort([_vm("A", 1.0)], 0)

    def test_deterministic(self):
        host = HostServer()
        vms = [_vm("A", 10.0), _vm("B", 20.0)]
        a = host.simulate_cohort(vms, 30, seed=9)
        b = host.simulate_cohort(vms, 30, seed=9)
        np.testing.assert_array_equal(
            a["A"]["CPU_ready"], b["A"]["CPU_ready"]
        )


class TestCollectCohort:
    def test_one_rrd_per_vm(self):
        from repro.vmm.monitor import PerformanceMonitoringAgent

        agent = PerformanceMonitoringAgent(
            HostServer(background=ConstantModel(0.0))
        )
        rrds = agent.collect_cohort(
            [_vm("A", 10.0), _vm("B", 20.0)], 30,
            report_interval_minutes=5, seed=0,
        )
        assert set(rrds) == {"A", "B"}
        for rrd in rrds.values():
            assert rrd.n_updates == 30
            _, v = rrd.fetch("CPU_usedsec", archive=1)
            assert v.size == 6

    def test_cohort_rrds_reflect_contention(self):
        from repro.vmm.monitor import PerformanceMonitoringAgent

        agent = PerformanceMonitoringAgent(
            HostServer(cpu_capacity=60.0, background=ConstantModel(0.0))
        )
        rrds = agent.collect_cohort(
            [_vm("A", 40.0), _vm("B", 80.0)], 10,
            report_interval_minutes=5, seed=0,
        )
        _, used_a = rrds["A"].fetch("CPU_usedsec", archive=0)
        np.testing.assert_allclose(used_a, 20.0)  # halved under contention

    def test_validation(self):
        from repro.vmm.monitor import PerformanceMonitoringAgent

        agent = PerformanceMonitoringAgent(HostServer())
        with pytest.raises(ConfigurationError):
            agent.collect_cohort([_vm("A", 1.0)], 0)
        with pytest.raises(ConfigurationError):
            agent.collect_cohort([_vm("A", 1.0)], 10, report_interval_minutes=0)
