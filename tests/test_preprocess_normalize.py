"""Unit and property tests for the z-score normalizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import NotFittedError
from repro.preprocess.normalize import ZScoreNormalizer

series_strategy = arrays(
    np.float64,
    st.integers(min_value=2, max_value=100),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestFitTransform:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(10.0, 3.0, 500)
        z = ZScoreNormalizer().fit_transform(x)
        assert abs(z.mean()) < 1e-12
        assert z.std() == pytest.approx(1.0)

    def test_frozen_coefficients_on_test_data(self):
        """Test data is normalized with *training* coefficients (§6.2)."""
        norm = ZScoreNormalizer().fit([0.0, 2.0])  # mean 1, std 1
        z = norm.transform([3.0])
        assert z[0] == pytest.approx(2.0)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            ZScoreNormalizer().transform([1.0])
        with pytest.raises(NotFittedError):
            ZScoreNormalizer().inverse_transform([1.0])

    def test_constant_series_clamped(self):
        norm = ZScoreNormalizer().fit(np.full(10, 5.0))
        z = norm.transform(np.full(10, 5.0))
        np.testing.assert_allclose(z, 0.0)
        assert norm.std == norm.min_std

    def test_bad_min_std(self):
        with pytest.raises(ValueError):
            ZScoreNormalizer(min_std=0.0)

    @given(series_strategy)
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, x):
        norm = ZScoreNormalizer().fit(x)
        back = norm.inverse_transform(norm.transform(x))
        np.testing.assert_allclose(back, x, atol=1e-6 * (1 + np.abs(x).max()))


class TestScalarPaths:
    def test_transform_value_matches_array_path(self):
        norm = ZScoreNormalizer().fit([1.0, 2.0, 3.0])
        assert norm.transform_value(2.5) == pytest.approx(norm.transform([2.5])[0])

    def test_inverse_value_roundtrip(self):
        norm = ZScoreNormalizer().fit([1.0, 5.0, 9.0])
        assert norm.inverse_transform_value(norm.transform_value(4.2)) == pytest.approx(4.2)


class TestIntrospection:
    def test_repr_states(self):
        n = ZScoreNormalizer()
        assert "unfitted" in repr(n)
        n.fit([1.0, 2.0])
        assert "mean=" in repr(n)

    def test_properties_after_fit(self):
        n = ZScoreNormalizer().fit([2.0, 4.0])
        assert n.mean == pytest.approx(3.0)
        assert n.std == pytest.approx(1.0)
        assert n.is_fitted
