"""Bit-exactness, budget, and cost tests for the batched train engine.

Like the tick engine, :class:`~repro.serving.trainer.BatchedTrainEngine`
is an execution strategy, not a model change: a batched training burst
must leave every stream in the identical state a per-stream
``OnlineLARPredictor.train(history)`` call would — same normalizer and
AR coefficients, same PCA basis, same labels and classifier memory,
same forecasts afterwards. These tests compare the assembled models
field by field, drive whole fleets down both paths, and pin the retrain
budget scheduler's oldest-breach-first semantics.
"""

import numpy as np
import pytest

from repro.core.config import LARConfig
from repro.core.online import OnlineLARPredictor
from repro.exceptions import ConfigurationError, DataError
from repro.serving import BatchedTrainEngine, FleetConfig, PredictionFleet
from repro.traces.synthetic import ar1_series


def _reference(config, history):
    """The per-stream training path the batched burst must reproduce."""
    return OnlineLARPredictor(
        config.lar,
        label_smoothing=config.label_smoothing,
        max_memory=config.max_memory,
        history_limit=config.history_limit,
    ).train(history)


def _assert_same_model(batched, reference, name=""):
    """Field-by-field bit equality of two trained online predictors."""
    nb = batched._runner.pipeline.normalizer
    nr = reference._runner.pipeline.normalizer
    assert nb.mean == nr.mean and nb.std == nr.std, name
    pb = batched._runner.pipeline.pca
    pr = reference._runner.pipeline.pca
    assert (pb is None) == (pr is None), name
    if pb is not None:
        np.testing.assert_array_equal(pb.mean_, pr.mean_, err_msg=name)
        np.testing.assert_array_equal(
            pb.components_, pr.components_, err_msg=name
        )
        np.testing.assert_array_equal(
            pb.explained_variance_, pr.explained_variance_, err_msg=name
        )
        np.testing.assert_array_equal(
            pb.explained_variance_ratio_,
            pr.explained_variance_ratio_,
            err_msg=name,
        )
    ab, ar = batched._runner.pool[1], reference._runner.pool[1]
    assert ab.mean_ == ar.mean_, name
    np.testing.assert_array_equal(ab.coefficients_, ar.coefficients_, err_msg=name)
    assert ab.noise_variance_ == ar.noise_variance_, name
    cb, cr = batched._classifier, reference._classifier
    np.testing.assert_array_equal(cb._X, cr._X, err_msg=name)
    np.testing.assert_array_equal(cb._y, cr._y, err_msg=name)
    np.testing.assert_array_equal(cb.classes_, cr.classes_, err_msg=name)
    tb, tr = batched._runner._train, reference._runner._train
    np.testing.assert_array_equal(tb.frames, tr.frames, err_msg=name)
    np.testing.assert_array_equal(tb.targets, tr.targets, err_msg=name)
    np.testing.assert_array_equal(tb.features, tr.features, err_msg=name)
    np.testing.assert_array_equal(
        batched.recent_history(), reference.recent_history(), err_msg=name
    )
    fb, fr = batched.forecast(), reference.forecast()
    assert fb == fr, name


def _histories(n, length=200, seed=0):
    """Drift-storm histories: AR(1) segments with a mid-series shift."""
    out = []
    for i in range(n):
        base = 10.0 + 3.0 * ar1_series(length, phi=0.85, seed=seed + i)
        base[length // 2 :] += 4.0  # the regime shift that triggered QA
        out.append(base)
    return out


class TestTrainManyParity:
    def test_each_stream_matches_per_stream_train(self):
        config = FleetConfig(max_memory=32, history_limit=256)
        histories = _histories(6)
        trained = BatchedTrainEngine(config).train_many(histories)
        for i, h in enumerate(histories):
            _assert_same_model(trained[i], _reference(config, h), f"stream {i}")

    def test_ragged_lengths_group_and_match(self):
        """Mixed history lengths (mid-warm-up streams, short limits)
        train in per-length groups, each still bit-exact."""
        config = FleetConfig()
        histories = _histories(2, length=200) + _histories(
            3, length=150, seed=7
        ) + _histories(1, length=73, seed=11)
        trained = BatchedTrainEngine(config).train_many(histories)
        for i, h in enumerate(histories):
            _assert_same_model(trained[i], _reference(config, h), f"stream {i}")

    def test_parity_with_pca_disabled(self):
        config = FleetConfig(lar=LARConfig(n_components=None))
        histories = _histories(4, seed=3)
        trained = BatchedTrainEngine(config).train_many(histories)
        for i, h in enumerate(histories):
            _assert_same_model(trained[i], _reference(config, h), f"stream {i}")

    def test_parity_on_constant_and_tied_streams(self):
        """Zero-variance and alternating histories hit the normalizer's
        min_std floor and exact label ties — where a divergent kernel
        would first show."""
        config = FleetConfig()
        histories = [
            np.full(120, 7.0),
            np.tile([1.0, 2.0], 60),
            np.zeros(120),
        ]
        trained = BatchedTrainEngine(config).train_many(histories)
        for i, h in enumerate(histories):
            _assert_same_model(trained[i], _reference(config, h), f"stream {i}")

    def test_unsupported_config_raises(self):
        config = FleetConfig(lar=LARConfig(extended_pool=True))
        engine = BatchedTrainEngine(config)
        assert not engine.supported
        with pytest.raises(ConfigurationError):
            engine.train_many(_histories(2))
        assert not BatchedTrainEngine(
            FleetConfig(lar=LARConfig(n_components=None, min_variance=0.9))
        ).supported

    def test_rejects_bad_histories(self):
        engine = BatchedTrainEngine(FleetConfig())
        with pytest.raises(DataError):
            engine.train_many([np.ones((4, 4))])
        with pytest.raises(DataError):
            engine.train_many([np.ones(3)])  # shorter than window + 2
        bad = _histories(1)[0]
        bad[10] = np.nan
        with pytest.raises(DataError):
            engine.train_many([bad])


def _drift_feed(seed):
    rng = np.random.default_rng(seed)
    state = {}

    def feed(t, names):
        drift = 0.6 if (t // 80) % 2 else 0.02
        for n in names:
            state[n] = state.get(n, 0.0) + 0.2 * float(rng.standard_normal()) + drift
        return dict(state)

    return feed


def _drive_pair(config, ticks, *, names=None, feed_seed=2, loop_config=None):
    """Drive a batched-retrain fleet and a per-stream-retrain fleet
    through the same feed, asserting tick-level parity."""
    names = names or [f"s{i}" for i in range(6)]
    batched = PredictionFleet(config, streams=names)
    loop = PredictionFleet(loop_config or config, streams=names)
    feed = _drift_feed(feed_seed)
    for t in range(ticks):
        vals = feed(t, names)
        assert batched.forecast_all(batched=True) == (
            loop.forecast_all(batched=False)
        ), t
        assert batched.ingest(vals, batched=True) == (
            loop.ingest(vals, batched=False)
        ), t
    return batched, loop


def _assert_same_fleet(a, b):
    assert a.metrics() == b.metrics()
    assert a.pending_retrains == b.pending_retrains
    for name in a.stream_names:
        sa, sb = a._streams[name], b._streams[name]
        assert sa.qa.audits == sb.qa.audits, name
        assert (sa.due_at, sa.train_due, sa.retrain_due) == (
            sb.due_at, sb.train_due, sb.retrain_due
        ), name
        if sa.predictor is None:
            assert sb.predictor is None, name
            continue
        _assert_same_model(sa.predictor, sb.predictor, name)


class TestFleetRetrainParity:
    def test_drift_storm_parity(self):
        """Regime shifts breach every stream's QA repeatedly; the
        batched retrain path must track the per-stream path through
        every retrain cycle."""
        config = FleetConfig(
            max_memory=24, qa_threshold=0.5, audit_window=16,
            audit_interval=4, retrain_window=96, history_limit=256,
        )
        batched, loop = _drive_pair(config, 280)
        assert batched.metrics().total_retrains > 0  # the point of the test
        _assert_same_fleet(batched, loop)

    def test_warmup_initial_trains_run_batched_and_match(self):
        """Lazy warm-up training is part of the same burst: streams
        crossing min_train together train as one stacked group."""
        config = FleetConfig(qa_threshold=50.0)
        batched, loop = _drive_pair(config, 80, feed_seed=5)
        assert batched.metrics().n_trained == 6
        _assert_same_fleet(batched, loop)

    def test_ineligible_config_falls_back_to_parallel_map(self):
        """min_variance PCA can't stack; run_pending_retrains must
        transparently serve it per stream, batched flag or not."""
        config = FleetConfig(
            lar=LARConfig(n_components=None, min_variance=0.9),
            qa_threshold=50.0,
        )
        batched, loop = _drive_pair(config, 80, feed_seed=6)
        assert batched.metrics().n_trained == 6
        assert not batched._get_train_engine().supported
        _assert_same_fleet(batched, loop)


class TestRetrainBudget:
    def test_config_validates_budget(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(max_retrains_per_tick=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(max_retrains_per_tick=-1)
        assert FleetConfig(max_retrains_per_tick=3).max_retrains_per_tick == 3

    def test_explicit_budget_argument(self):
        fleet = PredictionFleet(FleetConfig(), streams=["a"])
        with pytest.raises(ConfigurationError):
            fleet.run_pending_retrains(budget=-1)
        assert fleet.run_pending_retrains(budget=0) == ()

    def test_queue_is_served_oldest_breach_first(self):
        config = FleetConfig(auto_retrain=False, qa_threshold=50.0)
        fleet = PredictionFleet(config, streams=["a", "b", "c"])
        feed = _drift_feed(8)
        names = ["a", "b", "c"]
        # Stagger warm-up completion: "c" crosses min_train two ticks
        # before "a" and "b" do.
        for t in range(config.min_train - 2):
            fleet.ingest(feed(t, names))
        for t in range(2):
            vals = feed(100 + t, names)
            fleet.ingest({"c": vals["c"]})
        fleet.ingest(feed(200, names))
        fleet.ingest(feed(201, names))
        assert fleet.pending_retrains == ("c", "a", "b")
        # "c" kept ingesting while due; its stamp still marks the
        # original breach tick, not the latest one.
        assert (
            fleet._streams["c"].due_at < fleet._streams["a"].due_at
        )
        # A budget of 1 serves the oldest breach; the rest stay queued.
        assert fleet.run_pending_retrains(budget=1) == ("c",)
        assert fleet.pending_retrains == ("a", "b")
        assert fleet.is_trained("c") and not fleet.is_trained("a")
        assert fleet.run_pending_retrains(budget=None) == ("a", "b")
        assert fleet.pending_retrains == ()

    def test_ingest_never_pays_more_than_the_budget(self, monkeypatch):
        """With max_retrains_per_tick set, no single ingest call trains
        more than the budgeted streams, and deferred streams keep
        serving their current model until a later tick reaches them."""
        budget = 2
        config = FleetConfig(
            max_retrains_per_tick=budget, max_memory=24, qa_threshold=0.5,
            audit_window=16, audit_interval=4, retrain_window=96,
            history_limit=256,
        )
        names = [f"s{i}" for i in range(8)]
        fleet = PredictionFleet(config, streams=names)
        bursts = []
        orig = BatchedTrainEngine.train_many

        def counting(self, histories):
            bursts.append(len(histories))
            return orig(self, histories)

        monkeypatch.setattr(BatchedTrainEngine, "train_many", counting)
        feed = _drift_feed(9)
        for t in range(300):
            fleet.forecast_all()
            fleet.ingest(feed(t, names))
        assert bursts and max(bursts) <= budget
        # The storm schedules everything eventually; the budget defers
        # but never starves (8 warm-up trains alone need 4 bursts).
        assert fleet.metrics().n_trained == len(names)
        assert fleet.metrics().total_retrains > 0

    def test_budgeted_fleet_converges_to_unbudgeted_models(self):
        """Once the queue drains, a budgeted fleet has retrained every
        stream a drift storm scheduled — deferred, not dropped."""
        base = dict(
            max_memory=24, qa_threshold=0.5, audit_window=16,
            audit_interval=4, retrain_window=96, history_limit=256,
        )
        names = [f"s{i}" for i in range(6)]
        budgeted = PredictionFleet(
            FleetConfig(max_retrains_per_tick=1, **base), streams=names
        )
        feed = _drift_feed(10)
        for t in range(280):
            budgeted.forecast_all()
            budgeted.ingest(feed(t, names))
        # Drain whatever the last ticks deferred.
        while budgeted.pending_retrains:
            budgeted.run_pending_retrains(budget=None)
        metrics = budgeted.metrics()
        assert metrics.n_trained == len(names)
        assert metrics.total_retrains > 0
        assert metrics.pending_retrains == 0


class TestTrainingCost:
    def test_batched_burst_makes_no_per_stream_train_calls(self, monkeypatch):
        """The batched path must assemble models from fitted parts, not
        loop over OnlineLARPredictor.train."""
        config = FleetConfig(qa_threshold=50.0)
        names = [f"s{i}" for i in range(5)]
        fleet = PredictionFleet(config, streams=names)

        def forbidden(self, history):
            raise AssertionError("per-stream train on the batched path")

        monkeypatch.setattr(OnlineLARPredictor, "train", forbidden)
        feed = _drift_feed(11)
        for t in range(config.min_train + 5):
            fleet.ingest(feed(t, names))
        assert fleet.metrics().n_trained == len(names)


class TestSaveLoadWithPendingRetrains:
    def test_deferred_queue_survives_roundtrip(self, tmp_path):
        """A budgeted fleet saved mid-storm restores with the same
        deferred queue, order, and budget — and continues identically."""
        config = FleetConfig(
            max_retrains_per_tick=1, max_memory=24, qa_threshold=0.5,
            audit_window=16, audit_interval=4, retrain_window=96,
            history_limit=256,
        )
        names = [f"s{i}" for i in range(6)]
        fleet = PredictionFleet(config, streams=names)
        feed = _drift_feed(12)
        t = 0
        # Drive until the budget has actually deferred something.
        while len(fleet.pending_retrains) < 2:
            fleet.forecast_all()
            fleet.ingest(feed(t, names))
            t += 1
            assert t < 600, "storm never built a deferred queue"
        fleet.save(tmp_path / "fleet")
        restored = PredictionFleet.load(tmp_path / "fleet")
        assert restored.config.max_retrains_per_tick == 1
        assert restored.pending_retrains == fleet.pending_retrains
        assert restored._due_seq == max(
            s.due_at for s in fleet._streams.values()
        )
        for _ in range(40):
            vals = feed(t, names)
            t += 1
            assert restored.forecast_all() == fleet.forecast_all()
            assert restored.ingest(vals) == fleet.ingest(vals)
        _assert_same_fleet(restored, fleet)
