"""Tests for the flight recorder leg (repro.obs.flight / quantiles).

Covers the P² quantile digests, the bounded span ring, the Chrome
trace-event exporter, the anomaly trigger's three trip wires, the
fleet ``flight_dir`` wiring, and the cross-process shard telemetry
merge (worker phases landing in the parent registry and ring under
``shard=N`` labels).
"""

import json

import numpy as np
import pytest

from repro.core.config import LARConfig
from repro.exceptions import ConfigurationError
from repro.obs import (
    AnomalyTrigger,
    FlightRecorder,
    P2Quantile,
    PhaseQuantiles,
    SpanRecord,
    Telemetry,
    chrome_trace,
    write_chrome_trace,
)
from repro.obs.events import EventLog
from repro.parallel.pool_exec import ParallelConfig, notify_pool_failure
from repro.serving import BatchedTrainEngine, FleetConfig, PredictionFleet
from repro.traces.synthetic import ar1_series

SERIAL = ParallelConfig(max_workers=1)


def small_config(**overrides):
    defaults = dict(
        lar=LARConfig(window=5),
        min_train=30,
        qa_threshold=3.0,
        audit_window=16,
        audit_interval=8,
        parallel=SERIAL,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


# -- P² quantile digests ------------------------------------------------------


class TestP2Quantile:
    def test_rejects_quantiles_outside_unit_interval(self):
        for q in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(ConfigurationError):
                P2Quantile(q)

    def test_empty_digest_reads_zero(self):
        assert P2Quantile(0.5).value() == 0.0

    def test_small_samples_are_exact(self):
        """With n <= 5 the digest interpolates the sorted sample."""
        digest = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            digest.observe(v)
        assert digest.value() == 2.0
        assert digest.count == 3
        # Even-length median interpolates the middle pair.
        digest.observe(10.0)
        assert digest.value() == pytest.approx(2.5)

    def test_tracks_sample_quantiles_of_gaussian(self):
        rng = np.random.default_rng(7)
        sample = rng.normal(0.0, 1.0, size=20000)
        for q in (0.5, 0.95, 0.99):
            digest = P2Quantile(q)
            for v in sample:
                digest.observe(v)
            assert digest.value() == pytest.approx(
                float(np.quantile(sample, q)), abs=0.08
            )

    def test_tracks_heavy_tailed_sample(self):
        rng = np.random.default_rng(11)
        sample = rng.lognormal(mean=-3.0, sigma=1.0, size=10000)
        digest = P2Quantile(0.95)
        for v in sample:
            digest.observe(v)
        true = float(np.quantile(sample, 0.95))
        assert digest.value() == pytest.approx(true, rel=0.15)

    def test_phase_bundle_estimates_are_ordered(self):
        rng = np.random.default_rng(3)
        bundle = PhaseQuantiles()
        for v in rng.exponential(0.01, size=2000):
            bundle.observe(v)
        est = bundle.estimates()
        assert set(est) == {"p50", "p95", "p99"}
        assert est["p50"] <= est["p95"] <= est["p99"]
        assert bundle.count == 2000


# -- flight recorder ring -----------------------------------------------------


class TestFlightRecorder:
    def test_capacity_validated(self):
        for bad in (0, -1, 2.5):
            with pytest.raises(ConfigurationError):
                FlightRecorder(capacity=bad)

    def test_ring_evicts_oldest_and_counts_loss(self):
        flight = FlightRecorder(capacity=4)
        for i in range(6):
            flight.record(f"phase.{i}", start=float(i), duration=0.01)
        assert len(flight) == 4
        assert flight.total_recorded == 6
        assert flight.dropped == 2
        assert [r.name for r in flight.records()] == [
            "phase.2", "phase.3", "phase.4", "phase.5",
        ]

    def test_set_tick_stamps_subsequent_records(self):
        flight = FlightRecorder(capacity=8)
        flight.record("a", start=0.0, duration=0.01)
        flight.set_tick(42)
        flight.record("b", start=1.0, duration=0.01)
        ticks = {r.name: r.tick for r in flight.records()}
        assert ticks == {"a": 0, "b": 42}

    def test_filters_by_name_and_shard(self):
        flight = FlightRecorder(capacity=8)
        flight.record("train.ar_fit", 0.0, 0.01, batch=8, shard=0)
        flight.record("train.ar_fit", 0.1, 0.01, batch=8, shard=1)
        flight.record("tick.audit", 0.2, 0.01)
        assert len(flight.records(name="train.ar_fit")) == 2
        assert len(flight.records(shard=1)) == 1
        only = flight.records(name="train.ar_fit", shard=0)
        assert len(only) == 1 and only[0].batch == 8

    def test_listeners_see_every_record(self):
        flight = FlightRecorder(capacity=4)
        seen = []
        flight.listeners.append(seen.append)
        flight.record("a", 0.0, 0.5, batch=3)
        assert len(seen) == 1
        assert isinstance(seen[0], SpanRecord)
        assert seen[0].as_dict()["batch"] == 3

    def test_snapshot_is_json_safe_and_clear_keeps_totals(self):
        flight = FlightRecorder(capacity=4)
        flight.record("a", 0.0, 0.5)
        snap = json.loads(json.dumps(flight.snapshot()))
        assert snap["records"][0]["name"] == "a"
        assert snap["capacity"] == 4
        assert "wall_anchor" in snap and "mono_anchor" in snap
        flight.clear()
        assert len(flight) == 0
        assert flight.total_recorded == 1


# -- Chrome trace export ------------------------------------------------------


def _loaded_flight():
    """A recorder with main-lane and shard-lane records."""
    flight = FlightRecorder(capacity=64)
    anchor = flight.mono_anchor
    flight.set_tick(5)
    flight.record("tick.audit", anchor + 0.001, 0.002, batch=4)
    flight.record("train.ar_fit", anchor + 0.004, 0.003, batch=8, shard=0)
    flight.record("train.ar_fit", anchor + 0.004, 0.004, batch=8, shard=1)
    return flight


class TestChromeTrace:
    def test_trace_shape_and_lanes(self):
        doc = chrome_trace(_loaded_flight())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X"}
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # Main-process work on lane 0, shard N on lane N + 1.
        by_name = {(e["name"], e["tid"]) for e in spans}
        assert ("tick.audit", 0) in by_name
        assert ("train.ar_fit", 1) in by_name
        assert ("train.ar_fit", 2) in by_name
        for span in spans:
            assert span["ts"] >= 0.0 and span["dur"] > 0.0
            assert span["args"]["tick"] == 5
        shard_span = next(e for e in spans if e["tid"] == 2)
        assert shard_span["args"]["shard"] == 1

    def test_lane_metadata_names_shards(self):
        doc = chrome_trace(_loaded_flight(), process_name="unit-test")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {
            (e["name"], e["tid"]): e["args"]["name"] for e in meta
        }
        assert names[("process_name", 0)] == "unit-test"
        assert names[("thread_name", 0)] == "main"
        assert names[("thread_name", 1)] == "shard 0"
        assert names[("thread_name", 2)] == "shard 1"

    def test_events_become_instant_markers(self):
        flight = _loaded_flight()
        log = EventLog(capacity=8)
        log.emit("qa_breach", tick=5, stream="a", window_mse=9.0)
        doc = chrome_trace(flight, log)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        (marker,) = instants
        assert marker["name"] == "qa_breach"
        assert marker["s"] == "p"
        assert marker["args"]["stream"] == "a"
        assert marker["args"]["window_mse"] == 9.0

    def test_unstamped_legacy_events_are_skipped(self):
        """Events loaded from pre-upgrade snapshots carry mono=0.0."""
        legacy = EventLog.from_snapshot(
            {
                "capacity": 8,
                "total_emitted": 1,
                "dropped": 0,
                "events": [
                    {"seq": 0, "kind": "qa_breach", "tick": 1, "stream": "a"}
                ],
            }
        )
        doc = chrome_trace(_loaded_flight(), legacy)
        assert [e for e in doc["traceEvents"] if e["ph"] == "i"] == []

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", _loaded_flight())
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert doc["metadata"]["wall_anchor"] > 0.0


# -- anomaly trigger ----------------------------------------------------------


def _flight_tel():
    tel = Telemetry(flight=True)
    tel.tracer.record("tick.audit", 0.002, batch=4)
    tel.events.emit("qa_breach", tick=1, stream="a", window_mse=9.0)
    return tel


class TestAnomalyTrigger:
    def test_requires_flight_recorder(self, tmp_path):
        with pytest.raises(ConfigurationError):
            AnomalyTrigger(tmp_path, Telemetry())

    def test_parameters_validated(self, tmp_path):
        tel = _flight_tel()
        with pytest.raises(ConfigurationError):
            AnomalyTrigger(tmp_path, tel, breach_storm=0)
        with pytest.raises(ConfigurationError):
            AnomalyTrigger(tmp_path, tel, spike_factor=1.0)

    def test_breach_storm_writes_dump_and_trace(self, tmp_path):
        tel = _flight_tel()
        with AnomalyTrigger(tmp_path, tel, extra={"run": "unit"}) as trigger:
            trigger.note_breaches(3)  # below threshold: no dump
            assert trigger.dumps == []
            trigger.note_breaches(8, tick=7)
        (dump_dir,) = trigger.dumps
        assert dump_dir.name == "flight-001-qa_breach_storm"
        doc = json.loads((dump_dir / "dump.json").read_text())
        assert doc["reason"] == "qa_breach_storm"
        assert doc["detail"] == {"breaches": 8, "tick": 7}
        assert doc["extra"] == {"run": "unit"}
        assert {"flight", "events", "metrics", "spans", "quantiles"} <= set(
            doc
        )
        assert doc["flight"]["records"]
        assert "tick.audit" in doc["quantiles"]
        trace = json.loads((dump_dir / "trace.json").read_text())
        assert trace["traceEvents"]

    def test_cooldown_suppresses_re_trips(self, tmp_path):
        tel = _flight_tel()
        with AnomalyTrigger(tmp_path, tel, cooldown_ticks=10) as trigger:
            assert trigger.trigger("qa_breach_storm") is not None
            tel.flight.set_tick(5)
            assert trigger.trigger("qa_breach_storm") is None
            assert trigger.suppressed == 1
            tel.flight.set_tick(12)
            assert trigger.trigger("qa_breach_storm") is not None
        assert len(trigger.dumps) == 2
        assert trigger.dumps[1].name == "flight-002-qa_breach_storm"

    def test_phase_spike_trips_after_baseline_warms(self, tmp_path):
        tel = Telemetry(flight=True)
        with AnomalyTrigger(
            tmp_path, tel, spike_factor=8.0, spike_min_count=32
        ) as trigger:
            for _ in range(40):
                tel.tracer.record("tick.audit", 0.001)
            assert trigger.dumps == []  # steady state: quiet
            tel.tracer.record("tick.audit", 0.1)
        (dump_dir,) = trigger.dumps
        assert "phase_spike" in dump_dir.name
        doc = json.loads((dump_dir / "dump.json").read_text())
        assert doc["detail"]["phase"] == "tick.audit"
        assert doc["detail"]["duration"] == pytest.approx(0.1)
        assert doc["detail"]["baseline"] == pytest.approx(0.001, rel=0.01)

    def test_cold_phases_never_spike(self, tmp_path):
        """A slow first occurrence is a baseline, not an anomaly."""
        tel = Telemetry(flight=True)
        with AnomalyTrigger(tmp_path, tel, spike_min_count=32) as trigger:
            tel.tracer.record("train.rebuild", 0.001)
            tel.tracer.record("train.rebuild", 5.0)
            assert trigger.dumps == []

    def test_broken_pool_hook_fires_until_closed(self, tmp_path):
        tel = _flight_tel()
        trigger = AnomalyTrigger(tmp_path, tel, cooldown_ticks=0)
        try:
            notify_pool_failure(RuntimeError("worker died"))
            assert len(trigger.dumps) == 1
            assert "broken_pool" in trigger.dumps[0].name
            doc = json.loads((trigger.dumps[0] / "dump.json").read_text())
            assert "worker died" in doc["detail"]["error"]
        finally:
            trigger.close()
        notify_pool_failure(RuntimeError("after close"))
        assert len(trigger.dumps) == 1
        trigger.close()  # idempotent

    def test_close_detaches_ring_listener(self, tmp_path):
        tel = Telemetry(flight=True)
        trigger = AnomalyTrigger(tmp_path, tel)
        assert trigger._on_record in tel.flight.listeners
        trigger.close()
        assert trigger._on_record not in tel.flight.listeners


# -- fleet wiring -------------------------------------------------------------


class TestFleetFlight:
    def _storm(self, flight_dir, *, n_streams=16, ticks=144):
        names = [f"s{i}" for i in range(n_streams)]
        fleet = PredictionFleet(
            small_config(), streams=names, telemetry=True,
            flight_dir=flight_dir,
        )
        feeds = {}
        for i, name in enumerate(names):
            series = 10.0 + 2.0 * ar1_series(ticks, phi=0.9, seed=i)
            if i % 2 == 0:
                series = series.copy()
                series[ticks // 2:] += 25.0
            feeds[name] = series
        try:
            for t in range(ticks):
                fleet.forecast_all()
                fleet.ingest({n: feeds[n][t] for n in names})
                fleet.run_pending_retrains()
        finally:
            fleet.close()
        return fleet

    def test_flight_dir_arms_recorder_and_dumps_on_storm(self, tmp_path):
        """Acceptance: a drift storm with --flight-dir produces a dump."""
        fleet = self._storm(tmp_path)
        assert fleet.telemetry.flight is not None
        assert fleet.telemetry.flight.total_recorded > 0
        trigger = fleet.anomaly_trigger
        assert trigger is not None
        assert trigger.dumps, "drift storm should trip the anomaly trigger"
        for dump_dir in trigger.dumps:
            assert (dump_dir / "dump.json").exists()
            assert (dump_dir / "trace.json").exists()
        reasons = {d.name.split("-", 2)[2] for d in trigger.dumps}
        assert reasons <= {"qa_breach_storm", "phase_spike", "broken_pool"}

    def test_records_carry_fleet_ticks(self, tmp_path):
        fleet = self._storm(tmp_path, n_streams=4, ticks=80)
        ticks = {r.tick for r in fleet.telemetry.flight.records()}
        assert max(ticks) > 1  # set_tick advanced with ingest

    def test_close_is_idempotent(self, tmp_path):
        fleet = self._storm(tmp_path, n_streams=4, ticks=60)
        fleet.close()
        fleet.close()

    def test_no_flight_dir_means_no_trigger(self):
        fleet = PredictionFleet(small_config(), telemetry=True)
        assert fleet.anomaly_trigger is None
        assert fleet.telemetry.flight is None


# -- cross-process shard telemetry -------------------------------------------


WORKER_PHASES = {
    "train.zscore_fit", "train.ar_fit", "train.labelling", "train.pca_eigh",
}


def _histories(n, length=120):
    return [
        10.0 + 3.0 * ar1_series(length, phi=0.85, seed=i) for i in range(n)
    ]


class TestShardFlightTelemetry:
    def test_worker_phases_merge_under_shard_labels(self):
        """Acceptance: worker-side phases appear with shard=N labels."""
        tel = Telemetry(flight=True)
        engine = BatchedTrainEngine(
            small_config(), telemetry=tel, shards=2, min_shard_streams=1
        )
        engine.train_many(_histories(16))
        # Registry: repro_span_seconds children labelled span+shard.
        series = tel.registry.snapshot()["repro_span_seconds"]["series"]
        sharded = {
            (s["labels"]["span"], s["labels"]["shard"])
            for s in series
            if "shard" in s["labels"]
        }
        assert sharded >= {
            (phase, shard)
            for phase in WORKER_PHASES
            for shard in ("0", "1")
        }
        # Flight ring: the same phases, shard-stamped, re-anchored
        # inside their parent train.shard span.
        for shard in (0, 1):
            recs = tel.flight.records(shard=shard)
            assert {r.name for r in recs} >= WORKER_PHASES
        dispatches = tel.flight.records(name="train.shard")
        assert len(dispatches) == 2
        t0 = min(r.start for r in dispatches)
        t1 = max(r.start + r.duration for r in dispatches)
        for shard in (0, 1):
            for rec in tel.flight.records(shard=shard):
                assert t0 - 1e-6 <= rec.start
                assert rec.start + rec.duration <= t1 + 1e-6

    def test_sharded_vs_single_span_parity(self):
        """The same kernels are timed whether or not workers run them."""
        histories = _histories(16)
        single = Telemetry()
        BatchedTrainEngine(small_config(), telemetry=single).train_many(
            histories
        )
        sharded = Telemetry()
        BatchedTrainEngine(
            small_config(), telemetry=sharded, shards=2, min_shard_streams=1
        ).train_many(histories)
        single_stats = single.tracer.stats()
        sharded_stats = sharded.tracer.stats()
        # Same phase vocabulary (modulo the shard-dispatch span itself).
        assert set(single_stats) == set(sharded_stats) - {"train.shard"}
        # Every stream passed through every phase on both paths.
        for name in WORKER_PHASES:
            assert (
                single_stats[name].batch_total
                == sharded_stats[name].batch_total
                == 16
            )

    def test_quantile_digests_cover_worker_phases(self):
        tel = Telemetry()
        engine = BatchedTrainEngine(
            small_config(), telemetry=tel, shards=2, min_shard_streams=1
        )
        engine.train_many(_histories(16))
        snap = tel.tracer.quantiles_snapshot()
        assert WORKER_PHASES <= set(snap)
        for name in WORKER_PHASES:
            entry = snap[name]
            assert entry["count"] >= 2
            assert entry["p50"] <= entry["p95"] <= entry["p99"]
        table = tel.tracer.render_quantiles()
        assert "p99" in table and "train.ar_fit" in table
