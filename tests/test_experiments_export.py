"""Unit tests for the artifact export module."""

import csv
import json

import pytest

from repro.experiments.common import run_full_evaluation
from repro.experiments.export import export_all_artifacts


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    directory = tmp_path_factory.mktemp("artifacts")
    evaluation = run_full_evaluation(n_folds=2)
    files = export_all_artifacts(directory, evaluation=evaluation)
    return directory, files


class TestExport:
    def test_all_files_written(self, exported):
        directory, files = exported
        expected = {
            "headline.txt", "headline.json",
            "table2.txt", "table2.csv",
            "table3.txt", "table3.csv",
            "fig6.txt", "fig6.csv",
            "fig4.txt", "fig4.csv",
            "fig5.txt", "fig5.csv",
            "per_trace.csv",
        }
        assert expected == set(files)
        for name in files:
            assert (directory / name).exists()
            assert (directory / name).stat().st_size > 0

    def test_headline_json_parses(self, exported):
        directory, _ = exported
        data = json.loads((directory / "headline.json").read_text())
        assert data["n_valid_traces"] == 52
        assert 0.0 <= data["beats_nws_fraction"] <= 1.0
        assert data["n_folds"] == 2

    def test_table2_csv_shape(self, exported):
        directory, _ = exported
        with (directory / "table2.csv").open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["metric", "p_lar", "lar", "last", "ar", "sw"]
        assert len(rows) == 13  # header + 12 metrics

    def test_table3_csv_has_nan_cells(self, exported):
        directory, _ = exported
        with (directory / "table3.csv").open() as fh:
            rows = list(csv.reader(fh))
        assert len(rows) == 61  # header + 60 cells
        assert any(row[2] == "NaN" for row in rows[1:])

    def test_per_trace_matrix(self, exported):
        directory, _ = exported
        with (directory / "per_trace.csv").open() as fh:
            rows = list(csv.reader(fh))
        assert len(rows) == 61
        header = rows[0]
        assert header[:2] == ["trace_id", "valid"]
        assert "LAR" in header and "P-LAR" in header

    def test_fig4_csv_labels(self, exported):
        directory, _ = exported
        with (directory / "fig4.csv").open() as fh:
            rows = list(csv.reader(fh))
        labels = {row[1] for row in rows[1:]}
        assert labels.issubset({"1", "2", "3"})

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", str(tmp_path / "out"), "--folds", "2"]) == 0
        out = capsys.readouterr().out
        assert "wrote 13 artifacts" in out
