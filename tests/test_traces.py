"""Unit tests for trace records, the profiler, generation, and I/O."""

import numpy as np
import pytest

from repro.db.prediction_db import PredictionDatabase, SeriesKey
from repro.db.rrd import ArchiveSpec, RoundRobinDatabase
from repro.exceptions import ConfigurationError, MissingSeriesError
from repro.traces.catalog import Trace, TraceSet
from repro.traces.generate import DEFAULT_SEED, load_paper_traces
from repro.traces.io import load_trace, load_trace_set, save_trace, save_trace_set
from repro.traces.profiler import Profiler
from repro.traces.synthetic import (
    ar1_series,
    bursty_series,
    random_walk_series,
    regime_series,
    sine_series,
    white_noise_series,
)


def _trace(values=None, vm="VM9", metric="CPU_usedsec"):
    v = np.asarray(values if values is not None else np.arange(10.0))
    return Trace(
        vm_id=vm, metric=metric, interval_seconds=300,
        values=v, timestamps=np.arange(v.size, dtype=np.int64) * 300,
    )


class TestTrace:
    def test_identity(self):
        t = _trace()
        assert t.trace_id == "VM9/CPU_usedsec"
        assert t.device_id == "cpu0"
        assert len(t) == 10

    def test_constant_detection(self):
        assert _trace(np.full(5, 2.0)).is_constant
        assert not _trace().is_constant

    def test_split(self):
        train, test = _trace().split_at(6)
        assert train.size == 6 and test.size == 4

    def test_split_bounds(self):
        with pytest.raises(ConfigurationError):
            _trace().split_at(0)
        with pytest.raises(ConfigurationError):
            _trace().split_at(10)

    def test_timestamp_shape_checked(self):
        with pytest.raises(ConfigurationError):
            Trace(
                vm_id="V", metric="m", interval_seconds=300,
                values=np.arange(5.0), timestamps=np.arange(4),
            )


class TestTraceSet:
    def _set(self):
        ts = TraceSet()
        ts.add(_trace(vm="VM1", metric="CPU_usedsec"))
        ts.add(_trace(vm="VM1", metric="CPU_ready"))
        ts.add(_trace(np.full(10, 1.0), vm="VM2", metric="CPU_usedsec"))
        return ts

    def test_add_and_get(self):
        ts = self._set()
        assert len(ts) == 3
        assert ts.get("VM1", "CPU_ready").metric == "CPU_ready"

    def test_duplicate_rejected(self):
        ts = self._set()
        with pytest.raises(ConfigurationError):
            ts.add(_trace(vm="VM1", metric="CPU_usedsec"))

    def test_missing_raises(self):
        with pytest.raises(MissingSeriesError):
            self._set().get("VM7", "CPU_usedsec")

    def test_valid_constant_partition(self):
        ts = self._set()
        assert len(ts.valid()) == 2
        assert len(ts.constant()) == 1
        assert ts.constant()[0].vm_id == "VM2"

    def test_for_vm(self):
        ts = self._set()
        assert len(ts.for_vm("VM1")) == 2
        with pytest.raises(MissingSeriesError):
            ts.for_vm("VM3")

    def test_iteration_sorted(self):
        ids = [t.trace_id for t in self._set()]
        assert ids == sorted(ids)


class TestProfiler:
    def _rrd(self):
        rrd = RoundRobinDatabase(
            step=60,
            sources=["CPU_usedsec"],
            archives=[ArchiveSpec("average", 1, 100), ArchiveSpec("average", 5, 20)],
        )
        for i in range(50):
            rrd.update(i * 60, {"CPU_usedsec": float(i)})
        return rrd

    def test_extract_consolidated(self):
        trace = Profiler().extract(self._rrd(), "VM1", "CPU_usedsec")
        assert trace.interval_seconds == 300
        assert len(trace) == 10

    def test_extract_raw_archive(self):
        trace = Profiler().extract(self._rrd(), "VM1", "CPU_usedsec", archive=0)
        assert trace.interval_seconds == 60
        assert len(trace) == 50

    def test_mirrors_into_prediction_db(self):
        db = PredictionDatabase()
        Profiler(db).extract(self._rrd(), "VM1", "CPU_usedsec")
        key = SeriesKey("VM1", "cpu0", "CPU_usedsec")
        t, v = db.fetch_measurements(key)
        assert v.size == 10

    def test_too_few_points(self):
        rrd = RoundRobinDatabase(step=60, sources=["CPU_usedsec"])
        rrd.update(0, {"CPU_usedsec": 1.0})
        with pytest.raises(ConfigurationError):
            Profiler().extract(rrd, "VM1", "CPU_usedsec", archive=0)

    def test_bad_db_type(self):
        with pytest.raises(ConfigurationError):
            Profiler("not a db")


class TestGeneration:
    def test_paper_set_shape(self, paper_traces):
        assert len(paper_traces) == 60
        assert paper_traces.vm_ids() == ["VM1", "VM2", "VM3", "VM4", "VM5"]
        assert len(paper_traces.metrics()) == 12

    def test_valid_count_matches_paper(self, paper_traces):
        assert len(paper_traces.valid()) == 52
        assert len(paper_traces.constant()) == 8

    def test_trace_lengths(self, paper_traces):
        assert len(paper_traces.get("VM1", "CPU_usedsec")) == 336
        assert len(paper_traces.get("VM2", "CPU_usedsec")) == 288

    def test_intervals(self, paper_traces):
        assert paper_traces.get("VM1", "CPU_usedsec").interval_seconds == 1800
        assert paper_traces.get("VM3", "VD2_write").interval_seconds == 300

    def test_memoized(self):
        assert load_paper_traces(DEFAULT_SEED) is load_paper_traces(DEFAULT_SEED)

    def test_different_seed_differs(self, paper_traces):
        other = load_paper_traces(DEFAULT_SEED + 1)
        a = paper_traces.get("VM2", "CPU_usedsec").values
        b = other.get("VM2", "CPU_usedsec").values
        assert not np.array_equal(a, b)


class TestSynthetic:
    def test_ar1_autocorrelation(self):
        from repro.util.stats import autocorrelation

        x = ar1_series(30000, phi=0.7, seed=0)
        assert autocorrelation(x, 1)[1] == pytest.approx(0.7, abs=0.05)

    def test_white_noise_moments(self):
        x = white_noise_series(20000, mean=3.0, std=2.0, seed=1)
        assert x.mean() == pytest.approx(3.0, abs=0.1)
        assert x.std() == pytest.approx(2.0, abs=0.1)

    def test_sine_periodicity(self):
        x = sine_series(200, period=40, noise_std=0.0)
        np.testing.assert_allclose(x[:40], x[40:80], atol=1e-9)

    def test_random_walk_start(self):
        x = random_walk_series(10, start=5.0, step_std=0.0, seed=2)
        np.testing.assert_allclose(x, 5.0)

    def test_bursty_has_heavy_tail(self):
        x = bursty_series(5000, burst_prob=0.05, burst_scale=50.0, seed=3)
        assert x.max() > 10 * np.median(x)

    def test_regime_alternation(self):
        x = regime_series(256, block=64, seed=4)
        assert x.shape == (256,)

    def test_conflict_series_two_levels(self):
        from repro.traces.synthetic import conflict_series

        x = conflict_series(2000, block=44, hi_mean=45.0, lo_mean=18.0, seed=5)
        assert x.shape == (2000,)
        # Both phases occupy substantial fractions at distinct levels.
        hi = x > 31.5
        assert 0.25 < hi.mean() < 0.75
        assert x[hi].mean() > x[~hi].mean() + 15.0

    def test_conflict_series_lar_beats_statics(self):
        """The documented property: on this class the LARPredictor beats
        every static predictor (most seeds; this one is pinned)."""
        from repro.core import LARConfig, LARPredictor
        from repro.core.runner import StrategyRunner, default_strategies
        from repro.traces.synthetic import conflict_series

        x = conflict_series(800, block=44, seed=7)
        runner = StrategyRunner(LARConfig(window=5)).fit(x[:400])
        ev = runner.evaluate_all(x[400:], default_strategies(runner.pool),
                                 trace_id="conflict")
        lar = ev["LAR"].mse
        for name in ("STATIC[LAST]", "STATIC[AR]", "STATIC[SW_AVG]"):
            assert lar < ev[name].mse

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ar1_series(0)
        with pytest.raises(ConfigurationError):
            ar1_series(10, phi=1.5)
        with pytest.raises(ConfigurationError):
            sine_series(10, period=1)
        with pytest.raises(ConfigurationError):
            bursty_series(10, burst_prob=2.0)
        with pytest.raises(ConfigurationError):
            regime_series(10, block=1)


class TestIO:
    def test_trace_roundtrip(self, tmp_path):
        t = _trace(np.array([1.5, 2.25, -3.125, 4.0625]))
        save_trace(t, tmp_path / "t.csv")
        back = load_trace(tmp_path / "t.csv")
        assert back.trace_id == t.trace_id
        assert back.interval_seconds == t.interval_seconds
        np.testing.assert_array_equal(back.values, t.values)
        np.testing.assert_array_equal(back.timestamps, t.timestamps)

    def test_trace_set_roundtrip(self, tmp_path):
        ts = TraceSet()
        ts.add(_trace(vm="VM1"))
        ts.add(_trace(np.full(6, 2.0), vm="VM2"))
        save_trace_set(ts, tmp_path / "traces")
        back = load_trace_set(tmp_path / "traces")
        assert len(back) == 2
        assert back.get("VM2", "CPU_usedsec").is_constant

    def test_missing_manifest(self, tmp_path):
        from repro.exceptions import DataError

        with pytest.raises(DataError):
            load_trace_set(tmp_path)

    def test_missing_metadata(self, tmp_path):
        from repro.exceptions import DataError

        p = tmp_path / "bad.csv"
        p.write_text("timestamp,value\n0,1.0\n300,2.0\n")
        with pytest.raises(DataError):
            load_trace(p)
