"""Unit tests for the StrategyRunner."""

import numpy as np
import pytest

from repro.core.config import LARConfig
from repro.core.runner import StrategyRunner, build_pipeline, build_pool, default_strategies
from repro.exceptions import ConfigurationError, DataError
from repro.selection.learned import LearnedSelection
from repro.selection.static import StaticSelection


class TestBuilders:
    def test_build_pool_paper(self):
        pool = build_pool(LARConfig(window=6))
        assert pool.names == ("LAST", "AR", "SW_AVG")
        assert pool.by_name("AR").order == 6

    def test_build_pool_extended(self):
        pool = build_pool(LARConfig(window=6, extended_pool=True))
        assert len(pool) == 10

    def test_build_pipeline_window(self):
        pipe = build_pipeline(LARConfig(window=7))
        assert pipe.window == 7

    def test_default_strategies_cover_paper_set(self):
        pool = build_pool(LARConfig())
        names = [s.name for s in default_strategies(pool)]
        assert names[:4] == ["LAR", "P-LAR", "Cum.MSE", "W-Cum.MSE[2]"]
        assert "STATIC[LAST]" in names and "STATIC[AR]" in names


class TestFit:
    def test_too_short_training(self):
        r = StrategyRunner(LARConfig(window=5))
        with pytest.raises(DataError):
            r.fit(np.arange(6.0))

    def test_fit_marks_ready(self, smooth_series):
        r = StrategyRunner(LARConfig(window=5))
        assert not r.is_fitted
        r.fit(smooth_series[:100])
        assert r.is_fitted
        assert len(r.train_data) == 95

    def test_train_data_before_fit_raises(self):
        with pytest.raises(ConfigurationError):
            StrategyRunner().train_data

    def test_refit_resets_pool(self, smooth_series):
        r = StrategyRunner(LARConfig(window=5))
        r.fit(smooth_series[:100])
        first_coeffs = r.pool.by_name("AR").coefficients_.copy()
        r.fit(smooth_series[100:300])
        assert not np.array_equal(first_coeffs, r.pool.by_name("AR").coefficients_)


class TestEvaluate:
    def test_result_alignment(self, smooth_series):
        r = StrategyRunner(LARConfig(window=5)).fit(smooth_series[:200])
        result = r.evaluate(smooth_series[200:], LearnedSelection())
        assert result.n_steps == len(smooth_series[200:]) - 5
        assert result.strategy == "LAR"

    def test_static_result_matches_manual(self, smooth_series):
        r = StrategyRunner(LARConfig(window=5)).fit(smooth_series[:200])
        prepared = r.prepare_test(smooth_series[200:])
        result = r.evaluate(None, StaticSelection("SW_AVG"), prepared=prepared)
        manual = prepared.frames.mean(axis=1)
        np.testing.assert_allclose(result.predictions, manual)

    def test_evaluate_all_shares_split(self, smooth_series):
        r = StrategyRunner(LARConfig(window=5)).fit(smooth_series[:200])
        ev = r.evaluate_all(
            smooth_series[200:], default_strategies(r.pool), trace_id="t"
        )
        steps = {res.n_steps for res in ev.results.values()}
        assert len(steps) == 1
        targets = [res.targets for res in ev.results.values()]
        for t in targets[1:]:
            np.testing.assert_array_equal(targets[0], t)

    def test_bad_strategy_label_count(self, smooth_series):
        class Broken(StaticSelection):
            def select(self, pool, test):
                return np.ones(3, dtype=np.int64)

        r = StrategyRunner(LARConfig(window=5)).fit(smooth_series[:200])
        with pytest.raises(ConfigurationError, match="labels"):
            r.evaluate(smooth_series[200:], Broken("LAST"))

    def test_custom_pool_used(self, smooth_series):
        from repro.predictors.last import LastValuePredictor
        from repro.predictors.pool import PredictorPool
        from repro.predictors.sw_avg import SlidingWindowAveragePredictor

        pool = PredictorPool([LastValuePredictor(), SlidingWindowAveragePredictor()])
        r = StrategyRunner(LARConfig(window=5), pool=pool)
        r.fit(smooth_series[:200])
        result = r.evaluate(smooth_series[200:], StaticSelection("SW_AVG"))
        assert (result.labels == 2).all()
