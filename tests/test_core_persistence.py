"""Unit tests for LARPredictor persistence."""

import numpy as np
import pytest

from repro.core import LARConfig, LARPredictor, load_larpredictor, save_larpredictor
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.learn.centroid import NearestCentroidClassifier
from repro.learn.logistic import SoftmaxClassifier
from repro.learn.naive_bayes import GaussianNBClassifier
from repro.learn.tree import DecisionTreeClassifier
from repro.traces.synthetic import conflict_series


@pytest.fixture(scope="module")
def series():
    return conflict_series(600, seed=9)


@pytest.fixture
def trained(series):
    return LARPredictor(LARConfig(window=5)).train(series[:300])


class TestRoundtrip:
    def test_predictions_identical(self, trained, series, tmp_path):
        path = tmp_path / "model.npz"
        save_larpredictor(trained, path)
        back = load_larpredictor(path)
        np.testing.assert_allclose(
            trained.predict_series(series[300:]), back.predict_series(series[300:])
        )

    def test_forecast_identical(self, trained, series, tmp_path):
        path = tmp_path / "model.npz"
        save_larpredictor(trained, path)
        back = load_larpredictor(path)
        a, b = trained.forecast(series), back.forecast(series)
        assert a.value == b.value
        assert a.predictor_label == b.predictor_label

    def test_evaluate_identical(self, trained, series, tmp_path):
        path = tmp_path / "model.npz"
        save_larpredictor(trained, path)
        back = load_larpredictor(path)
        a = trained.evaluate(series[300:])
        b = back.evaluate(series[300:])
        assert a.mse == pytest.approx(b.mse)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_config_preserved(self, series, tmp_path):
        cfg = LARConfig(window=8, n_components=3, k=5)
        lar = LARPredictor(cfg).train(series[:300])
        save_larpredictor(lar, tmp_path / "m.npz")
        back = load_larpredictor(tmp_path / "m.npz")
        assert back.config == cfg

    def test_extended_pool_roundtrip(self, series, tmp_path):
        lar = LARPredictor(LARConfig(window=6, extended_pool=True))
        lar.train(series[:300])
        save_larpredictor(lar, tmp_path / "ext.npz")
        back = load_larpredictor(tmp_path / "ext.npz")
        np.testing.assert_allclose(
            lar.predict_series(series[300:]), back.predict_series(series[300:])
        )

    @pytest.mark.parametrize(
        "classifier",
        [GaussianNBClassifier(), NearestCentroidClassifier(),
         DecisionTreeClassifier(max_depth=4), SoftmaxClassifier()],
        ids=["nb", "centroid", "tree", "softmax"],
    )
    def test_alternative_classifiers(self, classifier, series, tmp_path):
        lar = LARPredictor(LARConfig(window=5), classifier=classifier)
        lar.train(series[:300])
        save_larpredictor(lar, tmp_path / "c.npz")
        back = load_larpredictor(tmp_path / "c.npz")
        np.testing.assert_array_equal(
            lar.evaluate(series[300:]).labels, back.evaluate(series[300:]).labels
        )

    def test_name_without_npz_suffix(self, trained, tmp_path):
        # np.savez appends .npz; loading by the original name must work.
        save_larpredictor(trained, tmp_path / "model")
        back = load_larpredictor(tmp_path / "model")
        assert back.is_trained


class TestErrors:
    def test_untrained_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_larpredictor(LARPredictor(), tmp_path / "x.npz")

    def test_custom_pool_rejected(self, series, tmp_path):
        from repro.predictors import (
            ARPredictor,
            LastValuePredictor,
            PredictorPool,
            SlidingWindowAveragePredictor,
            WindowMedianPredictor,
        )

        pool = PredictorPool(
            [LastValuePredictor(), ARPredictor(order=5),
             SlidingWindowAveragePredictor(), WindowMedianPredictor()]
        )
        lar = LARPredictor(LARConfig(window=5), pool=pool).train(series[:300])
        with pytest.raises(ConfigurationError, match="pool"):
            save_larpredictor(lar, tmp_path / "x.npz")

    def test_garbage_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(DataError):
            load_larpredictor(path)

    def test_version_mismatch_rejected(self, trained, tmp_path):
        import json

        path = tmp_path / "old.npz"
        save_larpredictor(trained, path)
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        meta = json.loads(str(arrays["__meta__"]))
        meta["format_version"] = 999
        arrays["__meta__"] = np.array(json.dumps(meta))
        np.savez(path, **arrays)
        with pytest.raises(DataError, match="format"):
            load_larpredictor(path)


class TestOnlineRoundtrip:
    def streamed(self, series, **kwargs):
        from repro.core.online import OnlineLARPredictor

        online = OnlineLARPredictor(LARConfig(window=5), **kwargs)
        online.train(series[:300])
        for v in series[300:380]:
            online.observe(v)
        return online

    def test_forecasts_identical(self, series, tmp_path):
        from repro.core import load_online_larpredictor, save_online_larpredictor

        online = self.streamed(series)
        path = tmp_path / "online.npz"
        save_online_larpredictor(online, path)
        back = load_online_larpredictor(path)
        fa, fb = online.forecast(), back.forecast()
        assert fa.value == fb.value
        assert fa.predictor_label == fb.predictor_label

    def test_restored_stream_keeps_learning_identically(self, series, tmp_path):
        from repro.core import load_online_larpredictor, save_online_larpredictor

        online = self.streamed(series, max_memory=200, history_limit=400)
        save_online_larpredictor(online, tmp_path / "online.npz")
        back = load_online_larpredictor(tmp_path / "online.npz")
        assert back.memory_size == online.memory_size
        assert back.history_length == online.history_length
        assert back.windows_learned_online == online.windows_learned_online
        for v in series[380:440]:
            assert online.observe(v) == back.observe(v)
        assert online.forecast().value == back.forecast().value

    def test_untrained_rejected(self, tmp_path):
        from repro.core import OnlineLARPredictor, save_online_larpredictor

        with pytest.raises(NotFittedError):
            save_online_larpredictor(OnlineLARPredictor(), tmp_path / "x.npz")

    def test_wrong_type_rejected(self, trained, tmp_path):
        from repro.core import save_online_larpredictor

        with pytest.raises(ConfigurationError):
            save_online_larpredictor(trained, tmp_path / "x.npz")

    def test_kind_guards_both_directions(self, trained, series, tmp_path):
        from repro.core import (
            load_larpredictor,
            load_online_larpredictor,
            save_larpredictor,
            save_online_larpredictor,
        )

        batch_path = tmp_path / "batch.npz"
        online_path = tmp_path / "online.npz"
        save_larpredictor(trained, batch_path)
        save_online_larpredictor(self.streamed(series), online_path)
        with pytest.raises(DataError):
            load_online_larpredictor(batch_path)
        with pytest.raises(DataError):
            load_larpredictor(online_path)
