"""Unit and property tests for LAST, SW_AVG, and the AR predictor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ConfigurationError, DataError, InsufficientDataError, NotFittedError
from repro.predictors.ar import ARPredictor, yule_walker
from repro.predictors.last import LastValuePredictor
from repro.predictors.sw_avg import SlidingWindowAveragePredictor
from repro.traces.synthetic import ar1_series

frames_strategy = arrays(
    np.float64,
    st.tuples(st.integers(1, 10), st.integers(1, 8)),
    elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
)


class TestLast:
    def test_predicts_last_value(self):
        p = LastValuePredictor()
        assert p.predict_next([1.0, 2.0, 7.0]) == 7.0

    def test_batch(self):
        p = LastValuePredictor()
        out = p.predict_batch([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(out, [2.0, 4.0])

    def test_no_fit_required(self):
        assert LastValuePredictor().is_fitted

    def test_result_does_not_alias_frames(self):
        frames = np.array([[1.0, 2.0]])
        out = LastValuePredictor().predict_batch(frames)
        out[0] = 99.0
        assert frames[0, 1] == 2.0

    @given(frames_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_equals_last_column(self, frames):
        out = LastValuePredictor().predict_batch(frames)
        np.testing.assert_array_equal(out, frames[:, -1])


class TestSWAvg:
    def test_full_window_mean(self):
        p = SlidingWindowAveragePredictor()
        assert p.predict_next([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_truncated_window(self):
        p = SlidingWindowAveragePredictor(window=2)
        assert p.predict_next([10.0, 1.0, 3.0]) == pytest.approx(2.0)

    def test_window_too_large_for_frame(self):
        p = SlidingWindowAveragePredictor(window=5)
        with pytest.raises(DataError):
            p.predict_next([1.0, 2.0])

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowAveragePredictor(window=0)

    @given(frames_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_mean_within_frame_range(self, frames):
        out = SlidingWindowAveragePredictor().predict_batch(frames)
        assert (out >= frames.min(axis=1) - 1e-9).all()
        assert (out <= frames.max(axis=1) + 1e-9).all()


class TestYuleWalker:
    def test_recovers_ar1_coefficient(self):
        x = ar1_series(50000, phi=0.7, seed=0)
        phi, noise = yule_walker(x, 1)
        assert phi[0] == pytest.approx(0.7, abs=0.02)
        # innovation variance of a unit-variance AR(1): 1 - phi^2
        assert noise == pytest.approx(1.0 - 0.7**2, abs=0.05)

    def test_recovers_ar2_coefficients(self):
        rng = np.random.default_rng(1)
        phi_true = np.array([0.5, 0.3])
        x = np.zeros(60000)
        e = rng.standard_normal(60000)
        for t in range(2, x.size):
            x[t] = phi_true[0] * x[t - 1] + phi_true[1] * x[t - 2] + e[t]
        phi, _ = yule_walker(x[1000:], 2)
        np.testing.assert_allclose(phi, phi_true, atol=0.03)

    def test_constant_series_degrades_to_zero(self):
        phi, noise = yule_walker(np.full(100, 3.0), 4)
        np.testing.assert_array_equal(phi, 0.0)
        assert noise == 0.0

    def test_too_short(self):
        with pytest.raises(InsufficientDataError):
            yule_walker([1.0, 2.0], 2)

    def test_white_noise_coefficients_near_zero(self):
        rng = np.random.default_rng(2)
        phi, _ = yule_walker(rng.standard_normal(50000), 3)
        assert np.abs(phi).max() < 0.05

    def test_noise_variance_non_negative(self):
        x = np.sin(np.arange(200) * 0.3)
        _, noise = yule_walker(x, 4)
        assert noise >= 0.0


class TestARPredictor:
    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            ARPredictor(order=2).predict_next([1.0, 2.0])

    def test_frame_shorter_than_order(self):
        p = ARPredictor(order=5).fit(ar1_series(100, seed=3))
        with pytest.raises(DataError):
            p.predict_next([1.0, 2.0, 3.0])

    def test_one_step_on_pure_ar1(self):
        """On a noiseless AR(1) tail the prediction is phi * last."""
        x = ar1_series(20000, phi=0.8, seed=4)
        p = ARPredictor(order=1).fit(x)
        pred = p.predict_next(np.array([2.0]))
        expected = p.mean_ + p.coefficients_[0] * (2.0 - p.mean_)
        assert pred == pytest.approx(expected)
        assert pred == pytest.approx(0.8 * 2.0, abs=0.15)

    def test_lag_alignment(self):
        """coefficients_[0] must multiply the most recent value."""
        x = ar1_series(20000, phi=0.9, seed=5)
        p = ARPredictor(order=3).fit(x)
        # Prediction from [0, 0, large] should be dominated by phi_1.
        pred = p.predict_next(np.array([0.0, 0.0, 5.0]))
        assert pred > 2.0  # phi_1 ~ 0.9; misalignment would give ~0

    def test_mean_adjustment(self):
        x = ar1_series(20000, phi=0.5, mean=100.0, seed=6)
        p = ARPredictor(order=1).fit(x)
        pred = p.predict_next(np.array([100.0]))
        assert pred == pytest.approx(100.0, abs=1.0)

    def test_beats_last_on_momentum_series(self):
        """AR exploits trend persistence that LAST cannot."""
        import scipy.signal

        rng = np.random.default_rng(7)
        v = scipy.signal.lfilter([1.0], [1.0, -0.9], rng.standard_normal(4000))
        x = np.asarray(scipy.signal.lfilter([1.0], [1.0, -0.95], v))
        train, test = x[:2000], x[2000:]
        ar = ARPredictor(order=5).fit(train)
        from repro.util.windows import frame_with_targets

        F, y = frame_with_targets(test, 5)
        ar_mse = float(np.mean((ar.predict_batch(F) - y) ** 2))
        last_mse = float(np.mean((F[:, -1] - y) ** 2))
        assert ar_mse < last_mse

    def test_reset_clears_state(self):
        p = ARPredictor(order=2).fit(ar1_series(100, seed=8))
        p.reset()
        assert not p.is_fitted
        assert p.coefficients_ is None
        with pytest.raises(NotFittedError):
            p.predict_next([1.0, 2.0])

    def test_batch_matches_single(self):
        p = ARPredictor(order=3).fit(ar1_series(500, seed=9))
        frames = np.random.default_rng(10).standard_normal((6, 3))
        batch = p.predict_batch(frames)
        singles = [p.predict_next(f) for f in frames]
        np.testing.assert_allclose(batch, singles)
