"""Unit tests for the job generator, host arbitration, and guest VMs."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.vmm.devices import ConstantModel, SmoothLoadModel
from repro.vmm.host import HostServer
from repro.vmm.jobs import (
    PAPER_VM1_JOB_MIX,
    Job,
    JobMix,
    demand_series,
    generate_jobs,
)
from repro.vmm.vm import METRIC_DEVICE, METRICS, GuestVM


class TestJobMix:
    def test_paper_mix_fractions(self):
        assert sum(PAPER_VM1_JOB_MIX.fractions) == pytest.approx(1.0)
        assert PAPER_VM1_JOB_MIX.fractions == (0.9355, 0.0387, 0.0258)

    def test_paper_mix_durations(self):
        (short, medium, long_) = PAPER_VM1_JOB_MIX.duration_ranges
        assert short == (1.0, 2.0)
        assert medium == (120.0, 600.0)
        assert long_ == (2700.0, 3000.0)

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            JobMix((0.5, 0.4), ((1, 2), (3, 4)), (0.5, 0.5))

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            JobMix((1.0,), ((1, 2), (3, 4)), (0.5,))


class TestGenerateJobs:
    def test_count_and_horizon(self):
        jobs = generate_jobs(310, 7 * 24 * 3600.0, seed=0)
        assert len(jobs) == 310
        assert all(0 <= j.arrival <= 7 * 24 * 3600.0 for j in jobs)

    def test_arrivals_sorted(self):
        jobs = generate_jobs(100, 1000.0, seed=1)
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_mix_respected_in_expectation(self):
        jobs = generate_jobs(5000, 1e6, seed=2)
        short = sum(1 for j in jobs if j.duration <= 2.0)
        assert short / 5000 == pytest.approx(0.9355, abs=0.02)

    def test_deterministic(self):
        a = generate_jobs(50, 1000.0, seed=3)
        b = generate_jobs(50, 1000.0, seed=3)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_jobs(0, 100.0)
        with pytest.raises(ConfigurationError):
            generate_jobs(10, -1.0)


class TestDemandSeries:
    def test_single_job_overlap(self):
        job = Job(arrival=30.0, duration=60.0, cpu_share=1.0)
        d = demand_series([job], 3)
        # 30s in bucket 0, 60s spanning buckets 0-1: [30, 30, 0].
        np.testing.assert_allclose(d, [30.0, 30.0, 0.0])

    def test_share_scales_demand(self):
        job = Job(arrival=0.0, duration=60.0, cpu_share=0.5)
        d = demand_series([job], 1)
        assert d[0] == pytest.approx(30.0)

    def test_job_beyond_horizon_ignored(self):
        job = Job(arrival=1e6, duration=10.0, cpu_share=1.0)
        np.testing.assert_array_equal(demand_series([job], 5), 0.0)

    def test_total_cpu_seconds_conserved(self):
        jobs = generate_jobs(100, 50_000.0, seed=4)
        n_minutes = 2000  # beyond every completion
        d = demand_series(jobs, n_minutes)
        expected = sum(j.duration * j.cpu_share for j in jobs)
        assert d.sum() == pytest.approx(expected, rel=1e-9)

    def test_unsupported_attribute(self):
        with pytest.raises(ConfigurationError):
            demand_series([], 10, attribute="disk")


def _tiny_vm(cpu_model=None):
    models = {m: ConstantModel(0.0) for m in METRICS}
    models["CPU_usedsec"] = cpu_model or ConstantModel(30.0)
    models["CPU_ready"] = ConstantModel(1.0)
    return GuestVM(vm_id="T", description="test", models=models)


class TestGuestVM:
    def test_requires_all_metrics(self):
        with pytest.raises(ConfigurationError, match="missing"):
            GuestVM(vm_id="X", description="d", models={})

    def test_rejects_unknown_metric(self):
        models = {m: ConstantModel() for m in METRICS}
        models["Bogus"] = ConstantModel()
        with pytest.raises(ConfigurationError, match="unknown"):
            GuestVM(vm_id="X", description="d", models=models)

    def test_rejects_non_model(self):
        models = {m: ConstantModel() for m in METRICS}
        models["CPU_usedsec"] = 42
        with pytest.raises(ConfigurationError):
            GuestVM(vm_id="X", description="d", models=models)

    def test_generate_raw_keys(self):
        vm = _tiny_vm()
        raw = vm.generate_raw(10, np.random.default_rng(0))
        assert set(raw) == set(METRICS)
        assert all(v.shape == (10,) for v in raw.values())

    def test_metric_device_schema_complete(self):
        assert set(METRIC_DEVICE) == set(METRICS)


class TestHostArbitration:
    def test_no_contention_passthrough(self):
        host = HostServer(cpu_capacity=60.0)
        demand = np.array([10.0, 20.0])
        used, ready = host.arbitrate(demand, np.zeros(2))
        np.testing.assert_array_equal(used, demand)
        np.testing.assert_array_equal(ready, 0.0)

    def test_proportional_scaling_under_contention(self):
        host = HostServer(cpu_capacity=60.0)
        used, ready = host.arbitrate(np.array([60.0]), np.array([60.0]))
        assert used[0] == pytest.approx(30.0)
        # unserved 30 s of the minute -> 50% ready.
        assert ready[0] == pytest.approx(50.0)

    def test_capacity_is_never_exceeded(self):
        host = HostServer(cpu_capacity=60.0)
        rng = np.random.default_rng(5)
        demand = rng.uniform(0, 100, 500)
        bg = rng.uniform(0, 100, 500)
        used, _ = host.arbitrate(demand, bg)
        bg_used = bg * np.where(demand + bg > 60.0, 60.0 / (demand + bg), 1.0)
        assert (used + bg_used <= 60.0 + 1e-9).all()

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            HostServer().arbitrate(np.zeros(3), np.zeros(2))

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            HostServer(cpu_capacity=0.0)

    def test_simulate_vm_applies_contention(self):
        # Saturating background: the guest must lose CPU and gain ready.
        host = HostServer(
            cpu_capacity=60.0,
            background=ConstantModel(55.0),
        )
        vm = _tiny_vm(cpu_model=ConstantModel(30.0))
        out = host.simulate_vm(vm, 50, seed=0)
        assert out["CPU_usedsec"].max() < 30.0
        assert out["CPU_ready"].min() > 1.0  # baseline 1.0 plus contention

    def test_simulate_vm_deterministic(self):
        host = HostServer()
        vm = _tiny_vm(SmoothLoadModel(20.0, 5.0, phi=0.9))
        a = host.simulate_vm(vm, 30, seed=7)
        b = host.simulate_vm(vm, 30, seed=7)
        np.testing.assert_array_equal(a["CPU_usedsec"], b["CPU_usedsec"])
