"""Shared fixtures for the repro test suite.

Expensive artifacts (the simulated paper trace set, a trained
LARPredictor) are session-scoped so the suite builds them once. All
stochastic fixtures are seeded — a failing test reproduces exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LARConfig, LARPredictor
from repro.traces.generate import DEFAULT_SEED, load_paper_traces
from repro.traces.synthetic import ar1_series, regime_series, white_noise_series


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def smooth_series() -> np.ndarray:
    """A strongly autocorrelated series (AR/LAST friendly)."""
    return ar1_series(400, phi=0.9, mean=5.0, std=1.0, seed=1)


@pytest.fixture
def white_series() -> np.ndarray:
    """An i.i.d. Gaussian series (SW_AVG friendly)."""
    return white_noise_series(400, mean=5.0, std=1.0, seed=2)


@pytest.fixture
def switching_series() -> np.ndarray:
    """A regime-switching series (adaptive-selection friendly)."""
    return regime_series(512, block=64, seed=3)


@pytest.fixture(scope="session")
def paper_traces():
    """The memoized 60-trace paper evaluation set (built once)."""
    return load_paper_traces(DEFAULT_SEED)


@pytest.fixture(scope="session")
def trained_lar():
    """A LARPredictor trained on a smooth synthetic series."""
    series = ar1_series(400, phi=0.9, mean=5.0, std=1.0, seed=41)
    return LARPredictor(LARConfig(window=5)).train(series), series
