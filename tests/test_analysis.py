"""Unit tests for the applicability and cost analysis (paper §8)."""

import numpy as np
import pytest

from repro.analysis.applicability import ApplicabilityReport, assess_applicability
from repro.analysis.cost import CostModel, cost_performance_frontier
from repro.core.config import LARConfig
from repro.core.results import StrategyResult
from repro.core.runner import StrategyRunner, build_pool
from repro.exceptions import ConfigurationError, DataError
from repro.traces.synthetic import ar1_series, conflict_series, white_noise_series


class TestApplicability:
    def test_conflict_series_is_recommended(self):
        """The class LAR is built for must score as applicable."""
        report = assess_applicability(conflict_series(1000, seed=7))
        assert report.recommended
        assert report.oracle_headroom > 0.05
        assert report.label_stability > 0.0

    def test_white_noise_not_recommended(self):
        """On i.i.d. noise there is no regime structure to learn."""
        report = assess_applicability(white_noise_series(1000, seed=1))
        assert not report.recommended
        # Labels on white noise carry no *positive* persistence (they
        # are in fact slightly anti-persistent: consecutive wins by the
        # same member are discouraged by the alternating error signs).
        assert report.label_stability < 0.02

    def test_constant_series_rejected(self):
        with pytest.raises(DataError):
            assess_applicability(np.full(200, 3.0))

    def test_too_short_rejected(self):
        with pytest.raises(DataError):
            assess_applicability(np.arange(10.0))

    def test_entropy_bounds(self):
        report = assess_applicability(ar1_series(600, phi=0.9, seed=2))
        # Three classes -> at most log2(3) bits.
        assert 0.0 <= report.label_entropy <= np.log2(3) + 1e-9

    def test_best_static_named(self):
        report = assess_applicability(ar1_series(600, phi=0.9, seed=3))
        assert report.best_static_name in ("LAST", "AR", "SW_AVG")

    def test_render(self):
        report = assess_applicability(conflict_series(800, seed=4))
        text = report.render()
        assert "headroom" in text and "->" in text

    def test_thresholds_configurable(self):
        series = conflict_series(1000, seed=7)
        strict = assess_applicability(series, headroom_threshold=0.99)
        assert not strict.recommended


class TestCostModel:
    def _result(self, strategy, labels, parallel=False):
        n = len(labels)
        return StrategyResult(
            strategy=strategy,
            labels=np.asarray(labels, dtype=np.int64),
            predictions=np.zeros(n),
            targets=np.zeros(n) + 0.1,
            best_labels=np.ones(n, dtype=np.int64),
            runs_pool_in_parallel=parallel,
        )

    def test_parallel_pays_whole_pool(self):
        pool = build_pool(LARConfig())
        model = CostModel()
        result = self._result("Cum.MSE", [1, 1], parallel=True)
        per_step = sum(model.member_cost(n) for n in pool.names)
        assert model.strategy_cost(result, pool) == pytest.approx(2 * per_step)

    def test_static_pays_selected_member(self):
        pool = build_pool(LARConfig())
        model = CostModel()
        result = self._result("STATIC[LAST]", [1, 1, 1])
        assert model.strategy_cost(result, pool) == pytest.approx(3 * 1.0)

    def test_lar_pays_classification(self):
        pool = build_pool(LARConfig())
        model = CostModel(classification_cost=4.0)
        result = self._result("LAR", [1, 2])
        expected = 1.0 + 6.0 + 2 * 4.0
        assert model.strategy_cost(result, pool) == pytest.approx(expected)

    def test_unknown_member_default_cost(self):
        model = CostModel()
        assert model.member_cost("HOLT") == model.default_member_cost

    def test_invalid_costs(self):
        with pytest.raises(ConfigurationError):
            CostModel(member_costs={"LAST": 0.0})
        with pytest.raises(ConfigurationError):
            CostModel(classification_cost=-1.0)


class TestFrontier:
    @pytest.fixture(scope="class")
    def frontier(self):
        return cost_performance_frontier(conflict_series(800, seed=7))

    def test_sorted_by_cost(self, frontier):
        costs = [r.cost for r in frontier]
        assert costs == sorted(costs)

    def test_lar_cheaper_than_parallel(self, frontier):
        by_name = {r.strategy: r for r in frontier}
        assert by_name["LAR"].cost < by_name["Cum.MSE"].cost
        assert by_name["LAR"].cost < by_name["P-LAR"].cost

    def test_pareto_set_nonempty_and_consistent(self, frontier):
        efficient = [r for r in frontier if r.pareto_efficient]
        assert efficient
        # No efficient strategy may be dominated by another report.
        for r in efficient:
            for other in frontier:
                if other.strategy == r.strategy:
                    continue
                dominated = (
                    other.cost <= r.cost and other.mse <= r.mse
                ) and (other.cost < r.cost or other.mse < r.mse)
                assert not dominated

    def test_cheapest_strategy_is_efficient(self, frontier):
        # The lowest-cost point is always on the frontier unless an
        # equal-cost strategy strictly beats it.
        cheapest = frontier[0]
        assert cheapest.cost <= min(r.cost for r in frontier)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            cost_performance_frontier(np.arange(100.0), train_fraction=0.0)
