"""Unit and property tests for the from-scratch PCA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.learn.pca import PCA


def _blob(n=200, d=5, seed=0):
    rng = np.random.default_rng(seed)
    # Anisotropic Gaussian with known principal axes.
    scales = np.array([5.0, 2.0, 1.0, 0.5, 0.1])[:d]
    return rng.standard_normal((n, d)) * scales + 3.0


class TestConstruction:
    def test_exactly_one_policy(self):
        with pytest.raises(ConfigurationError):
            PCA(2, min_variance=0.9)
        with pytest.raises(ConfigurationError):
            PCA(None, min_variance=None)

    def test_n_components_validated(self):
        with pytest.raises(ConfigurationError):
            PCA(0)

    def test_min_variance_validated(self):
        with pytest.raises(ConfigurationError):
            PCA(None, min_variance=1.5)


class TestFit:
    def test_components_are_orthonormal(self):
        pca = PCA(3).fit(_blob())
        C = pca.components_
        np.testing.assert_allclose(C @ C.T, np.eye(3), atol=1e-10)

    def test_explained_variance_sorted_descending(self):
        pca = PCA(4).fit(_blob())
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-12)

    def test_first_axis_is_largest_scale_direction(self):
        pca = PCA(1).fit(_blob(n=5000))
        axis = np.abs(pca.components_[0])
        assert np.argmax(axis) == 0  # scale 5.0 direction

    def test_n_components_exceeding_features(self):
        with pytest.raises(ConfigurationError):
            PCA(6).fit(_blob(d=5))

    def test_needs_two_samples(self):
        with pytest.raises(DataError):
            PCA(1).fit(np.ones((1, 3)))

    def test_min_variance_selects_few_components(self):
        pca = PCA(None, min_variance=0.8).fit(_blob(n=5000))
        # scale^2 = 25,4,1,.25,.01 -> first component ~82.7% of variance.
        assert pca.n_components_ == 1

    def test_min_variance_one_keeps_all(self):
        pca = PCA(None, min_variance=1.0).fit(_blob())
        assert pca.n_components_ == 5

    def test_degenerate_identical_rows(self):
        X = np.ones((10, 3))
        pca = PCA(2).fit(X)
        Z = pca.transform(X)
        np.testing.assert_allclose(Z, 0.0, atol=1e-10)


class TestTransform:
    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            PCA(2).transform(np.ones((3, 4)))

    def test_single_sample_roundtrip_shape(self):
        pca = PCA(2).fit(_blob())
        z = pca.transform(np.ones(5))
        assert z.shape == (2,)
        back = pca.inverse_transform(z)
        assert back.shape == (5,)

    def test_feature_mismatch(self):
        pca = PCA(2).fit(_blob(d=5))
        with pytest.raises(DataError):
            pca.transform(np.ones((3, 4)))

    def test_projection_is_centered_dot(self):
        X = _blob()
        pca = PCA(2).fit(X)
        Z = pca.transform(X)
        expected = (X - pca.mean_) @ pca.components_.T
        np.testing.assert_allclose(Z, expected)

    def test_training_scores_are_uncorrelated(self):
        X = _blob(n=2000)
        Z = PCA(3).fit_transform(X)
        cov = np.cov(Z.T)
        off_diag = cov - np.diag(np.diag(cov))
        assert np.abs(off_diag).max() < 1e-8


class TestOptimality:
    def test_reconstruction_beats_random_projection(self):
        """PCA minimizes rank-n reconstruction MSE (eq. 7's least-squares
        claim) — any other orthonormal basis must do no better."""
        X = _blob(n=500, seed=1)
        pca = PCA(2).fit(X)
        pca_err = pca.reconstruction_error(X)
        rng = np.random.default_rng(2)
        for _ in range(5):
            Q, _ = np.linalg.qr(rng.standard_normal((5, 2)))
            mean = X.mean(axis=0)
            Z = (X - mean) @ Q
            R = Z @ Q.T + mean
            rand_err = float(np.mean((X - R) ** 2))
            assert pca_err <= rand_err + 1e-12

    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_property_more_components_never_worse(self, k):
        X = _blob(n=300, seed=3)
        err_k = PCA(k).fit(X).reconstruction_error(X)
        err_k1 = PCA(min(k + 1, 5)).fit(X).reconstruction_error(X)
        assert err_k1 <= err_k + 1e-12

    def test_explained_variance_ratio_sums_to_one_when_full(self):
        pca = PCA(5).fit(_blob())
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)
