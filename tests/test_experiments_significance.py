"""Unit tests for the bootstrap confidence intervals."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.common import run_full_evaluation
from repro.experiments.significance import BootstrapInterval, bootstrap_headline


@pytest.fixture(scope="module")
def confidence():
    evaluation = run_full_evaluation(n_folds=2)
    return bootstrap_headline(evaluation, n_bootstrap=500)


class TestBootstrapInterval:
    def test_contains(self):
        ci = BootstrapInterval(estimate=0.5, low=0.4, high=0.6, level=0.95)
        assert ci.contains(0.5)
        assert not ci.contains(0.7)

    def test_render(self):
        ci = BootstrapInterval(estimate=0.5, low=0.4, high=0.6, level=0.95)
        assert "[0.4000, 0.6000]" in ci.render()


class TestBootstrapHeadline:
    def test_intervals_bracket_estimates(self, confidence):
        for ci in (
            confidence.lar_forecast_accuracy,
            confidence.accuracy_margin,
            confidence.better_than_expert_fraction,
            confidence.beats_nws_fraction,
            confidence.oracle_mse_reduction_vs_nws,
        ):
            assert ci.low <= ci.estimate <= ci.high

    def test_estimates_match_headline(self, confidence):
        from repro.experiments.headline import headline_stats

        stats = headline_stats(evaluation=run_full_evaluation(n_folds=2))
        assert confidence.lar_forecast_accuracy.estimate == pytest.approx(
            stats.lar_forecast_accuracy
        )
        assert confidence.beats_nws_fraction.estimate == pytest.approx(
            stats.beats_nws_fraction
        )

    def test_directional_claims_hold_across_interval(self, confidence):
        """The reproduction's directional claims are significant, not
        sampling flukes: the intervals exclude the null values."""
        assert confidence.accuracy_margin.low > 0.0
        assert confidence.beats_nws_fraction.low > 0.5
        assert confidence.oracle_mse_reduction_vs_nws.low > 0.0

    def test_deterministic(self):
        evaluation = run_full_evaluation(n_folds=2)
        a = bootstrap_headline(evaluation, n_bootstrap=200)
        b = bootstrap_headline(evaluation, n_bootstrap=200)
        assert a.beats_nws_fraction == b.beats_nws_fraction

    def test_render(self, confidence):
        text = confidence.render()
        assert "Bootstrap confidence" in text
        assert "beats NWS" in text

    def test_validation(self):
        evaluation = run_full_evaluation(n_folds=2)
        with pytest.raises(ConfigurationError):
            bootstrap_headline(evaluation, level=1.5)
        with pytest.raises(ConfigurationError):
            bootstrap_headline(evaluation, n_bootstrap=3)
