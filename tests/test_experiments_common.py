"""Unit tests for the experiment machinery (splits, per-trace evaluation)."""

import math

import numpy as np
import pytest

from repro.core.config import LARConfig
from repro.exceptions import ConfigurationError, DataError
from repro.experiments.common import (
    CUM_MSE,
    LAR,
    PLAR,
    W_CUM_MSE,
    TraceExperimentResult,
    circular_split,
    config_for_trace,
    evaluate_trace,
    random_split_offsets,
    run_full_evaluation,
)
from repro.traces.catalog import Trace


def _trace(values, interval=300, vm="VM9", metric="CPU_usedsec"):
    v = np.asarray(values, dtype=np.float64)
    return Trace(
        vm_id=vm, metric=metric, interval_seconds=interval,
        values=v, timestamps=np.arange(v.size, dtype=np.int64) * interval,
    )


class TestConfigForTrace:
    def test_short_interval_window5(self):
        cfg = config_for_trace(_trace(np.arange(20.0), interval=300))
        assert cfg.window == 5

    def test_long_interval_window16(self):
        cfg = config_for_trace(_trace(np.arange(20.0), interval=1800))
        assert cfg.window == 16

    def test_overrides(self):
        cfg = config_for_trace(_trace(np.arange(20.0)), k=5)
        assert cfg.k == 5


class TestCircularSplit:
    def test_no_rotation(self):
        train, test = circular_split(np.arange(10.0), 0)
        np.testing.assert_array_equal(train, np.arange(5.0))
        np.testing.assert_array_equal(test, np.arange(5.0, 10.0))

    def test_rotation_preserves_multiset(self):
        x = np.arange(11.0)
        train, test = circular_split(x, 4)
        combined = np.sort(np.concatenate([train, test]))
        np.testing.assert_array_equal(combined, x)

    def test_rotation_content(self):
        train, _ = circular_split(np.arange(10.0), 3)
        np.testing.assert_array_equal(train, [3, 4, 5, 6, 7])

    def test_offset_wraps(self):
        a_train, _ = circular_split(np.arange(10.0), 13)
        b_train, _ = circular_split(np.arange(10.0), 3)
        np.testing.assert_array_equal(a_train, b_train)

    def test_train_fraction(self):
        train, test = circular_split(np.arange(10.0), 0, train_fraction=0.7)
        assert train.size == 7 and test.size == 3

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            circular_split(np.arange(10.0), 0, train_fraction=1.0)

    def test_too_short(self):
        with pytest.raises(DataError):
            circular_split(np.arange(3.0), 0)


class TestRandomOffsets:
    def test_deterministic(self):
        a = random_split_offsets(100, 10, seed=1)
        b = random_split_offsets(100, 10, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_range(self):
        offsets = random_split_offsets(50, 100, seed=2)
        assert offsets.min() >= 0 and offsets.max() < 50

    def test_fold_count_validated(self):
        with pytest.raises(ConfigurationError):
            random_split_offsets(50, 0)


class TestEvaluateTrace:
    def test_constant_trace_is_invalid(self):
        result = evaluate_trace(_trace(np.full(50, 2.0)), n_folds=2)
        assert not result.valid
        assert math.isnan(result.mse(LAR))
        assert math.isnan(result.accuracy(LAR))
        assert not result.lar_star()
        assert result.best_static() == ("NaN", result.best_static()[1])

    def test_strategies_present(self, paper_traces):
        trace = paper_traces.get("VM2", "CPU_usedsec")
        result = evaluate_trace(trace, n_folds=2)
        for strategy in (LAR, PLAR, CUM_MSE, W_CUM_MSE,
                         "STATIC[LAST]", "STATIC[AR]", "STATIC[SW_AVG]"):
            assert strategy in result.mean_mse
            assert result.mse(strategy) >= 0.0

    def test_oracle_below_all(self, paper_traces):
        trace = paper_traces.get("VM2", "CPU_usedsec")
        result = evaluate_trace(trace, n_folds=2)
        plar = result.mse(PLAR)
        for strategy, mse in result.mean_mse.items():
            assert plar <= mse + 1e-12

    def test_deterministic_across_calls(self, paper_traces):
        trace = paper_traces.get("VM3", "CPU_usedsec")
        a = evaluate_trace(trace, n_folds=2)
        b = evaluate_trace(trace, n_folds=2)
        assert a.mean_mse == b.mean_mse

    def test_best_static_name(self, paper_traces):
        trace = paper_traces.get("VM2", "NIC1_received")
        result = evaluate_trace(trace, n_folds=2)
        name, mse = result.best_static()
        assert name in ("LAST", "AR", "SW_AVG")
        assert mse == min(result.static_mses().values())


class TestFullEvaluation:
    def test_cached(self):
        a = run_full_evaluation(n_folds=2)
        b = run_full_evaluation(n_folds=2)
        assert a is b

    def test_covers_all_traces(self, paper_traces):
        ev = run_full_evaluation(n_folds=2)
        assert len(ev) == 60
        assert len(ev.valid_results()) == 52

    def test_for_vm(self):
        ev = run_full_evaluation(n_folds=2)
        vm3 = ev.for_vm("VM3")
        assert len(vm3) == 12
        assert sum(1 for r in vm3 if not r.valid) == 5

    def test_for_unknown_vm(self):
        ev = run_full_evaluation(n_folds=2)
        with pytest.raises(ConfigurationError):
            ev.for_vm("VM8")

    def test_parallel_matches_serial(self, paper_traces):
        """The process-parallel sweep must be bit-identical to serial."""
        from repro.parallel import ParallelConfig

        small = [paper_traces.get("VM3", "CPU_usedsec"),
                 paper_traces.get("VM3", "VD2_write")]

        class MiniSet:
            def __iter__(self):
                return iter(small)

        serial = run_full_evaluation(
            MiniSet(), n_folds=2, parallel=ParallelConfig(max_workers=1)
        )
        parallel = run_full_evaluation(
            MiniSet(), n_folds=2,
            parallel=ParallelConfig(max_workers=2, min_items_per_worker=1),
        )
        for tid in serial.results:
            assert serial[tid].mean_mse == parallel[tid].mean_mse
