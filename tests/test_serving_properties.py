"""Property-based invariants of the prediction fleet (hypothesis).

Three contracts a serving layer must keep under *any* usage pattern:

* arbitrary interleavings of ingest / forecast / add / remove never
  raise — a misbehaving caller cannot wedge the service;
* per-stream results are independent of how ingest calls are batched —
  serving N streams through one dict per tick equals serving each
  stream alone;
* a persisted-then-restored fleet reproduces the same next forecasts.
"""

import json
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LARConfig
from repro.parallel.pool_exec import ParallelConfig
from repro.serving import FleetConfig, PredictionFleet
from repro.traces.synthetic import ar1_series

SERIAL = ParallelConfig(max_workers=1)


def _config(**overrides):
    defaults = dict(
        lar=LARConfig(window=5),
        min_train=20,
        qa_threshold=2.0,
        audit_window=8,
        audit_interval=4,
        retrain_window=40,
        parallel=SERIAL,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


# One fleet "program": a seed for the value feed and a list of
# (op, operand) codes interpreted below.
programs = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=7)),
        min_size=1,
        max_size=60,
    ),
)


class TestInterleavingsNeverRaise:
    @given(programs)
    @settings(max_examples=25, deadline=None)
    def test_random_op_sequences(self, program):
        seed, ops = program
        # The whole value feed is a pure function of the seed: stream
        # sK ingesting at op index t always sees values[t, K], however
        # the interleaving plays out. (Drawing from the generator
        # inside the loop made each value depend on how many streams
        # happened to exist at the time — under shrinking, hypothesis
        # would explore *different feeds*, not just different op
        # orders, and a failing example would not replay.)
        values = np.random.default_rng(seed).normal(
            10.0, 3.0, size=(len(ops), 64)
        )
        fleet = PredictionFleet(_config(), streams=["s0"])
        next_id = 1
        for t, (op, operand) in enumerate(ops):
            if op == 0 and len(fleet):  # ingest one tick for everyone
                fleet.ingest(
                    {name: float(values[t, int(name[1:])])
                     for name in fleet.stream_names}
                )
            elif op == 1:  # read path; warming-up streams omitted
                out = fleet.forecast_all()
                assert all(np.isfinite(fc.value) for fc in out.values())
            elif op == 2:  # grow the fleet
                fleet.add_stream(f"s{next_id}")
                next_id += 1
            elif op == 3 and len(fleet) > 1:  # shrink the fleet
                fleet.remove_stream(
                    fleet.stream_names[operand % len(fleet)]
                )
        metrics = fleet.metrics()
        assert metrics.n_streams == len(fleet)
        assert metrics.n_trained <= metrics.n_streams


class TestBatchGroupingIndependence:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_batched_equals_singleton_ingest(self, seed):
        names = ["x", "y", "z"]
        feeds = {
            name: 8.0 + 2.0 * ar1_series(60, phi=0.85, seed=seed + i)
            for i, name in enumerate(names)
        }
        batched = PredictionFleet(_config(), streams=names)
        singleton = PredictionFleet(_config(), streams=names)
        for t in range(60):
            batched.ingest({name: feeds[name][t] for name in names})
            for name in names:  # same values, one stream per call
                singleton.ingest({name: feeds[name][t]})
        a = batched.forecast_all()
        b = singleton.forecast_all()
        assert a.keys() == b.keys()
        for name in a:
            assert a[name].value == b[name].value
            assert a[name].predictor_label == b[name].predictor_label
        ma = {m.name: m for m in batched.metrics().streams}
        mb = {m.name: m for m in singleton.metrics().streams}
        for name in names:
            assert ma[name].selections == mb[name].selections
            assert ma[name].rolling_mse == mb[name].rolling_mse
            assert ma[name].retrain_count == mb[name].retrain_count


class TestPersistenceRoundtrip:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=59))
    @settings(max_examples=10, deadline=None)
    def test_restored_fleet_same_next_forecasts(self, seed, ticks):
        names = ["u", "v"]
        feeds = {
            name: 12.0 + 3.0 * ar1_series(60, phi=0.9, seed=seed + i)
            for i, name in enumerate(names)
        }
        fleet = PredictionFleet(_config(), streams=names)
        for t in range(ticks):
            fleet.forecast_all()
            fleet.ingest({name: feeds[name][t] for name in names})
        with tempfile.TemporaryDirectory() as directory:
            fleet.save(directory)
            restored = PredictionFleet.load(directory)
        original = fleet.forecast_all()
        back = restored.forecast_all()
        assert original.keys() == back.keys()
        for name in original:
            assert original[name].value == back[name].value
            assert (
                original[name].predictor_label
                == back[name].predictor_label
            )


class TestQAStateLegacyBackfill:
    def test_counterless_qa_state_resumes_identically(self):
        """Manifests written before the QA kept lifetime counters carry
        only the audit list; loading must backfill ``audits_total`` /
        ``breaches_total`` from it and then behave indistinguishably —
        including through the storm's next retrains, which exercise the
        restored label-cache tails."""
        names = ["u", "v"]
        n = 200
        feeds = {}
        for i, name in enumerate(names):
            series = 12.0 + 2.0 * ar1_series(n, phi=0.9, seed=11 * i + 3)
            for storm in (60, 120):  # jump runs -> clustered retrains
                for j in range(3):
                    series[storm + 10 * j :] += 15.0
            feeds[name] = series
        fleet = PredictionFleet(_config(), streams=names)
        for t in range(150):
            fleet.forecast_all()
            fleet.ingest({name: feeds[name][t] for name in names})
        with tempfile.TemporaryDirectory() as directory:
            fleet.save(directory)
            manifest_path = Path(directory) / "fleet.json"
            manifest = json.loads(manifest_path.read_text())
            for entry in manifest["streams"]:
                del entry["qa"]["audits_total"]
                del entry["qa"]["breaches_total"]
            manifest_path.write_text(json.dumps(manifest))
            restored = PredictionFleet.load(directory)
        by_name = {m.name: m for m in fleet.metrics().streams}
        for m in restored.metrics().streams:
            assert m.audits == by_name[m.name].audits
            assert m.breaches == by_name[m.name].breaches
        assert sum(m.audits for m in by_name.values()) > 0
        # Serve both through the tail of the feed: audits, breaches,
        # and forecasts stay in lockstep (the backfilled counters did
        # not perturb the audit schedule or the cached-retrain cycle).
        for t in range(150, n):
            a = fleet.forecast_all()
            b = restored.forecast_all()
            assert a.keys() == b.keys()
            for name in a:
                assert a[name].value == b[name].value
            values = {name: feeds[name][t] for name in names}
            fleet.ingest(values)
            restored.ingest(values)
        ra = fleet.metrics()
        rb = restored.metrics()
        assert ra.total_retrains == rb.total_retrains
        assert [
            (m.name, m.audits, m.breaches) for m in ra.streams
        ] == [(m.name, m.audits, m.breaches) for m in rb.streams]
