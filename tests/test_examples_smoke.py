"""Smoke tests: every example script must run end-to-end.

Examples are user-facing documentation; a broken one is a broken
feature. Each is executed in-process via ``runpy`` with stdout captured,
and its key output lines are asserted so silent regressions (an example
that runs but prints garbage) are also caught.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    script = EXAMPLES / name
    assert script.exists(), f"missing example {script}"
    argv = sys.argv
    sys.argv = [str(script)]
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "strategy comparison" in out
    assert "next-value forecast" in out
    assert "P-LAR" in out


def test_vm_provisioning(capsys):
    out = _run("vm_provisioning.py", capsys)
    assert "provisioning over" in out
    assert "LAR-driven" in out
    assert "prediction-DB audit MSE" in out


def test_network_forecasting(capsys):
    out = _run("network_forecasting.py", capsys)
    assert "LAR vs NWS" in out
    assert "fewer predictors" in out


def test_online_retraining(capsys):
    out = _run("online_retraining.py", capsys)
    assert "retraining recovered the prediction quality." in out


def test_custom_pool(capsys):
    out = _run("custom_pool.py", capsys)
    assert "registered custom predictor" in out
    assert "streaming forecast" in out


def test_multi_resource(capsys):
    out = _run("multi_resource.py", capsys)
    assert "joint VAR" in out
    assert "LAR's selections" in out


def test_fleet_serving(capsys):
    out = _run("fleet_serving.py", capsys)
    assert "fleet served 6 streams" in out
    assert "QA-ordered retrains" in out
    assert "restored fleet reproduces the same next forecasts." in out
