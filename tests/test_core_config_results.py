"""Unit tests for LARConfig and the result containers."""

import math

import numpy as np
import pytest

from repro.core.config import LARConfig, PAPER_WINDOW_LONG, PAPER_WINDOW_SHORT
from repro.core.results import StrategyResult, TraceEvaluation
from repro.exceptions import ConfigurationError, DataError


class TestLARConfig:
    def test_paper_defaults(self):
        cfg = LARConfig()
        assert cfg.window == PAPER_WINDOW_SHORT == 5
        assert cfg.n_components == 2
        assert cfg.k == 3
        assert cfg.effective_ar_order == 5

    def test_paper_long(self):
        assert LARConfig.paper_long().window == PAPER_WINDOW_LONG == 16

    def test_explicit_ar_order(self):
        cfg = LARConfig(window=8, ar_order=4)
        assert cfg.effective_ar_order == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 1},
            {"window": 2.5},
            {"n_components": 0},
            {"window": 4, "n_components": 5},
            {"n_components": 2, "min_variance": 0.9},
            {"min_variance": 1.5},
            {"k": 2},
            {"k": 0},
            {"ar_order": 0},
            {"window": 4, "ar_order": 5},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigurationError):
            LARConfig(**{"n_components": None, **kwargs} if "min_variance" in kwargs else kwargs)

    def test_with_replaces_and_revalidates(self):
        cfg = LARConfig()
        assert cfg.with_(window=7).window == 7
        with pytest.raises(ConfigurationError):
            cfg.with_(k=4)

    def test_frozen(self):
        with pytest.raises(Exception):
            LARConfig().window = 9


def _result(labels, predictions, targets, best, strategy="LAR", parallel=False):
    return StrategyResult(
        strategy=strategy,
        labels=np.asarray(labels, dtype=np.int64),
        predictions=np.asarray(predictions, dtype=np.float64),
        targets=np.asarray(targets, dtype=np.float64),
        best_labels=np.asarray(best, dtype=np.int64),
        runs_pool_in_parallel=parallel,
    )


class TestStrategyResult:
    def test_metrics(self):
        r = _result([1, 2], [0.0, 0.0], [1.0, 2.0], [1, 1])
        assert r.mse == pytest.approx(2.5)
        assert r.forecast_accuracy == 0.5
        assert r.n_steps == 2

    def test_shape_validation(self):
        with pytest.raises(DataError):
            _result([1], [0.0, 0.0], [1.0, 2.0], [1, 1])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            _result([], [], [], [])

    def test_selection_counts(self):
        r = _result([1, 1, 3], [0.0] * 3, [0.0] * 3, [1, 1, 1])
        np.testing.assert_array_equal(r.selection_counts(3), [2, 0, 1])
        np.testing.assert_allclose(r.selection_fractions(3), [2 / 3, 0, 1 / 3])

    def test_selection_counts_bad_pool_size(self):
        r = _result([1, 3], [0.0] * 2, [0.0] * 2, [1, 1])
        with pytest.raises(DataError):
            r.selection_counts(2)

    def test_predictor_executions(self):
        serial = _result([1] * 4, [0.0] * 4, [0.0] * 4, [1] * 4)
        parallel = _result([1] * 4, [0.0] * 4, [0.0] * 4, [1] * 4, parallel=True)
        assert serial.predictor_executions(3) == 4
        assert parallel.predictor_executions(3) == 12


class TestTraceEvaluation:
    def _eval(self):
        ev = TraceEvaluation(trace_id="t", pool_names=("LAST", "AR", "SW_AVG"))
        ev.add(_result([1], [0.5], [1.0], [1], strategy="LAR"))
        ev.add(_result([1], [0.2], [1.0], [1], strategy="STATIC[AR]"))
        ev.add(_result([1], [0.0], [1.0], [1], strategy="STATIC[LAST]"))
        ev.add(_result([1], [0.4], [1.0], [1], strategy="Cum.MSE"))
        return ev

    def test_best_static(self):
        # STATIC[AR] predicts 0.2 against 1.0 -> mse 0.64;
        # STATIC[LAST] predicts 0.0 -> mse 1.0. AR wins.
        name, mse = self._eval().best_static()
        assert name == "AR"
        assert mse == pytest.approx(0.64)

    def test_lar_beats_best_static_comparison(self):
        ev = self._eval()
        # LAR mse = 0.25; best static = STATIC[AR] with 0.64.
        assert ev.lar_beats_best_static()

    def test_lar_beats_other(self):
        ev = self._eval()
        assert ev.lar_beats("Cum.MSE")  # 0.25 < 0.36

    def test_no_static_raises(self):
        ev = TraceEvaluation(trace_id="t")
        ev.add(_result([1], [0.0], [1.0], [1], strategy="LAR"))
        with pytest.raises(DataError):
            ev.best_static()

    def test_summary_row(self):
        row = self._eval().summary_row()
        assert set(row) == {"LAR", "STATIC[AR]", "STATIC[LAST]", "Cum.MSE"}

    def test_contains_and_getitem(self):
        ev = self._eval()
        assert "LAR" in ev
        assert ev["LAR"].strategy == "LAR"
