"""Executable-documentation test: every TUTORIAL.md snippet must run.

Docs that silently rot are worse than no docs; this test executes each
``python`` block of docs/TUTORIAL.md in order, sharing one namespace
(the tutorial builds on earlier snippets), inside a temp directory with
the user-data files the last block expects.
"""

import contextlib
import io
import os
import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def test_tutorial_blocks_execute(tmp_path, monkeypatch):
    assert TUTORIAL.exists()
    blocks = re.findall(r"```python\n(.*?)```", TUTORIAL.read_text(), re.S)
    assert len(blocks) >= 8, "tutorial lost its code blocks"
    monkeypatch.chdir(tmp_path)
    # The 'your data' block reads a user file; provide one.
    (tmp_path / "hostload.txt").write_text(
        "\n".join(f"{5 + 0.01 * i + (i % 7) * 0.3:.3f}" for i in range(400))
    )
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                exec(block, namespace)  # noqa: S102 - executing our own docs
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial block {i} failed: {exc!r}\n{block}")
    assert os.path.exists(tmp_path / "model.npz")  # block 9 saved a model
