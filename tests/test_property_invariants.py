"""Cross-module property-based tests (hypothesis) on system invariants.

These pin the invariants the whole evaluation rests on, over arbitrary
well-formed inputs rather than hand-picked cases:

* the oracle's per-step choice really is the per-step argmin;
* running the selected member reproduces the oracle's error exactly;
* the pipeline is deterministic and scale-covariant where it should be;
* the cumulative-MSE selector never looks into the future.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LARConfig
from repro.core.runner import StrategyRunner
from repro.predictors.pool import PredictorPool
from repro.selection.cumulative_mse import CumulativeMSESelector
from repro.selection.oracle import OracleSelection
from repro.traces.synthetic import ar1_series

# Series generated from a seeded AR(1) with hypothesis-chosen parameters:
# well-formed (finite, non-constant) by construction, diverse in shape.
series_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.floats(min_value=-0.95, max_value=0.95),  # phi
    st.floats(min_value=0.1, max_value=50.0),  # std
    st.integers(min_value=60, max_value=200),  # length
)


def _series(params):
    seed, phi, std, n = params
    return ar1_series(n, phi=phi, std=std, seed=seed)


class TestOracleInvariants:
    @given(series_params)
    @settings(max_examples=25, deadline=None)
    def test_oracle_equals_columnwise_min(self, params):
        """The oracle's squared error at each step is the row minimum of
        the pool's squared-error matrix — by construction, but routed
        through the full select -> dispatch -> predict path."""
        x = _series(params)
        runner = StrategyRunner(LARConfig(window=5)).fit(x[: len(x) // 2])
        prepared = runner.prepare_test(x[len(x) // 2 :])
        result = runner.evaluate(None, OracleSelection(), prepared=prepared)
        err_matrix = runner.pool.errors(prepared.frames, prepared.targets)
        oracle_err = np.abs(result.predictions - result.targets)
        np.testing.assert_allclose(oracle_err, err_matrix.min(axis=1), atol=1e-12)

    @given(series_params)
    @settings(max_examples=25, deadline=None)
    def test_every_strategy_bounded_by_oracle_and_worst(self, params):
        x = _series(params)
        runner = StrategyRunner(LARConfig(window=5)).fit(x[: len(x) // 2])
        prepared = runner.prepare_test(x[len(x) // 2 :])
        err = runner.pool.errors(prepared.frames, prepared.targets) ** 2
        lower = err.min(axis=1).mean()
        upper = err.max(axis=1).mean()
        from repro.selection.learned import LearnedSelection

        for strategy in (
            OracleSelection(),
            LearnedSelection(),
            CumulativeMSESelector(warm_start=False),
        ):
            mse = runner.evaluate(None, strategy, prepared=prepared).mse
            assert lower - 1e-12 <= mse <= upper + 1e-12


class TestPipelineInvariants:
    @given(series_params)
    @settings(max_examples=20, deadline=None)
    def test_full_pipeline_deterministic(self, params):
        x = _series(params)
        results = []
        for _ in range(2):
            runner = StrategyRunner(LARConfig(window=5)).fit(x[: len(x) // 2])
            from repro.selection.learned import LearnedSelection

            res = runner.evaluate(x[len(x) // 2 :], LearnedSelection())
            results.append(res)
        np.testing.assert_array_equal(results[0].labels, results[1].labels)
        np.testing.assert_array_equal(
            results[0].predictions, results[1].predictions
        )

    @given(series_params, st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=-1000.0, max_value=1000.0))
    @settings(max_examples=20, deadline=None)
    def test_normalized_mse_is_affine_invariant(self, params, scale, shift):
        """Rescaling/shifting the raw series must not change the
        normalized-space evaluation — the property that makes Table 2's
        numbers comparable across metrics with different units."""
        x = _series(params)
        from repro.selection.static import StaticSelection

        def run(series):
            runner = StrategyRunner(LARConfig(window=5)).fit(
                series[: len(series) // 2]
            )
            return runner.evaluate(
                series[len(series) // 2 :], StaticSelection("AR")
            ).mse

        base = run(x)
        transformed = run(x * scale + shift)
        np.testing.assert_allclose(transformed, base, rtol=1e-6, atol=1e-9)


class TestCausalityInvariant:
    @given(series_params, st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_nws_selection_is_causal(self, params, window):
        """Perturbing the last observation never changes earlier
        selections, for both windowed and cumulative variants."""
        x = _series(params)
        runner = StrategyRunner(LARConfig(window=5)).fit(x[: len(x) // 2])
        test = x[len(x) // 2 :]
        sel = CumulativeMSESelector(window=window, warm_start=False)
        sel.fit(runner.pool, runner.train_data)
        a = sel.select(runner.pool, runner.prepare_test(test))
        perturbed = test.copy()
        perturbed[-1] += 1e3
        b = sel.select(runner.pool, runner.prepare_test(perturbed))
        np.testing.assert_array_equal(a[:-1], b[:-1])


class TestPoolInvariants:
    @given(series_params)
    @settings(max_examples=20, deadline=None)
    def test_dispatch_matches_columns(self, params):
        """predict_with_labels(frames, L)[i] == predict_all(frames)[i, L[i]-1]
        for arbitrary label assignments."""
        x = _series(params)
        pool = PredictorPool.paper_pool(ar_order=5).fit(x)
        rng = np.random.default_rng(params[0])
        frames = rng.standard_normal((12, 5))
        labels = rng.integers(1, 4, 12)
        routed = pool.predict_with_labels(frames, labels)
        matrix = pool.predict_all(frames)
        for i, lab in enumerate(labels):
            # BLAS may pick different kernels for different batch
            # shapes, so agreement is to the last few ulps, not bitwise.
            np.testing.assert_allclose(
                routed[i], matrix[i, lab - 1], rtol=1e-10, atol=1e-12
            )
