"""Unit tests for the telemetry subsystem (repro.obs) and its wiring."""

import json

import numpy as np
import pytest

from repro.core.config import LARConfig
from repro.exceptions import ConfigurationError
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    NULL_TELEMETRY,
    EventLog,
    MetricsRegistry,
    NullEventLog,
    NullRegistry,
    NullTracer,
    Telemetry,
    Tracer,
    json_snapshot,
    parse_prometheus_text,
    prometheus_text,
)
from repro.parallel.pool_exec import ParallelConfig
from repro.serving import FleetConfig, PredictionFleet
from repro.traces.synthetic import ar1_series

SERIAL = ParallelConfig(max_workers=1)


def small_config(**overrides):
    defaults = dict(
        lar=LARConfig(window=5),
        min_train=30,
        qa_threshold=3.0,
        audit_window=16,
        audit_interval=8,
        parallel=SERIAL,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def drift_feeds(names, n=400, *, drift_at=200, drift=25.0):
    """AR(1) feeds where every other stream drifts mid-run."""
    feeds = {}
    for i, name in enumerate(names):
        series = 10.0 + 2.0 * ar1_series(n, phi=0.9, seed=i)
        if i % 2 == 0:
            series = series.copy()
            series[drift_at:] += drift
        feeds[name] = series
    return feeds


def serve(fleet, feeds, start, stop, *, batched=True):
    for t in range(start, stop):
        fleet.forecast_all(batched=batched)
        fleet.ingest(
            {name: feeds[name][t] for name in fleet.stream_names},
            batched=batched,
        )
        fleet.run_pending_retrains(batched=batched)


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", "Things.")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("repro_things_total", "Things.").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_level", "Level.")
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value == 7.0

    def test_same_name_same_child(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", "X.", stream="a")
        b = reg.counter("repro_x_total", "X.", stream="a")
        assert a is b
        other = reg.counter("repro_x_total", "X.", stream="b")
        assert other is not a

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "X.")
        with pytest.raises(ConfigurationError):
            reg.gauge("repro_x_total", "X.")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("0bad", "Bad.")
        with pytest.raises(ConfigurationError):
            reg.counter("repro_ok_total", "Ok.", **{"0bad": "v"})

    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "X.", stream="a").inc(3)
        reg.histogram("repro_t_seconds", "T.").observe(0.5)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert "repro_x_total" in snap

    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        reg.counter("repro_x_total", "X.").inc(5)
        reg.gauge("repro_g", "G.").set(1.0)
        reg.histogram("repro_h_seconds", "H.").observe(0.1)
        assert reg.snapshot() == {}
        assert reg.families() == []


class TestHistogramBuckets:
    def test_bucket_edges_le_semantics(self):
        """An observation equal to an edge lands in that edge's bucket."""
        reg = MetricsRegistry()
        h = reg.histogram(
            "repro_t_seconds", "T.", buckets=(0.1, 1.0, 10.0)
        )
        for v in (0.05, 0.1, 0.5, 1.0, 5.0, 50.0):
            h.observe(v)
        # Cumulative counts per le edge, +Inf last: an observation equal
        # to an edge counts toward that edge (le, not lt).
        assert h.cumulative_counts() == [2, 4, 5, 6]
        assert h.count == 6
        assert h.sum == pytest.approx(56.65)

    def test_bucket_edges_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_t_seconds", "T.", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_u_seconds", "U.", buckets=())

    def test_default_buckets_cover_hot_path_scales(self):
        assert DEFAULT_TIME_BUCKETS[0] <= 1e-4
        assert DEFAULT_TIME_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)

    def test_per_child_bucket_override(self):
        """Children of one family can carry their own bucket edges."""
        reg = MetricsRegistry()
        default = reg.histogram("repro_t_seconds", "T.", span="tick")
        custom = reg.histogram(
            "repro_t_seconds", "T.", buckets=(1.0, 60.0), span="train"
        )
        assert default.buckets == tuple(DEFAULT_TIME_BUCKETS)
        assert custom.buckets == (1.0, 60.0)
        custom.observe(30.0)
        assert custom.cumulative_counts() == [0, 1, 1]
        # The override binds at child creation; later lookups without
        # buckets get the existing child back unchanged.
        again = reg.histogram("repro_t_seconds", "T.", span="train")
        assert again is custom and again.buckets == (1.0, 60.0)

    def test_train_buckets_extend_past_default_ceiling(self):
        from repro.obs import TRAIN_TIME_BUCKETS

        assert TRAIN_TIME_BUCKETS[-1] > DEFAULT_TIME_BUCKETS[-1]
        assert list(TRAIN_TIME_BUCKETS) == sorted(TRAIN_TIME_BUCKETS)


# -- tracing -----------------------------------------------------------------


class TestTracer:
    def test_span_aggregates(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("phase.a", batch=10):
            pass
        with tracer.span("phase.a", batch=5):
            pass
        stats = tracer.stats()["phase.a"]
        assert stats.count == 2
        assert stats.batch_total == 15
        assert stats.total_seconds >= stats.max_seconds > 0.0

    def test_span_records_on_exception(self):
        tracer = Tracer(MetricsRegistry())
        with pytest.raises(RuntimeError):
            with tracer.span("phase.boom"):
                raise RuntimeError("die slowly")
        assert tracer.stats()["phase.boom"].count == 1

    def test_set_batch_inside_body(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("phase.a") as span:
            span.set_batch(7)
        assert tracer.stats()["phase.a"].batch_total == 7

    def test_spans_mirror_into_registry(self):
        reg = MetricsRegistry()
        tracer = Tracer(reg)
        with tracer.span("phase.a", batch=3):
            pass
        snap = reg.snapshot()
        assert "repro_span_seconds" in snap
        assert "repro_span_batch_total" in snap

    def test_render_sorted_by_total(self):
        tracer = Tracer(MetricsRegistry())
        tracer.record("fast", 0.001, 1)
        tracer.record("slow", 1.0, 1)
        lines = tracer.render().splitlines()
        assert lines.index(next(l for l in lines if "slow" in l)) < lines.index(
            next(l for l in lines if "fast" in l)
        )

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("phase.a", batch=3) as span:
            span.set_batch(9)
        tracer.record("phase.a", 1.0, 2)
        assert tracer.stats() == {} and tracer.snapshot() == {}


# -- event log ---------------------------------------------------------------


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog(capacity=8)
        log.emit("qa_breach", tick=3, stream="a", window_mse=4.0)
        log.emit("retrain_order", tick=3, stream="a")
        log.emit("qa_breach", tick=5, stream="b", window_mse=9.0)
        breaches = log.records(kind="qa_breach")
        assert [e.stream for e in breaches] == ["a", "b"]
        assert log.records(kind="qa_breach", stream="b")[0].data == {
            "window_mse": 9.0
        }

    def test_ring_eviction_keeps_sequence(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tickle", tick=i)
        assert len(log) == 4
        assert log.total_emitted == 10
        assert log.dropped == 6
        # Oldest retained event is seq 6: numbering survives eviction.
        assert [e.seq for e in log.records()] == [6, 7, 8, 9]

    def test_tail(self):
        log = EventLog(capacity=8)
        for i in range(5):
            log.emit("tickle", tick=i)
        assert [e.tick for e in log.tail(2)] == [3, 4]
        assert log.tail(0) == ()

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)

    def test_snapshot_round_trips_through_json(self):
        log = EventLog(capacity=4)
        log.emit("qa_breach", tick=1, stream="a", window_mse=2.5)
        snap = json.loads(json.dumps(log.snapshot()))
        assert snap["events"][0]["kind"] == "qa_breach"
        assert snap["events"][0]["data"]["window_mse"] == 2.5

    def test_null_event_log_is_inert(self):
        log = NullEventLog()
        assert log.emit("anything", tick=1) is None
        assert len(log) == 0 and log.records() == ()

    def test_wraparound_keeps_emission_order(self):
        """After the ring laps, reads stay oldest-first with no holes."""
        log = EventLog(capacity=3)
        for i in range(8):
            log.emit("even" if i % 2 == 0 else "odd", tick=i)
        assert [e.tick for e in log.records()] == [5, 6, 7]
        assert [e.seq for e in log] == [5, 6, 7]
        assert [e.tick for e in log.records(kind="odd")] == [5, 7]

    def test_events_carry_wall_and_monotonic_stamps(self):
        import time

        before_wall, before_mono = time.time(), time.perf_counter()
        event = EventLog(capacity=4).emit("qa_breach", tick=1)
        after_wall, after_mono = time.time(), time.perf_counter()
        assert before_wall <= event.wall <= after_wall
        assert before_mono <= event.mono <= after_mono
        doc = event.as_dict()
        assert doc["wall"] == event.wall and doc["mono"] == event.mono

    def test_snapshot_round_trips_through_from_snapshot(self):
        log = EventLog(capacity=4)
        log.emit("qa_breach", tick=3, stream="a", window_mse=2.5)
        log.emit("retrain_order", tick=3, stream="a")
        restored = EventLog.from_snapshot(
            json.loads(json.dumps(log.snapshot()))
        )
        assert [e.as_dict() for e in restored] == [
            e.as_dict() for e in log
        ]
        assert restored.total_emitted == 2 and restored.dropped == 0

    def test_from_snapshot_loads_pre_upgrade_documents(self):
        """Old snapshots carry no wall/mono stamps; they load as 0.0."""
        restored = EventLog.from_snapshot(
            {
                "capacity": 4,
                "total_emitted": 9,
                "dropped": 7,
                "events": [
                    {
                        "seq": 8,
                        "kind": "qa_breach",
                        "tick": 5,
                        "stream": "a",
                        "data": {"window_mse": 9.0},
                    }
                ],
            }
        )
        (event,) = restored.records()
        assert event.wall == 0.0 and event.mono == 0.0
        assert event.data == {"window_mse": 9.0}
        assert restored.total_emitted == 9 and restored.dropped == 7


# -- telemetry facade --------------------------------------------------------


class TestTelemetry:
    def test_enabled_facade_wires_legs_together(self):
        tel = Telemetry()
        assert tel.enabled
        with tel.tracer.span("phase.a", batch=1):
            pass
        tel.events.emit("tickle", tick=1)
        snap = tel.snapshot()
        assert snap["enabled"] is True
        assert "phase.a" in snap["spans"]
        assert snap["events"]["total_emitted"] == 1

    def test_disabled_singleton(self):
        tel = Telemetry.disabled()
        assert tel is NULL_TELEMETRY
        assert not tel.enabled
        with tel.tracer.span("phase.a"):
            pass
        tel.events.emit("tickle")
        tel.registry.counter("repro_x_total", "X.").inc()
        assert tel.snapshot() == {"enabled": False}


# -- exporters ---------------------------------------------------------------


class TestPrometheusExport:
    def test_golden_exposition(self):
        """Exact text for a tiny registry, pinned as a golden value."""
        reg = MetricsRegistry()
        reg.counter("repro_ticks_total", "Ticks.").inc(3)
        reg.gauge("repro_streams", "Streams.", shard="a").set(2)
        reg.histogram(
            "repro_lat_seconds", "Latency.", buckets=(0.1, 1.0)
        ).observe(0.5)
        assert prometheus_text(reg) == (
            "# HELP repro_lat_seconds Latency.\n"
            "# TYPE repro_lat_seconds histogram\n"
            'repro_lat_seconds_bucket{le="0.1"} 0\n'
            'repro_lat_seconds_bucket{le="1"} 1\n'
            'repro_lat_seconds_bucket{le="+Inf"} 1\n'
            "repro_lat_seconds_sum 0.5\n"
            "repro_lat_seconds_count 1\n"
            "# HELP repro_streams Streams.\n"
            "# TYPE repro_streams gauge\n"
            'repro_streams{shard="a"} 2\n'
            "# HELP repro_ticks_total Ticks.\n"
            "# TYPE repro_ticks_total counter\n"
            "repro_ticks_total 3\n"
        )

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "X.", stream='we"ird\\na\nme').inc()
        text = prometheus_text(reg)
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_parse_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("repro_ticks_total", "Ticks.").inc(7)
        reg.gauge("repro_streams", "Streams.", shard="a").set(2)
        parsed = parse_prometheus_text(prometheus_text(reg))
        assert parsed[("repro_ticks_total", ())] == 7.0
        assert parsed[("repro_streams", (("shard", "a"),))] == 2.0

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not exposition format\n")

    def test_escaped_label_values_round_trip(self):
        """Backslash, newline and quote survive exposition -> parse."""
        gnarly = 'we"ird\\na\nme'
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "X.", stream=gnarly).inc(2)
        parsed = parse_prometheus_text(prometheus_text(reg))
        assert parsed[("repro_x_total", (("stream", gnarly),))] == 2.0

    def test_custom_buckets_round_trip_with_inf_edge(self):
        """Per-child bucket overrides survive exposition -> parse."""
        reg = MetricsRegistry()
        h = reg.histogram(
            "repro_lat_seconds", "Latency.", buckets=(0.5, 60.0), span="train"
        )
        for v in (0.1, 30.0, 120.0):
            h.observe(v)
        parsed = parse_prometheus_text(prometheus_text(reg))
        labels = lambda le: (("le", le), ("span", "train"))
        assert parsed[("repro_lat_seconds_bucket", labels("0.5"))] == 1.0
        assert parsed[("repro_lat_seconds_bucket", labels("60"))] == 2.0
        # The 120 s observation only lands in the implicit +Inf bucket.
        assert parsed[("repro_lat_seconds_bucket", labels("+Inf"))] == 3.0
        assert parsed[("repro_lat_seconds_count", (("span", "train"),))] == 3.0

    def test_json_snapshot_embeds_extra(self):
        tel = Telemetry()
        tel.registry.counter("repro_x_total", "X.").inc()
        snap = json_snapshot(tel, extra={"fleet": {"n_streams": 3}})
        json.dumps(snap)
        assert snap["fleet"] == {"n_streams": 3}
        assert snap["telemetry"]["enabled"] is True


# -- fleet wiring ------------------------------------------------------------


def storm_fleet(*, batched=True, telemetry=True, **config_overrides):
    """A drift-storm fleet: half the streams breach QA mid-run."""
    config = small_config(**config_overrides)
    fleet = PredictionFleet(
        config, streams=["a", "b", "c", "d"], telemetry=telemetry
    )
    feeds = drift_feeds(fleet.stream_names, 160, drift_at=80)
    serve(fleet, feeds, 0, 160, batched=batched)
    return fleet


class TestFleetTelemetry:
    def test_disabled_by_default(self):
        fleet = PredictionFleet(small_config())
        assert fleet.telemetry is NULL_TELEMETRY
        assert not fleet.telemetry.enabled

    def test_telemetry_true_builds_registry(self):
        fleet = PredictionFleet(small_config(), telemetry=True)
        assert fleet.telemetry.enabled

    def test_explicit_instance_used_as_is(self):
        tel = Telemetry()
        fleet = PredictionFleet(small_config(), telemetry=tel)
        assert fleet.telemetry is tel

    def test_drift_storm_traces_both_engines(self):
        """Acceptance: per-phase spans for tick AND train engines."""
        fleet = storm_fleet()
        spans = set(fleet.telemetry.tracer.stats())
        assert {
            "tick.zscore", "tick.pca_project", "tick.knn_query",
            "tick.pool_dispatch", "tick.window_stack", "tick.audit",
            "tick.label_pool", "tick.memory_learn",
        } <= spans
        assert {
            "train.zscore_fit", "train.ar_fit", "train.labelling",
            "train.pca_eigh", "train.rebuild",
        } <= spans
        # Batch sizes rode along with the spans.
        assert fleet.telemetry.tracer.stats()["tick.knn_query"].batch_total > 0

    def test_drift_storm_logs_breaches_and_retrains(self):
        """Acceptance: every QA breach and deferral appears in the log."""
        fleet = storm_fleet(max_retrains_per_tick=1)
        events = fleet.telemetry.events
        breaches = events.records(kind="qa_breach")
        assert len(breaches) > 0
        total_breaches = sum(
            s.qa.breaches_total for s in fleet._streams.values()
        )
        assert len(breaches) == total_breaches
        deferrals = events.records(kind="retrain_deferred")
        assert len(deferrals) == fleet.metrics().deferred_retrains
        assert len(deferrals) > 0
        assert len(events.records(kind="retrain_complete")) > 0

    def test_counters_match_fleet_state(self):
        fleet = storm_fleet()
        reg = fleet.telemetry.registry
        snap = reg.snapshot()
        m = fleet.metrics()
        get = lambda name: snap[name]["series"][0]["value"]
        # The ticks counter counts ingest calls; total_ticks sums the
        # per-stream tick counters.
        assert get("repro_fleet_ticks_total") * m.n_streams == m.total_ticks
        assert get("repro_fleet_retrains_total") == m.total_retrains
        assert get("repro_fleet_streams") == m.n_streams
        assert get("repro_fleet_qa_audits_total") == sum(
            s.audits for s in m.streams
        )
        assert get("repro_fleet_qa_breaches_total") == sum(
            s.breaches for s in m.streams
        )

    def test_batched_vs_loop_telemetry_parity(self):
        """Fleet counters and the event narrative are path-independent."""
        batched = storm_fleet(batched=True, max_retrains_per_tick=1)
        loop = storm_fleet(batched=False, max_retrains_per_tick=1)

        def fleet_counters(fleet):
            out = {}
            for family in fleet.telemetry.registry.families():
                if not family.name.startswith("repro_fleet_"):
                    continue  # span metrics differ per path by design
                for labels, child in sorted(family.children.items()):
                    out[(family.name, labels)] = child.value
            return out

        assert fleet_counters(batched) == fleet_counters(loop)

        def narrative(fleet):
            # Sorted by (tick, kind, stream): the two paths emit the
            # same events per tick but interleave streams differently
            # within one, and intra-tick order carries no contract.
            return sorted(
                (e.tick, e.kind, e.stream, tuple(sorted(e.data.items())))
                for e in fleet.telemetry.events.records()
            )

        assert narrative(batched) == narrative(loop)

    def test_gather_free_vs_legacy_telemetry_parity(self):
        """The aggregated audit notes (one counter increment per tick,
        not per stream) land on the same final counter values and the
        same event narrative as the per-stream ``_note_audit`` calls of
        legacy mode."""
        config = small_config(max_retrains_per_tick=1)

        def storm(gather_free):
            fleet = PredictionFleet(
                config, streams=["a", "b", "c", "d"], telemetry=True
            )
            fleet._get_engine().gather_free = gather_free
            feeds = drift_feeds(fleet.stream_names, 160, drift_at=80)
            serve(fleet, feeds, 0, 160, batched=True)
            return fleet

        fast, legacy = storm(True), storm(False)

        def fleet_counters(fleet):
            out = {}
            for family in fleet.telemetry.registry.families():
                if not family.name.startswith("repro_fleet_"):
                    continue
                for labels, child in sorted(family.children.items()):
                    out[(family.name, labels)] = child.value
            return out

        assert fleet_counters(fast) == fleet_counters(legacy)

        def narrative(fleet):
            return sorted(
                (e.tick, e.kind, e.stream, tuple(sorted(e.data.items())))
                for e in fleet.telemetry.events.records()
            )

        assert narrative(fast) == narrative(legacy)

    def test_note_audits_batch_matches_per_call(self):
        from repro.core.qa import AuditRecord

        per_call = PredictionFleet(small_config(), telemetry=True)
        batch = PredictionFleet(small_config(), telemetry=True)
        audits = [
            ("a", AuditRecord(step=8, window_mse=0.5, breached=False)),
            ("b", AuditRecord(step=8, window_mse=9.0, breached=True)),
            ("c", AuditRecord(step=16, window_mse=4.5, breached=True)),
        ]
        for name, audit in audits:
            per_call._note_audit(name, audit)
        per_call._note_audit("d", None)  # no audit this tick
        batch._note_audits_batch(audits)
        batch._note_audits_batch([])
        for fleet in (per_call, batch):
            reg = fleet.telemetry.registry
            snap = reg.snapshot()
            get = lambda n: snap[n]["series"][0]["value"]
            assert get("repro_fleet_qa_audits_total") == 3
            assert get("repro_fleet_qa_breaches_total") == 2
        events_a = [
            (e.kind, e.stream, tuple(sorted(e.data.items())))
            for e in per_call.telemetry.events.records()
        ]
        events_b = [
            (e.kind, e.stream, tuple(sorted(e.data.items())))
            for e in batch.telemetry.events.records()
        ]
        assert events_a == events_b

    def test_selection_counters_settle_lazily(self):
        """``state.selections`` dict bumps surface as labelled counters
        on every registry read, with idempotent repeat flushes."""
        fleet = PredictionFleet(
            small_config(), streams=["a", "b"], telemetry=True
        )
        fleet._streams["a"].selections = {"AR": 2, "LAST": 1}
        fleet._streams["b"].selections = {"SW_AVG": 3}

        def selections(fleet):
            out = {}
            for family in fleet.telemetry.registry.families():
                if family.name != "repro_fleet_selections_total":
                    continue
                for labels, child in sorted(family.children.items()):
                    out[labels] = child.value
            return out

        first = selections(fleet)
        assert sum(first.values()) == 6
        assert first[
            (("predictor", "AR"), ("stream", "a"))
        ] == 2
        # Re-reading without new ticks must not double-count.
        assert selections(fleet) == first
        # New ticks surface as deltas on the same children.
        fleet._streams["a"].selections["AR"] = 5
        after = selections(fleet)
        assert after[(("predictor", "AR"), ("stream", "a"))] == 5
        assert sum(after.values()) == 9

    def test_metrics_render_includes_new_columns(self):
        fleet = storm_fleet(max_retrains_per_tick=1)
        out = fleet.metrics().render()
        header = out.splitlines()[0]
        assert "deferred" in header and "pending" in header
        assert "audits" in out and "breaches" in out

    def test_metrics_as_dict_json_safe(self):
        fleet = storm_fleet()
        d = fleet.metrics().as_dict()
        json.dumps(d)
        assert d["n_streams"] == 4
        assert d["telemetry"] is not None

    def test_telemetry_off_costs_nothing_visible(self):
        fleet = storm_fleet(telemetry=False)
        m = fleet.metrics()
        assert m.telemetry is None
        assert m.deferred_retrains == 0 or m.deferred_retrains > 0  # tracked
        assert fleet.telemetry.snapshot() == {"enabled": False}

    def test_deferred_metric_counts_budget_passes(self):
        fleet = storm_fleet(telemetry=False, max_retrains_per_tick=1)
        # The drift storm breaches more than one stream per tick, so a
        # budget of one must defer at least once.
        assert fleet.metrics().deferred_retrains > 0

    def test_prometheus_export_from_live_fleet_parses(self):
        fleet = storm_fleet()
        text = prometheus_text(fleet.telemetry.registry)
        parsed = parse_prometheus_text(text)
        assert parsed[("repro_fleet_streams", ())] == 4.0
        span_keys = [
            k for k, _ in parsed
            if k.startswith("repro_span_seconds_bucket")
        ]
        assert span_keys


class TestFleetTelemetryPersistence:
    def test_deferred_total_round_trips(self, tmp_path):
        fleet = storm_fleet(telemetry=False, max_retrains_per_tick=1)
        assert fleet.metrics().deferred_retrains > 0
        fleet.save(tmp_path / "fleet")
        clone = PredictionFleet.load(tmp_path / "fleet")
        assert (
            clone.metrics().deferred_retrains
            == fleet.metrics().deferred_retrains
        )

    def test_load_with_telemetry(self, tmp_path):
        fleet = storm_fleet(telemetry=False)
        fleet.save(tmp_path / "fleet")
        clone = PredictionFleet.load(tmp_path / "fleet", telemetry=True)
        assert clone.telemetry.enabled
        # The restore itself narrates stream registration.
        adds = clone.telemetry.events.records(kind="stream_add")
        assert len(adds) == len(fleet.stream_names)


# -- label-cache telemetry ---------------------------------------------------


def jump_storm_fleet(*, batched=True, label_cache=True, telemetry=True):
    """A retrain-*cluster* storm: runs of abrupt level shifts a few
    audit intervals apart re-breach the QA after every retrain, so one
    stream retrains several times over heavily overlapping windows —
    the access pattern the label cache serves. (The plain drift storm
    shifts once per stream; its retrains land too far apart for a tail
    to ever be consulted.)"""
    config = small_config(
        min_train=20,
        qa_threshold=2.0,
        audit_window=8,
        audit_interval=4,
        retrain_window=40,
        label_cache=label_cache,
    )
    fleet = PredictionFleet(
        config, streams=["a", "b", "c", "d"], telemetry=telemetry
    )
    n = 150
    feeds = {}
    for i, name in enumerate(fleet.stream_names):
        series = 10.0 + 2.0 * ar1_series(n, phi=0.9, seed=7 * i + 1)
        for storm in (50, 100):
            for j in range(3):
                series[storm + 10 * j :] += 15.0
        feeds[name] = series
    serve(fleet, feeds, 0, n, batched=batched)
    return fleet


class TestLabelCacheTelemetry:
    def test_storm_counters_agree_with_the_event_log(self):
        """Acceptance: every cache consultation shows up in both legs —
        one counter increment and one event, with matching totals."""
        fleet = jump_storm_fleet()
        snap = fleet.telemetry.registry.snapshot()
        get = lambda name: snap[name]["series"][0]["value"]
        hits = fleet.telemetry.events.records(kind="label_cache_hit")
        misses = fleet.telemetry.events.records(kind="label_cache_miss")
        assert get("repro_fleet_label_cache_hits_total") == len(hits) > 0
        assert get("repro_fleet_label_cache_misses_total") == len(misses) > 0
        assert get("repro_fleet_label_cache_spliced_frames_total") == sum(
            e.data["reused"] for e in hits
        )
        for e in hits:
            assert e.data["reused"] >= e.data["labels_reused"] >= 0
        for e in misses:
            assert e.data["reason"] in {"cold", "config", "params", "disjoint"}

    def test_incremental_retrains_trace_their_own_span(self):
        fleet = jump_storm_fleet()
        stats = fleet.telemetry.tracer.stats()
        assert "train.label_cache" in stats
        assert stats["train.label_cache"].count > 0

    def test_cache_disabled_stays_silent(self):
        """label_cache=False skips the lookup entirely: zero counters,
        zero events — not a stream of misses."""
        fleet = jump_storm_fleet(label_cache=False)
        assert fleet.metrics().total_retrains > 0
        snap = fleet.telemetry.registry.snapshot()
        get = lambda name: snap[name]["series"][0]["value"]
        assert get("repro_fleet_label_cache_hits_total") == 0
        assert get("repro_fleet_label_cache_misses_total") == 0
        assert get("repro_fleet_label_cache_spliced_frames_total") == 0
        assert fleet.telemetry.events.records(kind="label_cache_hit") == ()
        assert fleet.telemetry.events.records(kind="label_cache_miss") == ()

    def test_batched_vs_loop_cache_telemetry_parity(self):
        """The parity contract extends to the cache instruments: the
        stacked burst and the per-stream loop consult and splice
        identically, event for event."""
        batched = jump_storm_fleet(batched=True)
        loop = jump_storm_fleet(batched=False)

        def cache_state(fleet):
            snap = fleet.telemetry.registry.snapshot()
            counters = {
                name: snap[name]["series"][0]["value"]
                for name in snap
                if "label_cache" in name
            }
            narrative = sorted(
                (e.tick, e.kind, e.stream, tuple(sorted(e.data.items())))
                for e in fleet.telemetry.events.records()
                if e.kind.startswith("label_cache")
            )
            return counters, narrative

        counters, narrative = cache_state(batched)
        assert counters["repro_fleet_label_cache_hits_total"] > 0
        assert (counters, narrative) == cache_state(loop)


# -- predictor-selection counters -------------------------------------------


class TestSelectionCounters:
    def test_labelled_series_match_stream_state(self):
        """Every (stream, predictor) selection the fleet recorded in its
        per-stream state appears as one labelled counter series with the
        same count — and nothing else does."""
        fleet = storm_fleet()
        family = next(
            f
            for f in fleet.telemetry.registry.families()
            if f.name == "repro_fleet_selections_total"
        )
        exported = {
            labels: child.value for labels, child in family.children.items()
        }
        expected = {}
        for name, state in fleet._streams.items():
            for predictor, count in state.selections.items():
                key = tuple(
                    sorted((("predictor", predictor), ("stream", name)))
                )
                expected[key] = float(count)
        assert exported == expected
        assert sum(exported.values()) > 0

    def test_batched_vs_loop_selection_parity(self):
        """The labelled selection series are execution-path-independent,
        series by series (the aggregate fleet-counter parity test would
        miss a label swap)."""

        def selections(fleet):
            family = next(
                f
                for f in fleet.telemetry.registry.families()
                if f.name == "repro_fleet_selections_total"
            )
            return {
                labels: child.value
                for labels, child in family.children.items()
            }

        batched = selections(storm_fleet(batched=True))
        assert batched == selections(storm_fleet(batched=False))
        assert len({labels for labels in batched}) >= 4  # all streams present

    def test_removing_a_stream_drops_its_cached_counters(self):
        fleet = storm_fleet()
        fleet.telemetry.registry.families()  # settle the lazy counters
        assert any(key[0] == "a" for key in fleet._sel_counters)
        fleet.remove_stream("a")
        assert not any(key[0] == "a" for key in fleet._sel_counters)
        # the exported series survive (Prometheus counters never reset)
        family = next(
            f
            for f in fleet.telemetry.registry.families()
            if f.name == "repro_fleet_selections_total"
        )
        assert any(
            ("stream", "a") in labels for labels in family.children
        )

    def test_no_counters_without_telemetry(self):
        fleet = storm_fleet(telemetry=False)
        assert fleet._sel_counters == {}


# -- live scrape endpoint ----------------------------------------------------


class TestPrometheusEndpoint:
    def _scrape(self, url):
        import urllib.request

        with urllib.request.urlopen(url, timeout=5) as response:
            return response, response.read().decode("utf-8")

    def test_scrape_round_trips_the_registry(self):
        from repro.obs import serve_prometheus

        reg = MetricsRegistry()
        reg.counter("repro_demo_total", "A demo counter").inc(3)
        reg.gauge("repro_demo_gauge", "A demo gauge", shard="0").set(1.5)
        with serve_prometheus(reg) as endpoint:
            assert endpoint.url.endswith(f":{endpoint.port}/metrics")
            response, body = self._scrape(endpoint.url)
            assert response.headers["Content-Type"].startswith("text/plain")
        parsed = parse_prometheus_text(body)
        assert parsed[("repro_demo_total", ())] == 3.0
        assert parsed[("repro_demo_gauge", (("shard", "0"),))] == 1.5

    def test_scrapes_see_live_updates(self):
        from repro.obs import serve_prometheus

        reg = MetricsRegistry()
        counter = reg.counter("repro_live_total", "")
        with serve_prometheus(reg) as endpoint:
            counter.inc()
            _, first = self._scrape(endpoint.url)
            counter.inc(4)
            _, second = self._scrape(endpoint.url)
        assert parse_prometheus_text(first)[("repro_live_total", ())] == 1.0
        assert parse_prometheus_text(second)[("repro_live_total", ())] == 5.0

    def test_unknown_path_is_404(self):
        import urllib.error
        import urllib.request

        from repro.obs import serve_prometheus

        with serve_prometheus(MetricsRegistry()) as endpoint:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{endpoint.host}:{endpoint.port}/nope", timeout=5
                )
            assert excinfo.value.code == 404

    def test_healthz_route(self):
        from repro.obs import serve_prometheus

        with serve_prometheus(MetricsRegistry()) as endpoint:
            response, body = self._scrape(
                f"http://{endpoint.host}:{endpoint.port}/healthz"
            )
            assert response.status == 200
            assert body == "ok\n"

    def test_scrape_timestamp_gauge_tracks_scrapes(self):
        import time

        from repro.obs import serve_prometheus

        reg = MetricsRegistry()
        with serve_prometheus(reg) as endpoint:
            before = time.time()
            _, body = self._scrape(endpoint.url)
            after = time.time()
        stamp = parse_prometheus_text(body)[
            ("repro_scrape_timestamp_seconds", ())
        ]
        assert before <= stamp <= after
        # The gauge is part of the registry, so the next exposition
        # (scraped or rendered) carries the last scrape's stamp.
        assert ("repro_scrape_timestamp_seconds", ()) in parse_prometheus_text(
            prometheus_text(reg)
        )

    def test_close_is_idempotent_and_stops_serving(self):
        import urllib.error
        import urllib.request

        from repro.obs import serve_prometheus

        endpoint = serve_prometheus(MetricsRegistry())
        endpoint.close()
        endpoint.close()
        assert "closed" in repr(endpoint)
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(endpoint.url, timeout=1)

    def test_live_fleet_scrape_parses(self):
        from repro.obs import serve_prometheus

        fleet = storm_fleet()
        with serve_prometheus(fleet.telemetry.registry) as endpoint:
            _, body = self._scrape(endpoint.url)
        parsed = parse_prometheus_text(body)
        assert parsed[("repro_fleet_streams", ())] == 4.0


# -- sharded-burst telemetry -------------------------------------------------


class TestShardTelemetry:
    def test_sharded_burst_emits_spans_gauge_and_events(self):
        from repro.serving import BatchedTrainEngine

        tel = Telemetry()
        engine = BatchedTrainEngine(
            small_config(), telemetry=tel, shards=2, min_shard_streams=1
        )
        n = 16
        histories = [
            10.0 + 3.0 * ar1_series(120, phi=0.85, seed=i) for i in range(n)
        ]
        engine.train_many(histories)
        stats = tel.tracer.stats()
        assert stats["train.shard"].count == 2
        assert stats["train.shard"].batch_total == n
        # worker-measured wall time rode along on every span
        assert stats["train.shard"].total_seconds > 0.0
        # the gauge rises during the burst and resets once arenas drop
        snap = tel.registry.snapshot()
        assert snap["repro_train_shm_bytes"]["series"][0]["value"] == 0
        dispatched = tel.events.records(kind="shard_dispatch")
        completed = tel.events.records(kind="shard_complete")
        assert len(dispatched) == len(completed) == 2
        assert sum(e.data["rows"] for e in dispatched) == n
        for event in completed:
            assert event.data["burst"] == "train"
            assert event.data["seconds"] >= 0.0

    def test_relabel_burst_tags_its_events(self):
        from repro.core.relabel import CachedLabels
        from repro.serving import BatchedTrainEngine

        tel = Telemetry()
        engine = BatchedTrainEngine(
            small_config(label_smoothing=6),
            telemetry=tel,
            shards=2,
            min_shard_streams=1,
        )
        n = 16
        series = [
            10.0 + 3.0 * ar1_series(200, phi=0.85, seed=i) for i in range(n)
        ]
        predictors = engine.train_many([s[:80] for s in series])
        warm = engine.relabel_many(
            [(predictors[i], series[i][:80], 0, None) for i in range(n)]
        )
        tails = [CachedLabels(0, r.sq, r.labels) for r in warm]
        engine.relabel_many(
            [
                (warm[i].predictor, series[i][20:100], 20, tails[i])
                for i in range(n)
            ]
        )
        bursts = {
            e.data["burst"] for e in tel.events.records(kind="shard_complete")
        }
        assert bursts == {"train", "relabel"}
        snap = tel.registry.snapshot()
        assert snap["repro_train_shm_bytes"]["series"][0]["value"] == 0

    def test_unsharded_burst_stays_silent(self):
        from repro.serving import BatchedTrainEngine

        tel = Telemetry()
        engine = BatchedTrainEngine(small_config(), telemetry=tel)
        engine.train_many(
            [10.0 + ar1_series(100, phi=0.8, seed=i) for i in range(4)]
        )
        assert "train.shard" not in tel.tracer.stats()
        assert tel.events.records(kind="shard_dispatch") == ()
        assert "repro_train_shm_bytes" not in tel.registry.snapshot()


# -- async retrain pipeline exposition ---------------------------------------


class TestAsyncPipelineExposition:
    """The inflight gauge and pipeline events reach every export surface."""

    @staticmethod
    def _inline(monkeypatch):
        """Resolve burst futures at submission; drain stays deferred."""
        from concurrent.futures import Future

        from repro.serving import async_trainer

        def inline_submit(fn, /, *args, workers=None):
            future = Future()
            future.set_result(fn(*args))
            return future

        monkeypatch.setattr(async_trainer, "pool_submit", inline_submit)

    def _async_storm(self, monkeypatch):
        """An async-mode storm fleet paused mid-flight."""
        self._inline(monkeypatch)
        config = small_config(retrain_mode="async", auto_retrain=False)
        fleet = PredictionFleet(
            config, streams=["a", "b", "c", "d"], telemetry=True
        )
        feeds = drift_feeds(fleet.stream_names, 240, drift_at=80)
        serve(fleet, feeds, 0, 60)  # warm-up + initial trains
        fleet.drain_retrains(wait=True)
        # Ingest-only through the drift so due streams pile up instead
        # of being consumed by the per-tick retrain call.
        t = 60
        while not fleet.pending_retrains and t < 240:
            fleet.forecast_all()
            fleet.ingest({n: feeds[n][t] for n in fleet.stream_names})
            t += 1
        assert fleet.pending_retrains
        fleet.run_pending_retrains()
        return fleet

    def test_inflight_gauge_round_trips_mid_flight(self, monkeypatch):
        fleet = self._async_storm(monkeypatch)
        inflight = fleet.metrics().inflight_retrains
        assert inflight > 0
        parsed = parse_prometheus_text(
            prometheus_text(fleet.telemetry.registry)
        )
        assert parsed[("repro_fleet_retrains_inflight", ())] == float(inflight)
        fleet.drain_retrains(wait=True)
        parsed = parse_prometheus_text(
            prometheus_text(fleet.telemetry.registry)
        )
        assert parsed[("repro_fleet_retrains_inflight", ())] == 0.0

    def test_endpoint_scrape_carries_the_gauge(self, monkeypatch):
        import urllib.request

        from repro.obs import serve_prometheus

        fleet = self._async_storm(monkeypatch)
        inflight = fleet.metrics().inflight_retrains
        with serve_prometheus(fleet.telemetry.registry) as endpoint:
            with urllib.request.urlopen(endpoint.url, timeout=5) as response:
                body = response.read().decode("utf-8")
        parsed = parse_prometheus_text(body)
        assert parsed[("repro_fleet_retrains_inflight", ())] == float(inflight)
        fleet.drain_retrains(wait=True)

    def test_pipeline_events_reach_snapshot_and_summary(self, monkeypatch):
        fleet = self._async_storm(monkeypatch)
        fleet.drain_retrains(wait=True)
        tel = fleet.telemetry
        kinds = {e.kind for e in tel.events.tail(64)}
        assert {"retrain_submitted", "retrain_integrated"} <= kinds
        # The JSON export surface carries the same events...
        doc = json_snapshot(tel)
        exported = {
            e["kind"] for e in doc["telemetry"]["events"]["events"]
        }
        assert {"retrain_submitted", "retrain_integrated"} <= exported
        # ...and the summary header carries the gauge's column.
        assert "in flight" in fleet.metrics().render()
