"""Parity and lifecycle tests for shared-memory sharded training bursts.

Sharding is an execution strategy, never a model change: a row-sharded
burst must produce predictors (and relabel results) bit-identical to
the single-process :class:`~repro.serving.trainer.BatchedTrainEngine`,
which the trainer parity suite already pins against the per-stream
path. Three layers are covered here:

* real worker pools — sharded ``train_many``/``relabel_many`` bursts
  through actual forked processes and shared-memory arenas, compared
  field-by-field against the unsharded engine;
* a hypothesis property — *any* contiguous row partition of the
  in-process kernels (:meth:`_compute_train_group`,
  :meth:`_compute_relabel_group`, the exact functions workers run on
  their slices) reassembles to the unpartitioned bits, splice caches
  included;
* lifecycle — arenas never leak (:func:`active_segments` empty after
  every burst, including failed ones), the shard-count policy, and the
  fleet/config wiring.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LARConfig
from repro.core.online import OnlineLARPredictor
from repro.core.relabel import CachedLabels, plan_splice
from repro.exceptions import ConfigurationError
from repro.parallel.pool_exec import ParallelConfig, shutdown_persistent_pool
from repro.parallel.shm import active_segments
from repro.serving import (
    BatchedTrainEngine,
    FleetConfig,
    PredictionFleet,
    ShardedTrainEngine,
)
from repro.serving.trainer import (
    DEFAULT_MIN_SHARD_STREAMS,
    MIN_ROWS_PER_SHARD,
    _shard_bounds,
)
from repro.traces.synthetic import ar1_series
from tests.test_serving_label_cache import _assert_results_identical
from tests.test_serving_trainer import _assert_same_model

SERIAL = ParallelConfig(max_workers=1)

# The smallest group _shard_count will actually split: two shards of
# MIN_ROWS_PER_SHARD rows each.
MIN_SHARDED_GROUP = 2 * MIN_ROWS_PER_SHARD


def _config(**overrides):
    defaults = dict(
        lar=LARConfig(window=5),
        min_train=20,
        max_memory=32,
        history_limit=256,
        parallel=SERIAL,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _histories(n, length=120, seed=0):
    out = []
    for i in range(n):
        base = 10.0 + 3.0 * ar1_series(length, phi=0.85, seed=seed + i)
        base[length // 2 :] += 4.0
        out.append(base)
    return out


def _partition(n_rows, cuts):
    """``[lo, hi)`` ranges covering *n_rows* split at *cuts*."""
    edges = [0, *sorted(c for c in cuts if 0 < c < n_rows), n_rows]
    return [(lo, hi) for lo, hi in zip(edges, edges[1:]) if lo < hi]


class TestShardBounds:
    def test_even_split(self):
        assert _shard_bounds(16, 2) == [(0, 8), (8, 16)]

    def test_uneven_extra_rows_go_first(self):
        assert _shard_bounds(17, 3) == [(0, 6), (6, 12), (12, 17)]

    def test_bounds_cover_exactly(self):
        for n, k in [(7, 3), (100, 7), (9, 9)]:
            bounds = _shard_bounds(n, k)
            assert bounds[0][0] == 0 and bounds[-1][1] == n
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo


class TestShardCountPolicy:
    def test_disabled_by_default(self):
        engine = BatchedTrainEngine(_config())
        assert engine.shards is None
        assert engine._shard_count(10_000) == 1

    def test_threshold_and_row_floor(self):
        engine = BatchedTrainEngine(_config(), shards=4, min_shard_streams=16)
        assert engine._shard_count(15) == 1  # below the stream threshold
        assert engine._shard_count(16) == 2  # 16 rows feed two shards
        assert engine._shard_count(23) == 2  # not enough rows for a third
        assert engine._shard_count(64) == 4  # capped by the config
        # with a permissive threshold the row floor still applies
        loose = BatchedTrainEngine(_config(), shards=8, min_shard_streams=1)
        assert loose._shard_count(MIN_SHARDED_GROUP - 1) == 1
        assert loose._shard_count(MIN_SHARDED_GROUP) == 2

    def test_unsupported_config_never_shards(self):
        engine = BatchedTrainEngine(
            _config(lar=LARConfig(window=5, extended_pool=True)),
            shards=4,
            min_shard_streams=1,
        )
        assert engine._shard_count(1000) == 1

    def test_engine_validates_arguments(self):
        with pytest.raises(ConfigurationError):
            BatchedTrainEngine(_config(), shards=0)
        with pytest.raises(ConfigurationError):
            BatchedTrainEngine(_config(), min_shard_streams=0)

    def test_sharded_engine_defaults(self):
        engine = ShardedTrainEngine(_config())
        assert engine.shards == (os.cpu_count() or 1)
        assert engine._min_shard_streams == MIN_SHARDED_GROUP
        explicit = ShardedTrainEngine(_config(), shards=3, min_shard_streams=99)
        assert explicit.shards == 3
        assert explicit._min_shard_streams == 99

    def test_fleet_config_validation(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(train_shards=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(train_shards=1.5)
        with pytest.raises(ConfigurationError):
            FleetConfig(shard_min_streams=0)
        cfg = FleetConfig(train_shards=2, shard_min_streams=5)
        assert cfg.train_shards == 2 and cfg.shard_min_streams == 5
        assert FleetConfig().shard_min_streams == DEFAULT_MIN_SHARD_STREAMS

    def test_fleet_passes_shard_config_to_engine(self):
        fleet = PredictionFleet(
            _config(train_shards=2, shard_min_streams=7), streams=["a"]
        )
        engine = fleet._get_train_engine()
        assert engine.shards == 2
        assert engine._min_shard_streams == 7


class TestShardedTrainParity:
    """Real forked workers + shared-memory arenas vs the in-process burst."""

    def test_two_shard_burst_matches_unsharded(self):
        config = _config()
        histories = _histories(MIN_SHARDED_GROUP)
        sharded_engine = BatchedTrainEngine(
            config, shards=2, min_shard_streams=1
        )
        assert sharded_engine._shard_count(len(histories)) == 2
        sharded = sharded_engine.train_many(histories)
        plain = BatchedTrainEngine(config).train_many(histories)
        for i, (s, p) in enumerate(zip(sharded, plain)):
            _assert_same_model(s, p, f"stream {i}")
        assert active_segments() == frozenset()

    def test_uneven_rows_and_no_pca(self):
        """17 rows over 2 shards (9/8 split) on the PCA-disabled config
        — the features-alias-frames path crosses the arena too."""
        config = _config(lar=LARConfig(window=5, n_components=None))
        histories = _histories(MIN_SHARDED_GROUP + 1, seed=5)
        sharded = BatchedTrainEngine(
            config, shards=2, min_shard_streams=1
        ).train_many(histories)
        plain = BatchedTrainEngine(config).train_many(histories)
        for i, (s, p) in enumerate(zip(sharded, plain)):
            _assert_same_model(s, p, f"stream {i}")
        assert active_segments() == frozenset()

    def test_small_groups_stay_in_process(self, monkeypatch):
        """Below the threshold the sharded engine must not touch the
        pool at all."""
        from repro.serving import trainer as trainer_mod

        def _no_pool(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("small burst reached the worker pool")

        monkeypatch.setattr(trainer_mod, "persistent_pool", _no_pool)
        engine = BatchedTrainEngine(_config(), shards=2, min_shard_streams=256)
        histories = _histories(4)
        plain = BatchedTrainEngine(_config()).train_many(histories)
        for s, p in zip(engine.train_many(histories), plain):
            _assert_same_model(s, p)

    def test_failed_burst_releases_arenas(self):
        engine = BatchedTrainEngine(_config(), shards=2, min_shard_streams=1)
        histories = _histories(MIN_SHARDED_GROUP)
        histories[3][7] = np.nan
        with pytest.raises(Exception):
            engine.train_many(histories)
        assert active_segments() == frozenset()


class TestShardedRelabelParity:
    def _warm(self, engine, n, smooth=6):
        series = [
            10.0 + 3.0 * ar1_series(220, phi=0.85, seed=s) for s in range(n)
        ]
        predictors = engine.train_many([s[:80] for s in series])
        warm = engine.relabel_many(
            [(predictors[i], series[i][:80], 0, None) for i in range(n)]
        )
        tails = [CachedLabels(0, r.sq, r.labels) for r in warm]
        return series, [r.predictor for r in warm], tails

    def test_full_and_spliced_bursts_match_unsharded(self):
        config = _config(label_smoothing=6)
        n = MIN_SHARDED_GROUP
        plain_engine = BatchedTrainEngine(config)
        sharded_engine = BatchedTrainEngine(
            config, shards=2, min_shard_streams=1
        )
        series, predictors, tails = self._warm(plain_engine, n)
        # one group per geometry: a full relabel group (no cache) and a
        # spliced group where every stream advanced by the same delta
        for tasks in (
            [(predictors[i], series[i][20:100], 20, None) for i in range(n)],
            [(predictors[i], series[i][20:100], 20, tails[i]) for i in range(n)],
        ):
            sharded = sharded_engine.relabel_many(tasks)
            plain = plain_engine.relabel_many(tasks)
            for s, p in zip(sharded, plain):
                _assert_results_identical(s, p)
        assert sharded[0].reused > 0  # the spliced group really spliced
        assert active_segments() == frozenset()

    def test_sharded_splice_matches_per_stream_relabel(self):
        config = _config(label_smoothing=6)
        n = MIN_SHARDED_GROUP
        engine = BatchedTrainEngine(config, shards=2, min_shard_streams=1)
        series, predictors, tails = self._warm(engine, n)
        tasks = [
            (predictors[i], series[i][20:100], 20, tails[i]) for i in range(n)
        ]
        for result, (predictor, window, start, cached) in zip(
            engine.relabel_many(tasks), tasks
        ):
            loop = predictor.relabel(window, start=start, cached=cached)
            _assert_results_identical(result, loop)
        assert active_segments() == frozenset()


def _relabel_args(predictors, histories, plan, tails, lar):
    """The frozen-parameter tensors ``_relabel_group_tasks`` extracts."""
    runners = [p._runner for p in predictors]
    args = dict(
        histories=histories,
        norm_means=np.array(
            [r.pipeline.normalizer.mean for r in runners], dtype=np.float64
        ),
        norm_stds=np.array(
            [r.pipeline.normalizer.std for r in runners], dtype=np.float64
        ),
        ar_phi=np.stack(
            [np.ascontiguousarray(r.pool[1].coefficients_) for r in runners]
        ),
        ar_means=np.array([r.pool[1].mean_ for r in runners], dtype=np.float64),
        plan=plan,
        cached_sq=None,
        cached_labels=None,
        sw_window=runners[0].pool[2].window,
        pca_means=None,
        pca_components=None,
    )
    if lar.n_components is not None and lar.min_variance is None:
        args["pca_means"] = np.stack([r.pipeline.pca.mean_ for r in runners])
        args["pca_components"] = np.stack(
            [r.pipeline.pca.components_ for r in runners]
        )
    if plan is not None:
        args["cached_sq"] = [
            t.sq[plan.delta : plan.delta + plan.reuse] for t in tails
        ]
        args["cached_labels"] = [
            t.labels[plan.delta + plan.label_lo : plan.delta + plan.label_hi]
            for t in tails
        ]
    return args


def _slice_relabel_args(args, lo, hi):
    sliced = dict(args)
    for key in ("histories", "norm_means", "norm_stds", "ar_phi", "ar_means"):
        sliced[key] = args[key][lo:hi]
    for key in ("pca_means", "pca_components", "cached_sq", "cached_labels"):
        if args[key] is not None:
            sliced[key] = args[key][lo:hi]
    return sliced


class TestPartitionProperty:
    """Any contiguous row partition reproduces the unpartitioned bits.

    This is the exact property sharding relies on: workers run
    ``_compute_train_group`` / ``_compute_relabel_group`` on their row
    slice, so reassembling arbitrary slices must equal the full-group
    call bit-for-bit — not just the near-equal split ``_shard_bounds``
    happens to produce.
    """

    @given(
        seed=st.integers(min_value=0, max_value=50),
        cuts=st.sets(
            st.integers(min_value=1, max_value=5), min_size=1, max_size=3
        ),
        pca=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_train_fit_is_partition_invariant(self, seed, cuts, pca):
        n = 6
        lar = LARConfig(window=5, n_components=2 if pca else None)
        engine = BatchedTrainEngine(_config(lar=lar))
        stacked = np.stack(_histories(n, length=90, seed=seed))
        full = engine._compute_train_group(stacked)
        parts = [
            engine._compute_train_group(stacked[lo:hi])
            for lo, hi in _partition(n, cuts)
        ]
        for field in full._fields:
            whole = getattr(full, field)
            pieces = [getattr(p, field) for p in parts]
            if whole is None:
                assert all(p is None for p in pieces), field
            else:
                np.testing.assert_array_equal(
                    np.concatenate(pieces, axis=0), whole, err_msg=field
                )

    @given(
        seed=st.integers(min_value=0, max_value=50),
        cuts=st.sets(
            st.integers(min_value=1, max_value=5), min_size=1, max_size=3
        ),
        spliced=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_relabel_is_partition_invariant(self, seed, cuts, spliced):
        n = 6
        smooth = 6
        config = _config(label_smoothing=smooth)
        engine = BatchedTrainEngine(config)
        series = [
            10.0 + 3.0 * ar1_series(160, phi=0.85, seed=seed + s)
            for s in range(n)
        ]
        predictors = engine.train_many([s[:80] for s in series])
        warm = engine.relabel_many(
            [(predictors[i], series[i][:80], 0, None) for i in range(n)]
        )
        tails = [CachedLabels(0, r.sq, r.labels) for r in warm]
        predictors = [r.predictor for r in warm]
        stride = 20
        windows = np.stack([s[stride : stride + 80] for s in series])
        plan = None
        if spliced:
            plan = plan_splice(0, 75, stride, 75, smooth)
            assert plan is not None
        args = _relabel_args(
            predictors, windows, plan, tails, config.lar
        )
        full = engine._compute_relabel_group(**args)
        parts = [
            engine._compute_relabel_group(**_slice_relabel_args(args, lo, hi))
            for lo, hi in _partition(n, cuts)
        ]
        for index in range(len(full)):
            whole = full[index]
            pieces = [p[index] for p in parts]
            if whole is None:
                assert all(p is None for p in pieces), index
            else:
                np.testing.assert_array_equal(
                    np.concatenate(pieces, axis=0), whole, err_msg=str(index)
                )


class TestFleetShardedParity:
    def test_sharded_fleet_tracks_plain_fleet_through_a_storm(self):
        """A drift storm across a shardable fleet: every warm-up burst
        and QA retrain runs row-sharded, and every tick's forecasts and
        ingest reports must carry the single-process bits."""
        base = dict(
            lar=LARConfig(window=5),
            min_train=30,
            max_memory=24,
            qa_threshold=0.5,
            audit_window=16,
            audit_interval=4,
            retrain_window=96,
            history_limit=192,
            parallel=SERIAL,
        )
        names = [f"s{i}" for i in range(MIN_SHARDED_GROUP)]
        sharded = PredictionFleet(
            FleetConfig(**base, train_shards=2, shard_min_streams=1),
            streams=names,
        )
        plain = PredictionFleet(FleetConfig(**base), streams=names)
        rng = np.random.default_rng(2)
        state = {n: 0.0 for n in names}
        for t in range(140):
            drift = 0.6 if (t // 60) % 2 else 0.02
            for n in names:
                state[n] += 0.2 * float(rng.standard_normal()) + drift
            vals = dict(state)
            assert sharded.forecast_all() == plain.forecast_all(), t
            assert sharded.ingest(vals) == plain.ingest(vals), t
        assert plain.metrics().total_retrains > 0
        for name in names:
            sp = sharded._streams[name].predictor
            pp = plain._streams[name].predictor
            assert (sp is None) == (pp is None), name
            if sp is not None:
                _assert_same_model(sp, pp, name)
        assert active_segments() == frozenset()


@pytest.fixture(scope="module", autouse=True)
def _drain_pool():
    """Tear the persistent pool down after the module so later test
    modules start from a cold pool (and leaked-worker noise is local)."""
    yield
    shutdown_persistent_pool()
