"""Unit tests for multi-step (horizon) forecasting."""

import numpy as np
import pytest

from repro.core import LARConfig, LARPredictor
from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.traces.synthetic import ar1_series, sine_series


class TestForecastHorizon:
    def test_length_and_first_step(self, trained_lar):
        lar, series = trained_lar
        horizon = lar.forecast_horizon(series[:250], 6)
        assert len(horizon) == 6
        # Step 1 must equal the plain one-step forecast.
        assert horizon[0].value == pytest.approx(lar.forecast(series[:250]).value)

    def test_invalid_horizon(self, trained_lar):
        lar, series = trained_lar
        with pytest.raises(ConfigurationError):
            lar.forecast_horizon(series, 0)

    def test_needs_window(self, trained_lar):
        lar, _ = trained_lar
        with pytest.raises(InsufficientDataError):
            lar.forecast_horizon([1.0, 2.0], 3)

    def test_iterated_consistency(self, trained_lar):
        """Forecasting 2 ahead equals forecasting 1 ahead, appending it,
        and forecasting 1 ahead again — the definition of iteration."""
        lar, series = trained_lar
        history = series[:250]
        two = lar.forecast_horizon(history, 2)
        step1 = lar.forecast(history)
        extended = np.append(history, step1.value)
        step2 = lar.forecast(extended)
        assert two[1].value == pytest.approx(step2.value)

    def test_mean_reversion_on_stationary_series(self):
        """Far-horizon forecasts of a stationary AR series drift toward
        the series mean (the iterated-AR fixed point)."""
        series = ar1_series(600, phi=0.8, mean=10.0, std=1.0, seed=31)
        lar = LARPredictor(LARConfig(window=5)).train(series[:400])
        # Start from an extreme point.
        history = np.concatenate([series[:395], [14.0] * 5])
        horizon = lar.forecast_horizon(history, 30)
        assert abs(horizon[-1].value - 10.0) < abs(horizon[0].value - 10.0) + 0.5

    def test_each_step_selects_from_pool(self, trained_lar):
        lar, series = trained_lar
        for fc in lar.forecast_horizon(series[:250], 8):
            assert fc.predictor_name in ("LAST", "AR", "SW_AVG")
            assert np.isfinite(fc.value)

    def test_horizon_on_periodic_series_tracks_cycle(self):
        """On a clean cycle the multi-step forecast must not explode."""
        series = 10.0 + sine_series(600, period=24, noise_std=0.05, seed=32)
        lar = LARPredictor(LARConfig(window=8)).train(series[:400])
        horizon = lar.forecast_horizon(series[:500], 24)
        values = np.array([fc.value for fc in horizon])
        assert values.min() > 5.0 and values.max() < 15.0
