"""Unit tests for the selection strategies."""

import numpy as np
import pytest

from repro.core.config import LARConfig
from repro.core.runner import StrategyRunner
from repro.exceptions import ConfigurationError, NotFittedError
from repro.learn.naive_bayes import GaussianNBClassifier
from repro.predictors.pool import PredictorPool
from repro.selection.cumulative_mse import CumulativeMSESelector
from repro.selection.learned import LearnedSelection
from repro.selection.oracle import OracleSelection
from repro.selection.static import StaticSelection
from repro.traces.synthetic import ar1_series, regime_series


@pytest.fixture
def runner(smooth_series):
    r = StrategyRunner(LARConfig(window=5))
    r.fit(smooth_series[:200])
    return r


class TestStatic:
    def test_constant_labels(self, runner, smooth_series):
        prepared = runner.prepare_test(smooth_series[200:])
        labels = StaticSelection("AR").select(runner.pool, prepared)
        assert (labels == 2).all()

    def test_unknown_name_raises_at_select(self, runner, smooth_series):
        prepared = runner.prepare_test(smooth_series[200:])
        from repro.exceptions import UnknownPredictorError

        with pytest.raises(UnknownPredictorError):
            StaticSelection("NOPE").select(runner.pool, prepared)

    def test_name_embeds_predictor(self):
        assert StaticSelection("LAST").name == "STATIC[LAST]"


class TestOracle:
    def test_oracle_is_lower_envelope(self, runner, smooth_series):
        """The oracle's MSE is <= every other strategy's on the same split."""
        test = smooth_series[200:]
        prepared = runner.prepare_test(test)
        oracle = runner.evaluate(None, OracleSelection(), prepared=prepared)
        for name in ("LAST", "AR", "SW_AVG"):
            static = runner.evaluate(None, StaticSelection(name), prepared=prepared)
            assert oracle.mse <= static.mse + 1e-12

    def test_oracle_accuracy_is_one(self, runner, smooth_series):
        result = runner.evaluate(smooth_series[200:], OracleSelection())
        assert result.forecast_accuracy == 1.0

    def test_runs_pool_in_parallel_flag(self):
        assert OracleSelection.runs_pool_in_parallel


class TestCumulativeMSE:
    def test_converges_to_best_static(self):
        """On a long stationary series the NWS rule must settle on the
        predictor with the lowest long-run MSE."""
        series = ar1_series(2000, phi=0.95, seed=11)
        r = StrategyRunner(LARConfig(window=5))
        r.fit(series[:1000])
        prepared = r.prepare_test(series[1000:])
        sel = CumulativeMSESelector(warm_start=True)
        sel.fit(r.pool, r.train_data)
        labels = sel.select(r.pool, prepared)
        # The second half of selections should be a single settled label.
        tail = labels[len(labels) // 2 :]
        assert np.unique(tail).size == 1

    def test_cold_start_first_step_is_label_one(self, runner, smooth_series):
        prepared = runner.prepare_test(smooth_series[200:])
        sel = CumulativeMSESelector(warm_start=False)
        sel.fit(runner.pool, runner.train_data)
        labels = sel.select(runner.pool, prepared)
        assert labels[0] == 1

    def test_warm_start_uses_training_history(self, runner, smooth_series):
        prepared = runner.prepare_test(smooth_series[200:])
        warm = CumulativeMSESelector(warm_start=True)
        warm.fit(runner.pool, runner.train_data)
        labels = warm.select(runner.pool, prepared)
        # With training history the first step is already informed, and
        # must equal the training-phase argmin.
        err = runner.pool.errors(
            runner.train_data.frames, runner.train_data.targets
        )
        expected_first = int(np.argmin((err**2).mean(axis=0))) + 1
        assert labels[0] == expected_first

    def test_causality(self, runner, smooth_series):
        """Selection at step t must not depend on the value at step t."""
        test = smooth_series[200:]
        prepared = runner.prepare_test(test)
        sel = CumulativeMSESelector(warm_start=False)
        sel.fit(runner.pool, runner.train_data)
        labels_full = sel.select(runner.pool, prepared)
        # Perturb the final observation: all earlier selections identical.
        perturbed = test.copy()
        perturbed[-1] += 100.0
        prepared2 = runner.prepare_test(perturbed)
        labels_pert = sel.select(runner.pool, prepared2)
        np.testing.assert_array_equal(labels_full[:-1], labels_pert[:-1])

    def test_windowed_variant_name(self):
        assert CumulativeMSESelector(window=2).name == "W-Cum.MSE[2]"
        assert CumulativeMSESelector().name == "Cum.MSE"

    def test_windowed_uses_recent_errors_only(self):
        """With window=1 the selector picks last step's winner."""
        series = regime_series(400, block=50, seed=12)
        r = StrategyRunner(LARConfig(window=5))
        r.fit(series[:200])
        prepared = r.prepare_test(series[200:])
        sel = CumulativeMSESelector(window=1, warm_start=False)
        sel.fit(r.pool, r.train_data)
        labels = sel.select(r.pool, prepared)
        err = r.pool.errors(prepared.frames, prepared.targets)
        expected = np.argmin(err[:-1] ** 2, axis=1) + 1
        np.testing.assert_array_equal(labels[1:], expected)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            CumulativeMSESelector(window=0)


class TestLearnedSelection:
    def test_fit_before_select(self, runner, smooth_series):
        prepared = runner.prepare_test(smooth_series[200:])
        with pytest.raises(NotFittedError):
            LearnedSelection().select(runner.pool, prepared)

    def test_training_labels_stored(self, runner):
        sel = LearnedSelection()
        sel.fit(runner.pool, runner.train_data)
        assert sel.training_labels_ is not None
        assert sel.training_labels_.shape == (len(runner.train_data),)
        assert set(np.unique(sel.training_labels_)).issubset({1, 2, 3})

    def test_selects_only_valid_labels(self, runner, smooth_series):
        prepared = runner.prepare_test(smooth_series[200:])
        sel = LearnedSelection()
        sel.fit(runner.pool, runner.train_data)
        labels = sel.select(runner.pool, prepared)
        assert labels.min() >= 1 and labels.max() <= 3

    def test_custom_classifier(self, runner, smooth_series):
        prepared = runner.prepare_test(smooth_series[200:])
        sel = LearnedSelection(GaussianNBClassifier())
        sel.fit(runner.pool, runner.train_data)
        labels = sel.select(runner.pool, prepared)
        assert labels.shape == (len(prepared),)

    def test_invalid_classifier(self):
        with pytest.raises(ConfigurationError):
            LearnedSelection("knn")

    def test_invalid_label_smoothing(self):
        with pytest.raises(ConfigurationError):
            LearnedSelection(label_smoothing=0)

    def test_select_one_matches_batch(self, runner, smooth_series):
        prepared = runner.prepare_test(smooth_series[200:])
        sel = LearnedSelection()
        sel.fit(runner.pool, runner.train_data)
        batch = sel.select(runner.pool, prepared)
        one = sel.select_one(prepared.features[0])
        assert one == batch[0]

    def test_adapts_on_regime_series(self, switching_series):
        """On a regime-switching series the learned selector must use
        more than one pool member."""
        r = StrategyRunner(LARConfig(window=5))
        r.fit(switching_series[:256])
        prepared = r.prepare_test(switching_series[256:])
        sel = LearnedSelection()
        sel.fit(r.pool, r.train_data)
        labels = sel.select(r.pool, prepared)
        assert np.unique(labels).size >= 2
