"""Unit tests for the ablation sweeps (small fold counts to stay quick)."""

import pytest

from repro.experiments.ablation import (
    AblationRow,
    ablation_traces,
    evaluate_lar_variant,
    sweep_classifier,
    sweep_k,
    sweep_pca,
    sweep_pool,
    sweep_window,
)


@pytest.fixture(scope="module")
def traces():
    # Two traces keep each sweep fast while exercising both VM classes.
    picked = ablation_traces()
    by_id = {t.trace_id: t for t in picked}
    return [by_id["VM2/CPU_usedsec"], by_id["VM4/VD2_write"]]


class TestAblationTraces:
    def test_only_valid_traces(self):
        for trace in ablation_traces():
            assert not trace.is_constant

    def test_vm_filter(self):
        traces = ablation_traces(vm_ids=("VM3",))
        assert {t.vm_id for t in traces} == {"VM3"}

    def test_unknown_vm(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ablation_traces(vm_ids=("VM8",))


class TestEvaluateVariant:
    def test_returns_mse_and_accuracy(self, traces):
        mse, acc = evaluate_lar_variant(traces, n_folds=1)
        assert mse >= 0.0
        assert 0.0 <= acc <= 1.0

    def test_overrides_change_outcome(self, traces):
        base = evaluate_lar_variant(traces, n_folds=1)
        other = evaluate_lar_variant(
            traces, config_overrides={"window": 8}, n_folds=1
        )
        assert base != other


@pytest.mark.parametrize(
    "sweep,expected_settings",
    [
        (sweep_window, ["m=3", "m=5", "m=8", "m=12", "m=16"]),
        (sweep_k, ["k=1", "k=3", "k=5", "k=7", "k=9"]),
        (sweep_pca, ["n=1", "n=2", "n=3", "off"]),
        (sweep_classifier, ["3-NN", "naive-bayes", "centroid", "tree", "softmax"]),
        (sweep_pool, ["paper-pool", "extended-pool"]),
    ],
)
def test_sweep_structure(sweep, expected_settings, traces):
    rows = sweep(traces, n_folds=1)
    assert [r.setting for r in rows] == expected_settings
    for row in rows:
        assert isinstance(row, AblationRow)
        assert row.mean_mse >= 0.0
        assert 0.0 <= row.mean_accuracy <= 1.0
