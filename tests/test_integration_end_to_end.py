"""Integration tests across the whole stack.

These exercise the paper's full dataflow (Figure 1): simulate -> monitor
-> RRD -> profile -> prediction DB -> LARPredictor -> QA, plus the
cross-strategy invariants the evaluation rests on.
"""

import numpy as np
import pytest

from repro.core import (
    LARConfig,
    LARPredictor,
    PredictionQualityAssuror,
    StrategyRunner,
    default_strategies,
)
from repro.db.prediction_db import PredictionDatabase, SeriesKey
from repro.experiments.common import config_for_trace
from repro.traces.generate import generate_paper_traces
from repro.traces.profiler import Profiler
from repro.vmm.host import HostServer
from repro.vmm.monitor import PerformanceMonitoringAgent
from repro.vmm.vm import METRIC_DEVICE
from repro.vmm.workloads import build_vm


class TestFigure1Dataflow:
    def test_simulate_profile_predict_audit(self):
        """Monitor a VM, profile a trace, train, predict into the
        prediction DB, and have the QA audit from the DB join."""
        spec = build_vm("VM2", seed=99)
        agent = PerformanceMonitoringAgent(HostServer())
        rrd = agent.collect(spec.vm, 12 * 60, report_interval_minutes=5, seed=1)
        db = PredictionDatabase()
        trace = Profiler(db).extract(rrd, "VM2", "CPU_usedsec")
        assert len(trace) == 144
        key = SeriesKey("VM2", METRIC_DEVICE["CPU_usedsec"], "CPU_usedsec")
        # Train on the first half, stream-predict the second half.
        half = len(trace) // 2
        lar = LARPredictor(LARConfig(window=5)).train(trace.values[:half])
        interval = trace.interval_seconds
        for t in range(half, len(trace)):
            fc = lar.forecast(trace.values[:t])
            db.store_prediction(key, int(trace.timestamps[t]), fc.value)
        audited = db.audit_mse(key, start=int(trace.timestamps[half]))
        assert np.isfinite(audited)
        assert audited >= 0.0

    def test_generation_mirrors_to_prediction_db(self):
        db = PredictionDatabase()
        generate_paper_traces(seed=7, prediction_db=db)
        assert len(db.keys()) == 60
        key = SeriesKey("VM1", "cpu0", "CPU_usedsec")
        t, v = db.fetch_measurements(key)
        assert v.size == 336


class TestCrossStrategyInvariants:
    @pytest.fixture(scope="class")
    def evaluations(self, paper_traces):
        out = []
        for trace_id in ("VM2/CPU_usedsec", "VM4/NIC1_received", "VM1/NIC2_received"):
            vm, metric = trace_id.split("/")
            trace = paper_traces.get(vm, metric)
            cfg = config_for_trace(trace)
            half = len(trace) // 2
            runner = StrategyRunner(cfg).fit(trace.values[:half])
            out.append(
                runner.evaluate_all(
                    trace.values[half:], default_strategies(runner.pool),
                    trace_id=trace_id,
                )
            )
        return out

    def test_oracle_lower_bounds_everything(self, evaluations):
        for ev in evaluations:
            plar = ev["P-LAR"].mse
            for name, result in ev.results.items():
                assert plar <= result.mse + 1e-12, (ev.trace_id, name)

    def test_oracle_accuracy_is_one(self, evaluations):
        for ev in evaluations:
            assert ev["P-LAR"].forecast_accuracy == 1.0

    def test_all_strategies_share_targets(self, evaluations):
        for ev in evaluations:
            targets = [r.targets for r in ev.results.values()]
            for t in targets[1:]:
                np.testing.assert_array_equal(targets[0], t)

    def test_lar_runs_single_predictor_per_step(self, evaluations):
        """The operational claim of §1: LAR costs n_steps executions,
        parallel strategies cost n_steps * pool_size."""
        for ev in evaluations:
            lar = ev["LAR"]
            nws = ev["Cum.MSE"]
            assert lar.predictor_executions(3) == lar.n_steps
            assert nws.predictor_executions(3) == 3 * nws.n_steps

    def test_static_strategies_select_constantly(self, evaluations):
        for ev in evaluations:
            for name in ("STATIC[LAST]", "STATIC[AR]", "STATIC[SW_AVG]"):
                assert np.unique(ev[name].labels).size == 1


class TestReproducibility:
    def test_trace_generation_deterministic(self):
        a = generate_paper_traces(seed=31)
        b = generate_paper_traces(seed=31)
        for trace_a in a:
            trace_b = b.get(trace_a.vm_id, trace_a.metric)
            np.testing.assert_array_equal(trace_a.values, trace_b.values)

    def test_full_pipeline_deterministic(self, paper_traces):
        trace = paper_traces.get("VM2", "NIC1_received")
        cfg = config_for_trace(trace)
        results = []
        for _ in range(2):
            half = len(trace) // 2
            runner = StrategyRunner(cfg).fit(trace.values[:half])
            res = runner.evaluate(trace.values[half:], default_strategies(runner.pool)[0])
            results.append(res)
        np.testing.assert_array_equal(results[0].labels, results[1].labels)
        np.testing.assert_array_equal(results[0].predictions, results[1].predictions)


class TestQARetrainLoop:
    def test_online_loop_survives_regime_change(self):
        """A LARPredictor under QA keeps producing finite forecasts
        through an abrupt workload change (failure-injection style)."""
        rng = np.random.default_rng(55)
        calm = 10.0 + rng.standard_normal(120)
        storm = 80.0 + 20.0 * rng.standard_normal(120)
        stream = np.concatenate([calm, storm])
        lar = LARPredictor(LARConfig(window=5)).train(calm[:100])
        qa = PredictionQualityAssuror(threshold=9.0, audit_interval=4, audit_window=8)
        forecasts = lar.run_with_qa(stream, qa, retrain_window=60)
        values = np.array([f.value for f in forecasts])
        assert np.isfinite(values).all()
        # After retraining, late forecasts live near the new regime.
        assert values[-20:].mean() > 40.0
