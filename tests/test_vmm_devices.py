"""Unit and statistical tests for the VMM device models."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.util.stats import autocorrelation
from repro.vmm.devices import (
    BurstyTrafficModel,
    CompositeModel,
    ConstantModel,
    ExogenousModel,
    MomentumLoadModel,
    PeriodicLoadModel,
    RegimeSwitchingModel,
    SmoothLoadModel,
    SpikeModel,
    SteppedResourceModel,
)


def _gen(model, n=2000, seed=0):
    return model.generate(n, np.random.default_rng(seed))


class TestConstant:
    def test_constant(self):
        x = _gen(ConstantModel(3.0), 100)
        np.testing.assert_array_equal(x, 3.0)

    def test_n_validated(self):
        with pytest.raises(ConfigurationError):
            ConstantModel().generate(0, np.random.default_rng())


class TestSmoothLoad:
    def test_moments(self):
        x = _gen(SmoothLoadModel(50.0, 5.0, phi=0.9, lo=0.0), n=40000)
        assert x.mean() == pytest.approx(50.0, abs=1.0)
        assert x.std() == pytest.approx(5.0, abs=1.0)

    def test_autocorrelation_matches_phi(self):
        x = _gen(SmoothLoadModel(0.0, 1.0, phi=0.8, lo=-100.0), n=40000)
        assert autocorrelation(x, 1)[1] == pytest.approx(0.8, abs=0.05)

    def test_negative_phi_oscillates(self):
        x = _gen(SmoothLoadModel(10.0, 1.0, phi=-0.6, lo=-100.0), n=40000)
        assert autocorrelation(x, 1)[1] == pytest.approx(-0.6, abs=0.05)

    def test_clamping(self):
        x = _gen(SmoothLoadModel(1.0, 5.0, phi=0.5, lo=0.0, hi=2.0))
        assert x.min() >= 0.0 and x.max() <= 2.0

    def test_phi_validated(self):
        with pytest.raises(ConfigurationError):
            SmoothLoadModel(0.0, 1.0, phi=1.0)


class TestMomentum:
    def test_velocity_persistence(self):
        """Momentum makes successive differences positively correlated —
        the property that lets AR beat LAST."""
        x = _gen(MomentumLoadModel(50.0, 10.0, momentum=0.8, reversion=0.99,
                                   lo=-1e9), n=40000)
        diffs = np.diff(x)
        assert autocorrelation(diffs, 1)[1] > 0.5

    def test_std_matches_request(self):
        x = _gen(MomentumLoadModel(0.0, 3.0, lo=-1e9), n=5000)
        assert x.std() == pytest.approx(3.0, rel=0.05)

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            MomentumLoadModel(0.0, 1.0, momentum=1.0)
        with pytest.raises(ConfigurationError):
            MomentumLoadModel(0.0, 1.0, reversion=-0.1)
        with pytest.raises(ConfigurationError):
            MomentumLoadModel(0.0, -1.0)


class TestPeriodic:
    def test_period_visible(self):
        m = PeriodicLoadModel(base=10.0, amplitude=5.0, period=100, noise_std=0.1)
        x = _gen(m, n=1000)
        # Peak of the autocorrelation near the period.
        acf = autocorrelation(x - x.mean(), 120)
        assert acf[100] > 0.7

    def test_amplitude_range(self):
        m = PeriodicLoadModel(base=10.0, amplitude=5.0, period=100, noise_std=0.0)
        x = _gen(m, n=400)
        assert x.max() == pytest.approx(15.0, abs=0.2)
        assert x.min() == pytest.approx(5.0, abs=0.2)

    def test_period_validated(self):
        with pytest.raises(ConfigurationError):
            PeriodicLoadModel(1.0, 1.0, period=1)


class TestBursty:
    def test_two_state_structure(self):
        m = BurstyTrafficModel(
            mean_on=50, mean_off=50, on_level=100.0, on_sigma=0.3,
            off_level=1.0, noise_std=0.0, phi=0.7,
        )
        x = _gen(m, n=20000)
        quiet = x == 1.0
        # Both states occupy a substantial fraction.
        assert 0.2 < quiet.mean() < 0.8
        assert x[~quiet].mean() > 20.0

    def test_exact_quiet_when_noise_zero(self):
        m = BurstyTrafficModel(
            mean_on=10, mean_off=10, on_level=100.0, off_level=2.0,
            noise_std=0.0,
        )
        x = _gen(m, n=5000)
        quiet = np.isclose(x, 2.0)
        assert quiet.any()

    def test_sojourn_lengths_near_mean(self):
        m = BurstyTrafficModel(
            mean_on=100, mean_off=100, on_level=10.0, off_level=0.0,
            noise_std=0.0,
        )
        x = _gen(m, n=50000, seed=3)
        on = x > 1e-9
        changes = np.flatnonzero(np.diff(on.astype(int)))
        lengths = np.diff(changes)
        assert lengths.mean() == pytest.approx(100, rel=0.4)

    def test_momentum_log_path(self):
        m = BurstyTrafficModel(
            mean_on=10_000, mean_off=1, on_level=100.0, on_sigma=0.4,
            off_level=0.0, noise_std=0.0, phi=0.9, momentum=0.8,
        )
        x = _gen(m, n=20000, seed=4)
        on = x > 1e-9
        log_diffs = np.diff(np.log(np.maximum(x[on], 1e-12)))
        assert autocorrelation(log_diffs, 1)[1] > 0.3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstyTrafficModel(mean_on=0.5)
        with pytest.raises(ConfigurationError):
            BurstyTrafficModel(on_level=0.0)
        with pytest.raises(ConfigurationError):
            BurstyTrafficModel(momentum=1.5)


class TestStepped:
    def test_piecewise_constant_with_recurring_levels(self):
        m = SteppedResourceModel(512.0, mean_hold=50, step_std=64.0, hi=1024.0)
        x = _gen(m, n=20000)
        levels = np.unique(x)
        # Quantization keeps the level set small.
        assert levels.size < 40
        # Large flat stretches exist.
        flat = np.diff(x) == 0.0
        assert flat.mean() > 0.9

    def test_levels_on_step_ladder(self):
        m = SteppedResourceModel(512.0, mean_hold=20, step_std=64.0, hi=1024.0)
        x = _gen(m, n=5000)
        offsets = (x - 512.0) / 64.0
        np.testing.assert_allclose(offsets, np.round(offsets), atol=1e-9)

    def test_bounds(self):
        m = SteppedResourceModel(100.0, mean_hold=5, step_std=200.0, lo=0.0, hi=300.0)
        x = _gen(m, n=5000)
        assert x.min() >= 0.0 and x.max() <= 300.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SteppedResourceModel(1.0, mean_hold=0.5)
        with pytest.raises(ConfigurationError):
            SteppedResourceModel(1.0, reversion=2.0)


class TestSpikes:
    def test_spikes_decay(self):
        m = SpikeModel(background=0.0, spike_prob=0.01, spike_mean=100.0,
                       decay=0.5, noise_std=0.0)
        x = _gen(m, n=20000, seed=5)
        assert x.max() > 20.0
        assert np.median(x) < 5.0

    def test_spike_rate(self):
        m = SpikeModel(background=0.0, spike_prob=0.05, spike_mean=100.0,
                       decay=0.0, noise_std=0.0)
        x = _gen(m, n=50000, seed=6)
        assert (x > 1.0).mean() == pytest.approx(0.05, abs=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SpikeModel(spike_prob=1.5)
        with pytest.raises(ConfigurationError):
            SpikeModel(decay=1.0)


class TestComposite:
    def test_sum_of_components(self):
        m = CompositeModel([ConstantModel(2.0), ConstantModel(3.0)])
        np.testing.assert_array_equal(_gen(m, 10), 5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CompositeModel([])
        with pytest.raises(ConfigurationError):
            CompositeModel([ConstantModel(), "not a model"])


class TestRegimeSwitching:
    def test_alternates_regimes(self):
        m = RegimeSwitchingModel(
            [ConstantModel(0.0), ConstantModel(10.0)], mean_sojourn=50
        )
        x = _gen(m, n=5000)
        assert set(np.unique(x)) == {0.0, 10.0}
        switches = np.count_nonzero(np.diff(x))
        assert 5000 / 50 * 0.3 < switches < 5000 / 50 * 3

    def test_sojourn_jitter_bounds(self):
        m = RegimeSwitchingModel(
            [ConstantModel(0.0), ConstantModel(1.0)],
            mean_sojourn=100,
            sojourn_jitter=0.2,
        )
        x = _gen(m, n=50000, seed=7)
        changes = np.flatnonzero(np.diff(x))
        lengths = np.diff(changes)
        assert lengths.min() >= 100 * 0.8 - 1
        assert lengths.max() <= 100 * 1.2 + 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RegimeSwitchingModel([ConstantModel()], mean_sojourn=10)
        with pytest.raises(ConfigurationError):
            RegimeSwitchingModel(
                [ConstantModel(), ConstantModel()], mean_sojourn=10,
                sojourn_jitter=2.0,
            )


class TestExogenous:
    def test_passthrough(self):
        demand = np.arange(10.0)
        m = ExogenousModel(demand, scale=2.0)
        np.testing.assert_array_equal(_gen(m, 10), demand * 2.0)

    def test_length_guard(self):
        m = ExogenousModel(np.arange(5.0))
        with pytest.raises(ConfigurationError):
            _gen(m, 10)

    def test_noise_and_clamp(self):
        m = ExogenousModel(np.zeros(100), noise_std=1.0, lo=0.0)
        x = _gen(m, 100)
        assert x.min() >= 0.0
