"""Asynchronous retraining: bit-parity with sync, staleness, failure.

The contract under test: a model trained asynchronously on its
submission-tick snapshot and integrated after replaying the in-flight
ticks is **bit-identical** to one trained synchronously at the
submission tick and served since. Full sync/async fleets diverge in
their *QA trajectories* (async audits the old model while the burst
flies), so the parity pin works on clones: one saved fleet restored
twice — once per mode — retrained once, then driven through the same
ticks.

Bursts run through an inline executor (futures resolved at submission,
drained at the normal boundaries) so every test is deterministic and
pool-free; one slow test exercises the real process pool end to end.
"""

from __future__ import annotations

import dataclasses
import sys
from concurrent.futures import Future
from pathlib import Path
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Telemetry
from repro.obs.flight import AnomalyTrigger
from repro.serving import FleetConfig, PredictionFleet
from repro.serving import async_trainer

# The parity assertions reuse the trainer suite's field-by-field model
# comparator; tests/ is not a package, so make the sibling importable.
sys.path.insert(0, str(Path(__file__).parent))
from test_serving_trainer import _assert_same_model  # noqa: E402

# ---------------------------------------------------------------------------
# harness


def _config(**overrides):
    """Small, fast fleet that still exercises retrains and relabels."""
    defaults = dict(
        min_train=40,
        label_smoothing=5,
        max_memory=64,
        history_limit=128,
        qa_threshold=1.2,
        audit_window=16,
        audit_interval=4,
        retrain_window=80,
        auto_retrain=False,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _values(names, t, rng, *, shift=0.0):
    return {
        n: 10.0
        + 3.0 * np.sin(t / 7.0 + i)
        + (shift if i % 2 == 0 else 0.0)
        + rng.normal(0.0, 0.4)
        for i, n in enumerate(names)
    }


def _drive(fleet, names, ticks, rng, *, shift=0.0, start=0):
    for t in range(start, start + ticks):
        fleet.forecast_all()
        fleet.ingest(_values(names, t, rng, shift=shift))


@contextmanager
def _inline_pool(monkeypatch=None):
    """Run bursts inline: futures resolve at submission, drain later.

    Keeps the submit → serve-stale → drain → replay sequencing (drain
    only happens at the fleet's boundaries) while removing the process
    pool, so tests are deterministic and cheap.
    """
    calls = []

    def inline_submit(fn, /, *args, workers=None):
        calls.append(fn)
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # pragma: no cover - surfaced in drain
            future.set_exception(exc)
        return future

    original = async_trainer.pool_submit
    async_trainer.pool_submit = inline_submit
    try:
        yield calls
    finally:
        async_trainer.pool_submit = original


@contextmanager
def _broken_pool():
    """Every burst future raises BrokenProcessPool at drain time."""

    def broken_submit(fn, /, *args, workers=None):
        future: Future = Future()
        future.set_exception(BrokenProcessPool("worker died"))
        return future

    original = async_trainer.pool_submit
    async_trainer.pool_submit = broken_submit
    try:
        yield
    finally:
        async_trainer.pool_submit = original


def _due_fleet(tmp_path, *, seed=42, shift=20.0, n=6, telemetry=None,
               **overrides):
    """Build a fleet, drive it into a drift storm, persist the moment
    retrains are due, and return (directory, due names, rng state)."""
    names = [f"s{i}" for i in range(n)]
    fleet = PredictionFleet(_config(**overrides), streams=names)
    rng = np.random.default_rng(seed)
    _drive(fleet, names, 60, rng)
    fleet.run_pending_retrains()  # initial trains
    for t in range(60, 120):
        fleet.forecast_all()
        fleet.ingest(_values(names, t, rng, shift=shift if t > 90 else 0.0))
    # Weak storms (hypothesis picks the magnitude) may need more ticks
    # before QA breaches; keep the shift on until something is due.
    t = 120
    while not fleet.pending_retrains and t < 280:
        fleet.forecast_all()
        fleet.ingest(_values(names, t, rng, shift=shift))
        t += 1
    assert fleet.pending_retrains, "drift storm failed to mark retrains due"
    directory = tmp_path / "fleet"
    fleet.save(directory)
    return directory, names, fleet.pending_retrains


def _load_async(directory, *, telemetry=None, **config_overrides):
    fleet = PredictionFleet.load(directory, telemetry=telemetry)
    fleet.config = dataclasses.replace(
        fleet.config, retrain_mode="async", **config_overrides
    )
    return fleet


def _events(fleet, kind):
    snapshot = fleet.telemetry.events.snapshot()
    return [e for e in snapshot["events"] if e["kind"] == kind]


# ---------------------------------------------------------------------------
# the parity pin


class TestAsyncSyncBitParity:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        shift=st.floats(min_value=10.0, max_value=40.0),
        inflight_ticks=st.integers(min_value=0, max_value=24),
    )
    @settings(max_examples=8, deadline=None)
    def test_integrated_model_matches_sync_retrain_plus_replay(
        self, tmp_path_factory, seed, shift, inflight_ticks
    ):
        """The tentpole contract, across hypothesis-chosen drift storms:
        async = train(snapshot at T) + observe_many(in-flight ticks)
        must equal sync = train at T + serve since, bit for bit."""
        tmp_path = tmp_path_factory.mktemp("parity")
        directory, names, due = _due_fleet(
            tmp_path, seed=seed, shift=shift
        )
        sync = PredictionFleet.load(directory)
        with _inline_pool():
            async_fleet = _load_async(directory)
            sync.run_pending_retrains()  # swaps now
            async_fleet.run_pending_retrains()  # submits, returns
            assert async_fleet._async.inflight == len(due)
            rng = np.random.default_rng(seed + 1)
            for t in range(120, 120 + inflight_ticks):
                vals = _values(names, t, rng, shift=shift)
                sync.forecast_all()
                sync.ingest(vals)
                async_fleet.forecast_all()
                async_fleet.ingest(dict(vals))
            integrated = async_fleet.drain_retrains(wait=True)
        assert sorted(integrated) == sorted(due)
        assert async_fleet._async.inflight == 0
        for name in due:
            _assert_same_model(
                async_fleet._streams[name].predictor,
                sync._streams[name].predictor,
                name=name,
            )
        fa = sync.forecast_all()
        fb = async_fleet.forecast_all()
        for name in names:
            assert fa[name].value == fb[name].value, name
            assert fa[name].predictor_label == fb[name].predictor_label, name

    def test_unbatched_path_parity(self, tmp_path):
        """Per-stream (non-stacked) bursts carry the same bits."""
        directory, names, due = _due_fleet(tmp_path)
        sync = PredictionFleet.load(directory)
        with _inline_pool():
            async_fleet = _load_async(directory)
            sync.run_pending_retrains(batched=False)
            async_fleet.run_pending_retrains(batched=False)
            rng = np.random.default_rng(99)
            for t in range(120, 130):
                vals = _values(names, t, rng, shift=20.0)
                sync.forecast_all()
                sync.ingest(vals)
                async_fleet.forecast_all()
                async_fleet.ingest(dict(vals))
            integrated = async_fleet.drain_retrains(wait=True)
        assert sorted(integrated) == sorted(due)
        for name in due:
            _assert_same_model(
                async_fleet._streams[name].predictor,
                sync._streams[name].predictor,
                name=name,
            )


# ---------------------------------------------------------------------------
# staleness guards


class TestStalenessGuards:
    def test_mid_flight_removal_drops_result(self, tmp_path):
        directory, names, due = _due_fleet(tmp_path)
        with _inline_pool():
            fleet = _load_async(directory, telemetry=Telemetry())
            fleet.run_pending_retrains()
            removed = due[0]
            fleet.remove_stream(removed)
            integrated = fleet.drain_retrains(wait=True)
        assert removed not in integrated
        assert sorted(integrated) == sorted(due[1:])
        assert removed not in fleet._streams
        dropped = _events(fleet, "retrain_dropped")
        assert [e["stream"] for e in dropped] == [removed]
        assert dropped[0]["data"]["reason"] == "removed"

    def test_remove_and_re_add_drops_stale_epoch(self, tmp_path):
        """A same-named stream added after removal is a new generation;
        the old burst's result must never land on it."""
        directory, names, due = _due_fleet(tmp_path)
        with _inline_pool():
            fleet = _load_async(directory, telemetry=Telemetry())
            fleet.run_pending_retrains()
            victim = due[0]
            fleet.remove_stream(victim)
            fleet.add_stream(victim)
            integrated = fleet.drain_retrains(wait=True)
        assert victim not in integrated
        dropped = _events(fleet, "retrain_dropped")
        assert [e["stream"] for e in dropped] == [victim]
        assert dropped[0]["data"]["reason"] == "stale"
        # The re-added stream is untouched: fresh warm-up, no model.
        assert fleet._streams[victim].predictor is None

    def test_inflight_stream_never_rescheduled(self, tmp_path):
        directory, names, due = _due_fleet(tmp_path)
        with _inline_pool():
            fleet = _load_async(directory)
            fleet.run_pending_retrains()
            pipe = fleet._async
            for name in due:
                assert pipe.blocks(name, fleet._streams[name].epoch)
            # In-flight streams keep serving and cannot re-enter the due
            # queue, however hard they keep breaching.
            rng = np.random.default_rng(7)
            for t in range(120, 140):
                fleet.forecast_all()
                fleet.ingest(_values(names, t, rng, shift=25.0))
                assert not any(n in fleet.pending_retrains for n in due)
            fleet.drain_retrains(wait=True)
        assert all(not pipe.blocks(n, fleet._streams[n].epoch) for n in due)


# ---------------------------------------------------------------------------
# budgets, caps, and the due-counter fast path


class TestBudgetsAndDueCounter:
    def test_budget_defers_in_async_mode(self, tmp_path):
        directory, names, due = _due_fleet(tmp_path)
        assert len(due) >= 2
        with _inline_pool():
            fleet = _load_async(directory, telemetry=Telemetry())
            fleet.run_pending_retrains(budget=1)
            assert fleet._async.inflight == 1
            # Deferred streams stay due, narrated as deferrals.
            assert len(fleet.pending_retrains) == len(due) - 1
            deferred = _events(fleet, "retrain_deferred")
            assert sorted(e["stream"] for e in deferred) == sorted(due[1:])
            # Next rounds pick them up in due order; every round defers
            # whatever its budget passed over, so the aggregate is the
            # triangular sum, not len(due) - 1.
            while fleet.pending_retrains:
                fleet.run_pending_retrains(budget=1)
                fleet.drain_retrains(wait=True)
            fleet.drain_retrains(wait=True)
        assert fleet.metrics().deferred_retrains == sum(range(len(due)))
        for name in due:
            assert fleet._streams[name].retrain_count >= 1

    def test_max_inflight_cap_holds_overflow_without_deferring(
        self, tmp_path
    ):
        directory, names, due = _due_fleet(tmp_path)
        assert len(due) >= 2
        with _inline_pool():
            fleet = _load_async(
                directory, telemetry=Telemetry(), max_inflight_retrains=1
            )
            fleet.run_pending_retrains()
            assert fleet._async.inflight == 1
            # Over-cap streams simply stay due — no deferral events.
            assert len(fleet.pending_retrains) == len(due) - 1
            assert not _events(fleet, "retrain_deferred")
            rounds = 0
            while fleet.pending_retrains and rounds < 10:
                fleet.run_pending_retrains()  # drains, then refills the slot
                rounds += 1
            fleet.drain_retrains(wait=True)
        submitted = _events(fleet, "retrain_submitted")
        assert sorted(e["stream"] for e in submitted) == sorted(due)

    def test_due_counter_tracks_scan(self, tmp_path):
        """The O(1) fast-path counter never drifts from the O(S) scan."""
        directory, names, due = _due_fleet(tmp_path)
        with _inline_pool():
            fleet = _load_async(directory)
            assert fleet._due_count == len(fleet.pending_retrains) == len(due)
            fleet.run_pending_retrains()
            assert fleet._due_count == len(fleet.pending_retrains) == 0
            rng = np.random.default_rng(3)
            for t in range(120, 160):
                fleet.forecast_all()
                fleet.ingest(_values(names, t, rng, shift=25.0))
                assert fleet._due_count == len(fleet.pending_retrains)
            fleet.drain_retrains(wait=True)
            for t in range(160, 200):
                fleet.forecast_all()
                fleet.ingest(_values(names, t, rng, shift=25.0))
                assert fleet._due_count == len(fleet.pending_retrains)

    def test_empty_fleet_fast_path(self):
        fleet = PredictionFleet(_config())
        assert fleet.pending_retrains == ()
        assert fleet.run_pending_retrains() == ()


# ---------------------------------------------------------------------------
# integration cap: bounded tick-boundary drain


class TestIntegrationCap:
    def test_tick_drain_integrates_at_most_cap_bursts(self, tmp_path):
        directory, names, due = _due_fleet(tmp_path)
        assert len(due) >= 2
        with _inline_pool():
            fleet = _load_async(directory, max_integrations_per_tick=1)
            pipe = fleet._get_async()
            # Two separate submissions land two resolved bursts.
            for name in due[:2]:
                pipe.submit((name,), fleet._partition_due((name,)))
            assert pipe.inflight == 2
            first = fleet.drain_retrains()
            assert len(first) == 1
            assert pipe.inflight == 1
            second = fleet.drain_retrains()
            assert len(second) == 1
            assert pipe.inflight == 0
            assert sorted((*first, *second)) == sorted(due[:2])

    def test_flush_ignores_the_cap(self, tmp_path):
        directory, names, due = _due_fleet(tmp_path)
        assert len(due) >= 2
        with _inline_pool():
            fleet = _load_async(directory, max_integrations_per_tick=1)
            pipe = fleet._get_async()
            for name in due[:2]:
                pipe.submit((name,), fleet._partition_due((name,)))
            assert pipe.inflight == 2
            flushed = fleet.drain_retrains(wait=True)
            assert sorted(flushed) == sorted(due[:2])
            assert pipe.inflight == 0

    def test_cap_validation_and_round_trip(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            _config(max_integrations_per_tick=0)
        fleet = PredictionFleet(
            _config(retrain_mode="async", max_integrations_per_tick=2)
        )
        fleet.save(tmp_path / "cap")
        restored = PredictionFleet.load(tmp_path / "cap")
        assert restored.config.max_integrations_per_tick == 2


# ---------------------------------------------------------------------------
# persistence: flush-on-save


class TestPersistenceFlush:
    def test_save_flushes_inflight_bursts(self, tmp_path):
        directory, names, due = _due_fleet(tmp_path)
        with _inline_pool():
            fleet = _load_async(directory)
            fleet.run_pending_retrains()
            rng = np.random.default_rng(11)
            _drive(fleet, names, 8, rng, shift=20.0, start=120)
            assert fleet._async.inflight == len(due)
            flushed_dir = tmp_path / "flushed"
            fleet.save(flushed_dir)  # drains wait=True first
            assert fleet._async.inflight == 0
        restored = PredictionFleet.load(flushed_dir)
        # The restored fleet carries the integrated models and forecasts
        # exactly as the flushed original does.
        assert restored.config.retrain_mode == "async"
        fa = fleet.forecast_all()
        fb = restored.forecast_all()
        for name in names:
            assert fa[name].value == fb[name].value, name
        # Restored predictors drop the training-time snapshot, so the
        # comparison is the persisted surface: history and forecasts.
        for name in due:
            np.testing.assert_array_equal(
                restored._streams[name].predictor.recent_history(),
                fleet._streams[name].predictor.recent_history(),
                err_msg=name,
            )
        assert restored._due_count == len(restored.pending_retrains)

    def test_config_round_trip(self, tmp_path):
        fleet = PredictionFleet(
            _config(retrain_mode="async", max_inflight_retrains=4)
        )
        fleet.save(tmp_path / "cfg")
        restored = PredictionFleet.load(tmp_path / "cfg")
        assert restored.config.retrain_mode == "async"
        assert restored.config.max_inflight_retrains == 4


# ---------------------------------------------------------------------------
# broken pool: graceful degradation


class TestBrokenPoolDegradation:
    def test_requeues_and_retrains_synchronously(self, tmp_path):
        directory, names, due = _due_fleet(tmp_path)
        sync = PredictionFleet.load(directory)
        sync.run_pending_retrains()
        hook_errors = []
        from repro.parallel.pool_exec import (
            register_pool_failure_hook,
            unregister_pool_failure_hook,
        )

        register_pool_failure_hook(hook_errors.append)
        try:
            with _broken_pool():
                fleet = _load_async(directory, telemetry=Telemetry())
                fleet.run_pending_retrains()
                assert fleet._async.inflight == len(due)
                integrated = fleet.drain_retrains(wait=True)
        finally:
            unregister_pool_failure_hook(hook_errors.append)
        # The lost burst fell back to an immediate synchronous round...
        assert sorted(integrated) == sorted(due)
        assert fleet._async.inflight == 0
        assert not fleet.pending_retrains
        failures = _events(fleet, "pool_failure")
        assert len(failures) == 1
        assert failures[0]["data"]["streams"] == len(due)
        # ...the pool-failure hooks fired...
        assert len(hook_errors) == 1
        assert isinstance(hook_errors[0], BrokenProcessPool)
        # ...and the models are the ones sync mode would have produced
        # (no ticks flew between submission and the broken drain).
        for name in due:
            _assert_same_model(
                fleet._streams[name].predictor,
                sync._streams[name].predictor,
                name=name,
            )

    def test_anomaly_trigger_dumps_on_broken_pool(self, tmp_path):
        directory, names, due = _due_fleet(tmp_path)
        tel = Telemetry(flight=True)
        with _broken_pool():
            fleet = _load_async(directory, telemetry=tel)
            with AnomalyTrigger(tmp_path / "dumps", tel) as trigger:
                fleet.run_pending_retrains()
                fleet.drain_retrains(wait=True)
                assert len(trigger.dumps) == 1
                assert "broken_pool" in trigger.dumps[0].name

    def test_removed_stream_not_requeued_after_failure(self, tmp_path):
        directory, names, due = _due_fleet(tmp_path)
        with _broken_pool():
            fleet = _load_async(directory, telemetry=Telemetry())
            fleet.run_pending_retrains()
            fleet.remove_stream(due[0])
            integrated = fleet.drain_retrains(wait=True)
        assert sorted(integrated) == sorted(due[1:])
        dropped = _events(fleet, "retrain_dropped")
        assert [e["stream"] for e in dropped] == [due[0]]
        assert dropped[0]["data"]["reason"] == "removed"


# ---------------------------------------------------------------------------
# events and the inflight gauge


class TestObservability:
    def test_lifecycle_events_and_gauge(self, tmp_path):
        directory, names, due = _due_fleet(tmp_path)
        with _inline_pool():
            fleet = _load_async(directory, telemetry=Telemetry())
            fleet.run_pending_retrains()
            submitted = _events(fleet, "retrain_submitted")
            assert sorted(e["stream"] for e in submitted) == sorted(due)
            assert fleet.metrics().inflight_retrains == len(due)
            rng = np.random.default_rng(5)
            _drive(fleet, names, 6, rng, shift=20.0, start=120)
            fleet.drain_retrains(wait=True)
        integrated = _events(fleet, "retrain_integrated")
        assert sorted(e["stream"] for e in integrated) == sorted(due)
        for event in integrated:
            assert event["data"]["replayed"] == 6
            assert event["data"]["retrain"] is True
        assert fleet.metrics().inflight_retrains == 0

    def test_sync_mode_never_builds_pipeline(self, tmp_path):
        directory, names, due = _due_fleet(tmp_path)
        fleet = PredictionFleet.load(directory)
        fleet.run_pending_retrains()
        assert fleet._async is None
        assert fleet.drain_retrains(wait=True) == ()
        assert fleet.metrics().inflight_retrains == 0


# ---------------------------------------------------------------------------
# the real pool, end to end


@pytest.mark.slow
class TestRealPool:
    def test_async_fleet_serves_and_integrates(self, tmp_path):
        import os

        if (os.cpu_count() or 1) < 2:
            pytest.skip("needs >= 2 cores for a worker pool")
        directory, names, due = _due_fleet(tmp_path)
        fleet = _load_async(
            directory, telemetry=Telemetry(), auto_retrain=True
        )
        rng = np.random.default_rng(17)
        for t in range(120, 420):
            fleet.forecast_all()
            fleet.ingest(_values(names, t, rng, shift=20.0))
            if _events(fleet, "retrain_integrated"):
                break
        fleet.drain_retrains(wait=True)
        integrated = _events(fleet, "retrain_integrated")
        assert integrated, "no async burst landed within 300 ticks"
        assert fleet._async.inflight == 0
