"""Unit tests for the deterministic batched top-k selection."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.learn.topk import lexicographic_topk


def _reference(values, k, tie_keys=None):
    """Per-row lexsort reference: exact top-k under (value, tie) order."""
    v = np.asarray(values, dtype=np.float64)
    n_rows, n_cols = v.shape
    tie = (
        np.broadcast_to(np.arange(n_cols), v.shape)
        if tie_keys is None
        else np.asarray(tie_keys)
    )
    idx = np.empty((n_rows, k), dtype=np.int64)
    for r in range(n_rows):
        idx[r] = np.lexsort((tie[r], v[r]))[:k]
    return np.take_along_axis(v, idx, axis=1), idx


class TestLexicographicTopk:
    def test_simple_rows(self):
        v = np.array([[3.0, 1.0, 2.0], [0.5, 0.6, 0.4]])
        top_v, idx = lexicographic_topk(v, 2)
        np.testing.assert_array_equal(idx, [[1, 2], [2, 0]])
        np.testing.assert_array_equal(top_v, [[1.0, 2.0], [0.4, 0.5]])

    def test_matches_reference_on_random_input(self):
        rng = np.random.default_rng(0)
        v = rng.standard_normal((40, 300))
        for k in (1, 3, 7):
            top_v, idx = lexicographic_topk(v, k)
            ref_v, ref_idx = _reference(v, k)
            np.testing.assert_array_equal(idx, ref_idx)
            np.testing.assert_array_equal(top_v, ref_v)

    def test_boundary_ties_resolve_by_index(self):
        """Ties straddling the k-th position must pick the lowest index."""
        rng = np.random.default_rng(1)
        # Heavily quantized values force many exact duplicates.
        v = np.round(rng.standard_normal((60, 120)) * 2.0) / 2.0
        for k in (3, 5):
            _, idx = lexicographic_topk(v, k)
            _, ref_idx = _reference(v, k)
            np.testing.assert_array_equal(idx, ref_idx)

    def test_all_equal_row(self):
        v = np.full((2, 10), 7.0)
        _, idx = lexicographic_topk(v, 3)
        np.testing.assert_array_equal(idx, [[0, 1, 2], [0, 1, 2]])

    def test_custom_tie_keys(self):
        # Same values everywhere: ordering must follow the tie keys.
        v = np.zeros((1, 5))
        tie = np.array([[40, 10, 30, 20, 50]])
        _, idx = lexicographic_topk(v, 3, tie_keys=tie)
        np.testing.assert_array_equal(idx, [[1, 3, 2]])

    def test_infinite_padding_ignored(self):
        """+inf columns act as dead padding and never reach the top-k."""
        rng = np.random.default_rng(2)
        v = rng.standard_normal((20, 64))
        padded = np.full((20, 256), np.inf)
        cols = rng.permutation(256)[:64]
        padded[:, np.sort(cols)] = v
        top_p, idx_p = lexicographic_topk(padded, 3)
        assert np.isfinite(top_p).all()
        top_v, _ = lexicographic_topk(v, 3)
        np.testing.assert_array_equal(top_p, top_v)

    def test_k_larger_than_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            lexicographic_topk(np.zeros((2, 3)), 4)
