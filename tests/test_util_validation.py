"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.util.validation import (
    as_matrix,
    as_series,
    check_finite,
    check_fraction,
    check_odd,
    check_positive_int,
)


class TestAsSeries:
    def test_list_coerced_to_float64(self):
        out = as_series([1, 2, 3])
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_rejects_2d(self):
        with pytest.raises(DataError, match="1-D"):
            as_series(np.zeros((2, 2)))

    def test_rejects_empty_by_default(self):
        with pytest.raises(DataError, match="empty"):
            as_series([])

    def test_allow_empty(self):
        assert as_series([], allow_empty=True).size == 0

    def test_min_length_enforced(self):
        with pytest.raises(DataError, match="at least 5"):
            as_series([1.0, 2.0], min_length=5)

    def test_rejects_nan(self):
        with pytest.raises(DataError, match="non-finite"):
            as_series([1.0, np.nan, 2.0])

    def test_rejects_inf(self):
        with pytest.raises(DataError, match="non-finite"):
            as_series([1.0, np.inf])

    def test_name_in_message(self):
        with pytest.raises(DataError, match="myseries"):
            as_series([], name="myseries")


class TestAsMatrix:
    def test_accepts_2d(self):
        out = as_matrix([[1.0, 2.0], [3.0, 4.0]])
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(DataError, match="2-D"):
            as_matrix([1.0, 2.0])

    def test_min_rows(self):
        with pytest.raises(DataError, match="at least 3"):
            as_matrix(np.zeros((2, 4)), min_rows=3)

    def test_rejects_nan(self):
        with pytest.raises(DataError, match="non-finite"):
            as_matrix([[np.nan, 1.0]])


class TestCheckFinite:
    def test_counts_bad_values(self):
        with pytest.raises(DataError, match="2 non-finite"):
            check_finite(np.array([np.nan, 1.0, np.inf]))

    def test_passes_clean_array(self):
        check_finite(np.arange(5.0))  # no raise


class TestScalarChecks:
    def test_positive_int_ok(self):
        assert check_positive_int(3, name="k") == 3

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "3", True, None])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive_int(bad, name="k")

    def test_odd_ok(self):
        assert check_odd(5, name="k") == 5

    def test_odd_rejects_even(self):
        with pytest.raises(ConfigurationError, match="odd"):
            check_odd(4, name="k")

    def test_fraction_bounds(self):
        assert check_fraction(1.0, name="f") == 1.0
        assert check_fraction(0.5, name="f") == 0.5
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, name="f")
        with pytest.raises(ConfigurationError):
            check_fraction(1.5, name="f")
        with pytest.raises(ConfigurationError):
            check_fraction("x", name="f")
