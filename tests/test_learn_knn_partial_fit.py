"""Unit tests for the k-NN incremental-learning path."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.learn.knn import KNNClassifier


def _base():
    X = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
    y = np.array([1, 1, 2, 2])
    return KNNClassifier(k=1).fit(X, y)


class TestPartialFit:
    def test_appended_points_are_found(self):
        clf = _base()
        clf.partial_fit([[10.0, 10.0]], [3])
        assert clf.predict_one([10.1, 10.0]) == 3
        assert clf.n_samples_ == 5

    def test_equivalent_to_full_fit(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((60, 2))
        y = rng.integers(1, 4, 60)
        incremental = KNNClassifier(k=3).fit(X[:30], y[:30])
        for i in range(30, 60):
            incremental.partial_fit(X[i], y[i])
        full = KNNClassifier(k=3).fit(X, y)
        queries = rng.standard_normal((40, 2))
        np.testing.assert_array_equal(
            incremental.predict(queries), full.predict(queries)
        )

    def test_new_class_registered(self):
        clf = _base()
        clf.partial_fit([[20.0, 20.0]], [9])
        assert 9 in clf.classes_

    def test_requires_initial_fit(self):
        with pytest.raises(NotFittedError):
            KNNClassifier(k=1).partial_fit([[0.0, 0.0]], [1])

    def test_feature_mismatch(self):
        clf = _base()
        with pytest.raises(ConfigurationError):
            clf.partial_fit([[1.0, 2.0, 3.0]], [1])

    def test_label_count_mismatch(self):
        clf = _base()
        with pytest.raises(ConfigurationError):
            clf.partial_fit([[1.0, 2.0]], [1, 2])

    def test_non_integer_labels(self):
        clf = _base()
        with pytest.raises(ConfigurationError):
            clf.partial_fit([[1.0, 2.0]], [1.5])

    def test_tree_backend_rebuilt_lazily(self):
        """partial_fit invalidates the tree; the next query rebuilds it
        (the docstring's promise — appends must not pay a rebuild each)."""
        rng = np.random.default_rng(1)
        X = rng.standard_normal((3000, 2))
        y = (X[:, 0] > 0).astype(int)
        clf = KNNClassifier(k=3, algorithm="kd_tree").fit(X, y)
        assert clf._tree is None  # lazy: fit does not pay for an index
        clf.predict_one([0.0, 0.0])
        assert clf._tree is not None  # built on the query path
        clf.partial_fit([[0.0, 0.0]], [1])
        assert clf._tree is None  # invalidated, not rebuilt inline
        clf.predict_one([0.0, 0.0])
        assert clf._tree is not None  # rebuilt on the query path
        assert clf._tree.n_points == 3001

    def test_appends_amortized_no_full_copy_per_step(self):
        """The memory buffer must not be reallocated on every append."""
        clf = _base()
        buffers = set()
        for i in range(200):
            clf.partial_fit([[float(i), 0.0]], [1])
            buffers.add(id(clf._Xbuf))
        # Capacity doubling: ~log2(200) distinct buffers, not ~200.
        assert len(buffers) <= 8
        assert clf.n_samples_ == 204


class TestDiscardOldest:
    def _grown(self):
        rng = np.random.default_rng(4)
        X = rng.standard_normal((40, 2))
        y = rng.integers(1, 4, 40)
        return KNNClassifier(k=3).fit(X[:10], y[:10]), X, y

    def test_drops_the_oldest_rows(self):
        clf, X, y = self._grown()
        for i in range(10, 40):
            clf.partial_fit(X[i], y[i])
        clf.discard_oldest(25)
        assert clf.n_samples_ == 15
        np.testing.assert_array_equal(clf._X, X[25:])
        np.testing.assert_array_equal(clf._y, y[25:])

    def test_counters_track_absolute_indices(self):
        clf, X, y = self._grown()
        assert (clf.appended_total_, clf.discarded_total_) == (10, 0)
        for i in range(10, 30):
            clf.partial_fit(X[i], y[i])
        clf.discard_oldest(7)
        assert (clf.appended_total_, clf.discarded_total_) == (30, 7)
        rows_x, rows_y, first = clf.rows_since(25)
        assert first == 25
        np.testing.assert_array_equal(rows_x, X[25:30])
        np.testing.assert_array_equal(rows_y, y[25:30])
        # Asking for already-retired rows clamps to the live window.
        _, _, first = clf.rows_since(0)
        assert first == 7

    def test_must_keep_k_samples(self):
        clf, _, _ = self._grown()
        with pytest.raises(ConfigurationError):
            clf.discard_oldest(8)  # 10 - 8 < k = 3

    def test_classes_shrink_when_a_label_dies_out(self):
        X = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
        clf = KNNClassifier(k=1).fit(X, np.array([9, 1, 1, 1]))
        assert list(clf.classes_) == [1, 9]
        clf.discard_oldest(1)
        assert list(clf.classes_) == [1]

    def test_sliding_window_predictions_match_fresh_fit(self):
        """Interleaved append/discard (the fleet's eviction pattern) must
        stay equivalent to refitting on the surviving rows — including
        after enough churn to force buffer compaction."""
        rng = np.random.default_rng(5)
        X = rng.standard_normal((600, 2))
        y = rng.integers(1, 4, 600)
        clf = KNNClassifier(k=3).fit(X[:50], y[:50])
        for i in range(50, 600):
            clf.partial_fit(X[i], y[i])
            if clf.n_samples_ > 50:
                clf.discard_oldest(clf.n_samples_ - 50)
        np.testing.assert_array_equal(clf._X, X[550:])
        fresh = KNNClassifier(k=3).fit(X[550:], y[550:])
        queries = rng.standard_normal((25, 2))
        np.testing.assert_array_equal(
            clf.predict(queries), fresh.predict(queries)
        )
