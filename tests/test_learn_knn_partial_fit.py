"""Unit tests for the k-NN incremental-learning path."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.learn.knn import KNNClassifier


def _base():
    X = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
    y = np.array([1, 1, 2, 2])
    return KNNClassifier(k=1).fit(X, y)


class TestPartialFit:
    def test_appended_points_are_found(self):
        clf = _base()
        clf.partial_fit([[10.0, 10.0]], [3])
        assert clf.predict_one([10.1, 10.0]) == 3
        assert clf.n_samples_ == 5

    def test_equivalent_to_full_fit(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((60, 2))
        y = rng.integers(1, 4, 60)
        incremental = KNNClassifier(k=3).fit(X[:30], y[:30])
        for i in range(30, 60):
            incremental.partial_fit(X[i], y[i])
        full = KNNClassifier(k=3).fit(X, y)
        queries = rng.standard_normal((40, 2))
        np.testing.assert_array_equal(
            incremental.predict(queries), full.predict(queries)
        )

    def test_new_class_registered(self):
        clf = _base()
        clf.partial_fit([[20.0, 20.0]], [9])
        assert 9 in clf.classes_

    def test_requires_initial_fit(self):
        with pytest.raises(NotFittedError):
            KNNClassifier(k=1).partial_fit([[0.0, 0.0]], [1])

    def test_feature_mismatch(self):
        clf = _base()
        with pytest.raises(ConfigurationError):
            clf.partial_fit([[1.0, 2.0, 3.0]], [1])

    def test_label_count_mismatch(self):
        clf = _base()
        with pytest.raises(ConfigurationError):
            clf.partial_fit([[1.0, 2.0]], [1, 2])

    def test_non_integer_labels(self):
        clf = _base()
        with pytest.raises(ConfigurationError):
            clf.partial_fit([[1.0, 2.0]], [1.5])

    def test_tree_backend_rebuilt(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((3000, 2))
        y = (X[:, 0] > 0).astype(int)
        clf = KNNClassifier(k=3, algorithm="kd_tree").fit(X, y)
        assert clf._tree is not None
        clf.partial_fit([[0.0, 0.0]], [1])
        assert clf._tree is not None
        assert clf._tree.n_points == 3001
