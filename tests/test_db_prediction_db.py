"""Unit tests for the prediction database."""

import math

import numpy as np
import pytest

from repro.db.prediction_db import PredictionDatabase, SeriesKey
from repro.exceptions import DuplicateKeyError, MissingSeriesError

KEY = SeriesKey(vm_id="VM1", device_id="cpu0", metric="CPU_usedsec")


class TestSeriesKey:
    def test_str(self):
        assert str(KEY) == "VM1/cpu0/CPU_usedsec"

    def test_ordering_and_hash(self):
        other = SeriesKey("VM2", "cpu0", "CPU_usedsec")
        assert KEY < other
        assert len({KEY, KEY, other}) == 2


class TestMeasurements:
    def test_roundtrip_sorted(self):
        db = PredictionDatabase()
        db.insert_measurement(KEY, 300, 2.0)
        db.insert_measurement(KEY, 0, 1.0)
        db.insert_measurement(KEY, 600, 3.0)
        t, v = db.fetch_measurements(KEY)
        np.testing.assert_array_equal(t, [0, 300, 600])
        np.testing.assert_array_equal(v, [1.0, 2.0, 3.0])

    def test_duplicate_primary_key_rejected(self):
        db = PredictionDatabase()
        db.insert_measurement(KEY, 0, 1.0)
        with pytest.raises(DuplicateKeyError):
            db.insert_measurement(KEY, 0, 2.0)

    def test_same_timestamp_different_series_ok(self):
        db = PredictionDatabase()
        db.insert_measurement(KEY, 0, 1.0)
        other = SeriesKey("VM1", "cpu0", "CPU_ready")
        db.insert_measurement(other, 0, 5.0)  # no raise
        assert len(db.keys()) == 2

    def test_bulk_insert(self):
        db = PredictionDatabase()
        db.insert_measurements(KEY, [0, 300, 600], [1.0, 2.0, 3.0])
        t, _ = db.fetch_measurements(KEY)
        assert t.size == 3

    def test_bulk_shape_mismatch(self):
        db = PredictionDatabase()
        with pytest.raises(ValueError):
            db.insert_measurements(KEY, [0, 300], [1.0])

    def test_range_query(self):
        db = PredictionDatabase()
        db.insert_measurements(KEY, [0, 300, 600, 900], [1.0, 2.0, 3.0, 4.0])
        _, v = db.fetch_measurements(KEY, start=300, end=600)
        np.testing.assert_array_equal(v, [2.0, 3.0])

    def test_missing_series(self):
        with pytest.raises(MissingSeriesError):
            PredictionDatabase().fetch_measurements(KEY)


class TestPredictions:
    def test_prediction_then_observation_join(self):
        db = PredictionDatabase()
        db.store_prediction(KEY, 300, 2.5)
        db.record_observation(KEY, 300, 2.0)
        t, p, m = db.fetch_prediction_pairs(KEY)
        np.testing.assert_array_equal(t, [300])
        assert p[0] == 2.5 and m[0] == 2.0

    def test_unobserved_prediction_not_in_join(self):
        db = PredictionDatabase()
        db.store_prediction(KEY, 300, 2.5)
        t, _, _ = db.fetch_prediction_pairs(KEY)
        assert t.size == 0
        # And placeholder rows do not appear as measurements either.
        tm, _ = db.fetch_measurements(KEY)
        assert tm.size == 0

    def test_prediction_attached_to_existing_row(self):
        db = PredictionDatabase()
        db.insert_measurement(KEY, 300, 2.0)
        db.store_prediction(KEY, 300, 2.5)
        _, p, m = db.fetch_prediction_pairs(KEY)
        assert p[0] == 2.5 and m[0] == 2.0

    def test_audit_mse(self):
        db = PredictionDatabase()
        for ts, pred, obs in [(0, 1.0, 0.0), (300, 2.0, 0.0)]:
            db.store_prediction(KEY, ts, pred)
            db.record_observation(KEY, ts, obs)
        assert db.audit_mse(KEY) == pytest.approx(2.5)

    def test_audit_mse_empty_is_nan(self):
        db = PredictionDatabase()
        db.insert_measurement(KEY, 0, 1.0)
        assert math.isnan(db.audit_mse(KEY))

    def test_audit_mse_range(self):
        db = PredictionDatabase()
        for ts, pred, obs in [(0, 10.0, 0.0), (300, 1.0, 0.0)]:
            db.store_prediction(KEY, ts, pred)
            db.record_observation(KEY, ts, obs)
        assert db.audit_mse(KEY, start=300) == pytest.approx(1.0)
