"""Unit tests for the online (incremental) LARPredictor."""

from collections import deque

import numpy as np
import pytest

from repro.core.config import LARConfig
from repro.core.larpredictor import LARPredictor
from repro.core.online import OnlineLARPredictor
from repro.exceptions import ConfigurationError, NotFittedError
from repro.learn.knn import KNNClassifier
from repro.traces.synthetic import ar1_series, conflict_series


@pytest.fixture
def online():
    series = conflict_series(400, seed=3)
    return OnlineLARPredictor(LARConfig(window=5)).train(series[:200]), series


class TestLifecycle:
    def test_untrained_guards(self):
        o = OnlineLARPredictor()
        with pytest.raises(NotFittedError):
            o.forecast()
        with pytest.raises(NotFittedError):
            o.observe(1.0)

    def test_train_initializes_memory(self, online):
        o, _ = online
        assert o.is_trained
        assert o.memory_size == 200 - 5  # one pair per (frame, target)
        assert o.windows_learned_online == 0

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            OnlineLARPredictor(label_smoothing=0)
        with pytest.raises(ConfigurationError):
            OnlineLARPredictor(LARConfig(k=5), max_memory=3)


class TestObserve:
    def test_memory_grows_per_observation(self, online):
        o, series = online
        before = o.memory_size
        for v in series[200:220]:
            label = o.observe(v)
            assert label in (1, 2, 3)
        assert o.memory_size == before + 20
        assert o.windows_learned_online == 20

    def test_non_finite_rejected(self, online):
        o, _ = online
        with pytest.raises(ConfigurationError):
            o.observe(float("inf"))

    def test_labels_match_offline_rule_shape(self, online):
        """Online labels must come from the same pool argmin logic."""
        o, series = online
        labels = [o.observe(v) for v in series[200:260]]
        assert set(labels).issubset({1, 2, 3})

    def test_memory_cap_applies_at_training(self):
        series = ar1_series(300, phi=0.9, seed=5)
        o = OnlineLARPredictor(LARConfig(window=5), max_memory=100)
        o.train(series[:150])  # 145 pairs, oldest 45 evicted
        assert o.memory_size == 100

    def test_memory_cap_enforced_online(self):
        series = ar1_series(300, phi=0.9, seed=6)
        o = OnlineLARPredictor(LARConfig(window=5), max_memory=150)
        o.train(series[:150])
        for v in series[150:250]:
            o.observe(v)
        assert o.memory_size == 150


class TestForecast:
    def test_forecast_fields(self, online):
        o, _ = online
        fc = o.forecast()
        assert fc.predictor_name in ("LAST", "AR", "SW_AVG")
        assert np.isfinite(fc.value)

    def test_online_learning_helps_on_novel_regime(self):
        """After a regime the initial training never saw, the online
        learner (which keeps labelling) must beat the frozen one."""
        rng = np.random.default_rng(11)
        seen = 20.0 + ar1_series(200, phi=0.9, seed=12)
        novel = 60.0 + 8.0 * np.sin(np.arange(300) / 3.0) + rng.standard_normal(300)
        stream = np.concatenate([seen[-5:], novel])

        def run(learn: bool) -> float:
            o = OnlineLARPredictor(LARConfig(window=5)).train(seen)
            errs = []
            for t in range(5, stream.size):
                fc = o.forecast()
                errs.append((fc.value - stream[t]) ** 2)
                if learn:
                    o.observe(stream[t])
                else:
                    # advance history without learning
                    o._history.append(float(stream[t]))
            # Score only the later portion, where learning had time.
            return float(np.mean(errs[100:]))

        assert run(learn=True) <= run(learn=False)

    def test_retrain_from_stored_history(self, online):
        o, series = online
        for v in series[200:260]:
            o.observe(v)
        o.retrain()
        assert o.windows_learned_online == 0
        assert o.is_trained


class _AccessCountingDeque(deque):
    """Deque that counts every element touched, whatever the protocol.

    Any O(history) code path (``np.asarray``, ``list(...)``, a full
    loop) must touch every stored element through one of these hooks,
    so the counter is a deterministic proxy for per-step work.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.touched = 0

    def __iter__(self):
        for value in super().__iter__():
            self.touched += 1
            yield value

    def __reversed__(self):
        for value in super().__reversed__():
            self.touched += 1
            yield value

    def __getitem__(self, index):
        self.touched += 1
        return super().__getitem__(index)


class TestPerStepCost:
    """Regression guard: observe/forecast work must not grow with the
    stored history length (they were O(history) per step once)."""

    @staticmethod
    def _instrumented(history_length: int):
        series = ar1_series(300, phi=0.9, seed=21)
        o = OnlineLARPredictor(LARConfig(window=5)).train(series[:200])
        rng = np.random.default_rng(22)
        pad = _AccessCountingDeque(o._history)
        pad.extend(rng.normal(10.0, 2.0, size=history_length - len(pad)))
        o._history = pad
        return o, pad

    def _touches_per_step(self, history_length: int) -> int:
        o, pad = self._instrumented(history_length)
        pad.touched = 0
        o.forecast()
        o.observe(11.0)
        return pad.touched

    def test_step_touches_only_the_tail(self):
        w = 5
        touches = self._touches_per_step(10_000)
        # forecast reads w values, observe reads w + 1; give slack for
        # bounded constant-factor changes, but nothing near O(history).
        assert touches <= 4 * (w + 1)

    def test_step_cost_independent_of_history_length(self):
        assert (
            self._touches_per_step(1_000)
            == self._touches_per_step(50_000)
        )


class TestBatchOnlineParity:
    def test_first_forecast_identical_to_batch(self):
        """Before any observe call, the online predictor and a batch
        LARPredictor trained on the same series are the same machine:
        same selected predictor, same value — the shared pipeline
        contract."""
        series = conflict_series(400, seed=7)
        online = OnlineLARPredictor(LARConfig(window=5)).train(series)
        batch = LARPredictor(LARConfig(window=5)).train(series)
        fo = online.forecast()
        fb = batch.forecast(series)
        assert fo.predictor_label == fb.predictor_label
        assert fo.predictor_name == fb.predictor_name
        assert fo.value == fb.value
        assert fo.normalized_value == fb.normalized_value


class TestEviction:
    def overflowed(self):
        series = ar1_series(400, phi=0.9, seed=8)
        o = OnlineLARPredictor(LARConfig(window=5), max_memory=120)
        o.train(series[:150])  # 145 pairs -> oldest 25 evicted at train
        for v in series[150:250]:  # 100 more pairs stream in
            o.observe(v)
        return o

    def test_memory_is_newest_pairs_after_overflow(self):
        """After eviction, the classifier memory must hold exactly the
        newest max_memory (feature, label) pairs in arrival order."""
        series = ar1_series(400, phi=0.9, seed=9)
        capped = OnlineLARPredictor(LARConfig(window=5), max_memory=120)
        uncapped = OnlineLARPredictor(LARConfig(window=5))
        capped.train(series[:150])
        uncapped.train(series[:150])
        for v in series[150:250]:
            capped.observe(v)
            uncapped.observe(v)
        assert capped.memory_size == 120
        full_x = uncapped._classifier._X
        full_y = uncapped._classifier._y
        np.testing.assert_array_equal(
            capped._classifier._X, full_x[-120:]
        )
        np.testing.assert_array_equal(
            capped._classifier._y, full_y[-120:]
        )

    def test_predictions_match_fresh_fit_on_surviving_pairs(self):
        o = self.overflowed()
        clf = o._classifier
        fresh = KNNClassifier(k=o.config.k).fit(clf._X, clf._y)
        rng = np.random.default_rng(10)
        queries = rng.normal(size=(32, clf._X.shape[1]))
        for q in queries:
            assert clf.predict_one(q) == fresh.predict_one(q)


class TestHistoryLimit:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OnlineLARPredictor(LARConfig(window=5), history_limit=6)

    def test_history_bounded(self):
        series = ar1_series(400, phi=0.9, seed=11)
        o = OnlineLARPredictor(LARConfig(window=5), history_limit=100)
        o.train(series[:150])
        assert o.history_length == 100
        for v in series[150:250]:
            o.observe(v)
        assert o.history_length == 100

    def test_recent_history_tail(self):
        series = ar1_series(200, phi=0.9, seed=12)
        o = OnlineLARPredictor(LARConfig(window=5)).train(series)
        np.testing.assert_allclose(o.recent_history(10), series[-10:])
        assert o.recent_history().size == series.size
        with pytest.raises(ConfigurationError):
            o.recent_history(-1)
