"""Unit tests for the online (incremental) LARPredictor."""

import numpy as np
import pytest

from repro.core.config import LARConfig
from repro.core.online import OnlineLARPredictor
from repro.exceptions import ConfigurationError, NotFittedError
from repro.traces.synthetic import ar1_series, conflict_series


@pytest.fixture
def online():
    series = conflict_series(400, seed=3)
    return OnlineLARPredictor(LARConfig(window=5)).train(series[:200]), series


class TestLifecycle:
    def test_untrained_guards(self):
        o = OnlineLARPredictor()
        with pytest.raises(NotFittedError):
            o.forecast()
        with pytest.raises(NotFittedError):
            o.observe(1.0)

    def test_train_initializes_memory(self, online):
        o, _ = online
        assert o.is_trained
        assert o.memory_size == 200 - 5  # one pair per (frame, target)
        assert o.windows_learned_online == 0

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            OnlineLARPredictor(label_smoothing=0)
        with pytest.raises(ConfigurationError):
            OnlineLARPredictor(LARConfig(k=5), max_memory=3)


class TestObserve:
    def test_memory_grows_per_observation(self, online):
        o, series = online
        before = o.memory_size
        for v in series[200:220]:
            label = o.observe(v)
            assert label in (1, 2, 3)
        assert o.memory_size == before + 20
        assert o.windows_learned_online == 20

    def test_non_finite_rejected(self, online):
        o, _ = online
        with pytest.raises(ConfigurationError):
            o.observe(float("inf"))

    def test_labels_match_offline_rule_shape(self, online):
        """Online labels must come from the same pool argmin logic."""
        o, series = online
        labels = [o.observe(v) for v in series[200:260]]
        assert set(labels).issubset({1, 2, 3})

    def test_memory_cap_applies_at_training(self):
        series = ar1_series(300, phi=0.9, seed=5)
        o = OnlineLARPredictor(LARConfig(window=5), max_memory=100)
        o.train(series[:150])  # 145 pairs, oldest 45 evicted
        assert o.memory_size == 100

    def test_memory_cap_enforced_online(self):
        series = ar1_series(300, phi=0.9, seed=6)
        o = OnlineLARPredictor(LARConfig(window=5), max_memory=150)
        o.train(series[:150])
        for v in series[150:250]:
            o.observe(v)
        assert o.memory_size == 150


class TestForecast:
    def test_forecast_fields(self, online):
        o, _ = online
        fc = o.forecast()
        assert fc.predictor_name in ("LAST", "AR", "SW_AVG")
        assert np.isfinite(fc.value)

    def test_online_learning_helps_on_novel_regime(self):
        """After a regime the initial training never saw, the online
        learner (which keeps labelling) must beat the frozen one."""
        rng = np.random.default_rng(11)
        seen = 20.0 + ar1_series(200, phi=0.9, seed=12)
        novel = 60.0 + 8.0 * np.sin(np.arange(300) / 3.0) + rng.standard_normal(300)
        stream = np.concatenate([seen[-5:], novel])

        def run(learn: bool) -> float:
            o = OnlineLARPredictor(LARConfig(window=5)).train(seen)
            errs = []
            for t in range(5, stream.size):
                fc = o.forecast()
                errs.append((fc.value - stream[t]) ** 2)
                if learn:
                    o.observe(stream[t])
                else:
                    # advance history without learning
                    o._history.append(float(stream[t]))
            # Score only the later portion, where learning had time.
            return float(np.mean(errs[100:]))

        assert run(learn=True) <= run(learn=False)

    def test_retrain_from_stored_history(self, online):
        o, series = online
        for v in series[200:260]:
            o.observe(v)
        o.retrain()
        assert o.windows_learned_online == 0
        assert o.is_trained
