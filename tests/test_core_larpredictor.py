"""Unit and integration tests for the LARPredictor facade."""

import numpy as np
import pytest

from repro.core.config import LARConfig
from repro.core.larpredictor import Forecast, LARPredictor
from repro.core.qa import PredictionQualityAssuror
from repro.exceptions import ConfigurationError, InsufficientDataError, NotFittedError
from repro.learn.centroid import NearestCentroidClassifier
from repro.traces.synthetic import ar1_series, regime_series


class TestTraining:
    def test_untrained_guards(self):
        lar = LARPredictor()
        with pytest.raises(NotFittedError):
            lar.evaluate([1.0] * 50)
        with pytest.raises(NotFittedError):
            lar.forecast([1.0] * 50)
        with pytest.raises(NotFittedError):
            lar.predict_series([1.0] * 50)

    def test_train_returns_self(self, smooth_series):
        lar = LARPredictor()
        assert lar.train(smooth_series) is lar
        assert lar.is_trained

    def test_training_labels_exposed(self, trained_lar):
        lar, _ = trained_lar
        labels = lar.training_labels_
        assert set(np.unique(labels)).issubset({1, 2, 3})


class TestBatchEvaluation:
    def test_evaluate_result(self, trained_lar):
        lar, series = trained_lar
        result = lar.evaluate(series[200:])
        assert result.strategy == "LAR"
        assert 0.0 <= result.forecast_accuracy <= 1.0
        assert result.mse >= 0.0

    def test_predict_series_denormalized_scale(self, trained_lar):
        """Predictions come back in the original series scale."""
        lar, series = trained_lar
        preds = lar.predict_series(series[200:])
        assert preds.shape == (len(series[200:]) - 5,)
        # The series lives around mean 5; normalized space is around 0.
        assert abs(preds.mean() - series.mean()) < 2.0

    def test_reasonable_accuracy_on_smooth_series(self, trained_lar):
        """LAR must beat the trivial mean predictor on a smooth series."""
        lar, series = trained_lar
        result = lar.evaluate(series[200:])
        assert result.mse < 1.0  # normalized space: 1.0 == mean predictor


class TestStreaming:
    def test_forecast_fields(self, trained_lar):
        lar, series = trained_lar
        fc = lar.forecast(series[:100])
        assert isinstance(fc, Forecast)
        assert fc.predictor_name in ("LAST", "AR", "SW_AVG")
        assert 1 <= fc.predictor_label <= 3
        # Denormalization consistency.
        norm = lar._runner.pipeline.normalizer
        assert fc.value == pytest.approx(
            norm.inverse_transform_value(fc.normalized_value)
        )

    def test_forecast_needs_window(self, trained_lar):
        lar, _ = trained_lar
        with pytest.raises(InsufficientDataError):
            lar.forecast([1.0, 2.0])

    def test_forecast_matches_batch_path(self, trained_lar):
        """The streaming forecast of history[:t] equals the batch
        prediction for the same window."""
        lar, series = trained_lar
        t = 250
        fc = lar.forecast(series[:t])
        # predict_series frames its input at window 5, so the first
        # prediction of series[t-5 : t+1] uses exactly window
        # series[t-5 : t] — the same window forecast() saw.
        batch = lar.predict_series(series[t - 5 : t + 1])
        assert fc.value == pytest.approx(batch[0])


class TestRetraining:
    def test_retrain_replaces_model(self, smooth_series):
        lar = LARPredictor().train(smooth_series[:200])
        mean_before = lar._runner.pipeline.normalizer.mean
        lar.retrain(smooth_series[200:] + 100.0)
        assert lar._runner.pipeline.normalizer.mean != mean_before

    def test_run_with_qa_produces_forecasts(self):
        series = regime_series(300, block=64, seed=21)
        lar = LARPredictor(LARConfig(window=5)).train(series[:150])
        qa = PredictionQualityAssuror(threshold=50.0, audit_interval=8)
        forecasts = lar.run_with_qa(series[150:], qa)
        assert len(forecasts) == 150 - 5
        assert qa.step == 150 - 5

    def test_run_with_qa_retrains_on_breach(self):
        """A drastic distribution shift must trigger retraining."""
        rng = np.random.default_rng(22)
        calm = ar1_series(150, phi=0.9, seed=23)
        shifted = 50.0 + 10.0 * rng.standard_normal(100)
        lar = LARPredictor(LARConfig(window=5)).train(calm)
        qa = PredictionQualityAssuror(threshold=4.0, audit_interval=4, audit_window=8)
        mean_before = lar._runner.pipeline.normalizer.mean
        lar.run_with_qa(np.concatenate([calm[-10:], shifted]), qa)
        # Retraining re-fits the normalizer on recent (shifted) data.
        assert lar._runner.pipeline.normalizer.mean != mean_before

    def test_run_with_qa_validates_retrain_window(self, trained_lar):
        lar, series = trained_lar
        qa = PredictionQualityAssuror()
        with pytest.raises(ConfigurationError):
            lar.run_with_qa(series, qa, retrain_window=3)

    def test_run_with_qa_needs_enough_stream(self, trained_lar):
        lar, _ = trained_lar
        with pytest.raises(InsufficientDataError):
            lar.run_with_qa([1.0] * 5, PredictionQualityAssuror())

    def test_retrain_window_floor_unified_with_fleet_config(self):
        """run_with_qa and FleetConfig enforce the same
        ``window + max(k, 2)`` floor: a retrain on L values yields
        L - window (frame, label) pairs and the k-NN selector needs at
        least k of them."""
        from repro.serving import FleetConfig

        series = ar1_series(300, phi=0.9, mean=5.0, std=1.0, seed=44)
        lar = LARPredictor(LARConfig(window=5)).train(series[:150])
        floor = 5 + max(lar.config.k, 2)  # k=3 -> 8
        with pytest.raises(ConfigurationError, match=r"max\(k, 2\)"):
            # Under the old window + 2 floor this passed validation and
            # could hand the k-NN fit fewer pairs than k.
            lar.run_with_qa(
                series[150:], PredictionQualityAssuror(), retrain_window=floor - 1
            )
        with pytest.raises(ConfigurationError, match=r"max\(k, 2\)"):
            FleetConfig(lar=LARConfig(window=5), retrain_window=floor - 1)
        # The shared floor itself is accepted by both.
        lar.run_with_qa(
            series[150:200],
            PredictionQualityAssuror(threshold=50.0),
            retrain_window=floor,
        )
        FleetConfig(lar=LARConfig(window=5), retrain_window=floor)

    def test_retrain_window_floor_tracks_k(self):
        """Raising k raises the floor past the legacy window + 2."""
        series = ar1_series(200, phi=0.9, mean=5.0, std=1.0, seed=45)
        lar = LARPredictor(LARConfig(window=5, k=5)).train(series[:150])
        with pytest.raises(ConfigurationError, match=">= 10"):
            lar.run_with_qa(
                series[150:], PredictionQualityAssuror(), retrain_window=9
            )


class TestCustomization:
    def test_custom_classifier(self, smooth_series):
        lar = LARPredictor(classifier=NearestCentroidClassifier())
        lar.train(smooth_series[:200])
        result = lar.evaluate(smooth_series[200:])
        assert result.n_steps > 0

    def test_extended_pool_config(self, smooth_series):
        lar = LARPredictor(LARConfig(window=6, extended_pool=True))
        lar.train(smooth_series[:200])
        fc = lar.forecast(smooth_series[:100])
        assert fc.predictor_name in lar.pool.names
        assert len(lar.pool) == 10

    def test_repr_mentions_state(self, smooth_series):
        lar = LARPredictor()
        assert "untrained" in repr(lar)
        lar.train(smooth_series)
        assert "trained" in repr(lar)
