"""Bit-equality of the stacked QA engine against per-stream ``record()``.

The batched tick engine mirrors every served stream's
:class:`~repro.core.qa.PredictionQualityAssuror` error window into one
``(S, audit_window)`` ring and records the whole fleet's audits with
vectorized kernels (:meth:`BatchedTickEngine._record_audits_stacked`).
That is an execution strategy, not a behavior change: the per-stream QA
objects must end up in the *identical* state the per-stream loop would
have left them in — same ``audits`` list (bit-identical window MSEs),
same lifetime counters, same error window and running sum, same breach
latch and ``on_breach`` dispatches, same ``state_dict``. These
properties drive batched and loop fleets through the same feeds across
audit geometries, mid-stream ``acknowledge_retraining`` resets, and
round-trips through persistence, and compare everything.

``PredictionQualityAssuror.record_batch`` (the standalone vectorized
API built on the same kernels) gets the same treatment against a
``record`` loop.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LARConfig
from repro.core.qa import PredictionQualityAssuror
from repro.parallel.pool_exec import ParallelConfig
from repro.serving import FleetConfig, PredictionFleet
from repro.traces.synthetic import ar1_series

SERIAL = ParallelConfig(max_workers=1)


def _config(audit_window, audit_interval, **overrides):
    defaults = dict(
        lar=LARConfig(window=5),
        min_train=20,
        qa_threshold=2.0,
        audit_window=audit_window,
        audit_interval=audit_interval,
        retrain_window=40,
        parallel=SERIAL,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _qa_state(fleet):
    """Every bit of per-stream QA state the stacked engine must preserve."""
    out = {}
    for name, state in fleet._streams.items():
        qa = state.qa
        out[name] = (
            tuple(qa.audits),
            qa.audits_total,
            qa.breaches_total,
            tuple(qa._sq_errors),
            qa._sq_sum,
            qa._step,
            qa._retraining_due,
            qa.state_dict(),
        )
    return out


def _serve_pair(seed, audit_window, audit_interval, ticks, *, ack_at=None,
                hooks=False):
    """Drive a batched and a loop fleet identically; return both + hook logs."""
    names = ["a", "b", "c", "d", "e"]
    feeds = {
        name: 10.0 + 2.0 * ar1_series(ticks, phi=0.9, seed=seed + i)
        for i, name in enumerate(names)
    }
    # Half the streams drift so some audits actually breach.
    for i, name in enumerate(names):
        if i % 2 == 0:
            feeds[name] = feeds[name].copy()
            feeds[name][ticks // 2 :] += 20.0
    fleets, logs = [], []
    for batched in (True, False):
        fleet = PredictionFleet(
            _config(audit_window, audit_interval), streams=names
        )
        log = []
        for t in range(ticks):
            if hooks and t == 25:
                # Wire breach hooks only once streams are trained, so
                # both paths see the same QA objects.
                for name in names:
                    qa = fleet._streams[name].qa
                    qa.on_breach = (
                        lambda rec, name=name, log=log: log.append(
                            (name, rec)
                        )
                    )
            fleet.forecast_all(batched=batched)
            fleet.ingest(
                {name: feeds[name][t] for name in names}, batched=batched
            )
            if ack_at is not None and t == ack_at:
                # An out-of-band reset, exactly what a retrain does —
                # the engine must notice (version bump) and resync its
                # ring mirror before the next tick's audits.
                fleet._streams[names[0]].qa.acknowledge_retraining()
            fleet.run_pending_retrains(batched=batched)
        fleets.append(fleet)
        logs.append(log)
    return fleets[0], fleets[1], logs[0], logs[1]


class TestStackedQAParity:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_qa_state_bitwise_equal_across_audit_geometries(
        self, seed, audit_window, audit_interval
    ):
        batched, loop, _, _ = _serve_pair(
            seed, audit_window, audit_interval, 70
        )
        assert _qa_state(batched) == _qa_state(loop)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=69),
    )
    @settings(max_examples=10, deadline=None)
    def test_mid_stream_acknowledge_resyncs_mirror(self, seed, ack_at):
        batched, loop, _, _ = _serve_pair(seed, 8, 4, 70, ack_at=ack_at)
        assert _qa_state(batched) == _qa_state(loop)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_breach_callbacks_fire_identically(self, seed):
        batched, loop, log_b, log_l = _serve_pair(seed, 8, 4, 80, hooks=True)
        assert log_b == log_l
        assert len(log_b) > 0  # the drift actually produced breaches
        assert _qa_state(batched) == _qa_state(loop)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_state_dict_round_trip_continues_identically(self, seed):
        """Restore every QA mid-serve; both paths resume bit-identically.

        ``load_state_dict`` bumps ``version``, so this also exercises
        the engine's stale-mirror reload on the very next tick.
        """
        batched, loop, _, _ = _serve_pair(seed, 8, 4, 40)
        for fleet in (batched, loop):
            for state in fleet._streams.values():
                state.qa.load_state_dict(state.qa.state_dict())
        names = list(batched._streams)
        feeds = {
            name: 10.0 + 2.0 * ar1_series(30, phi=0.9, seed=seed + 77 + i)
            for i, name in enumerate(names)
        }
        for t in range(30):
            fa = batched.forecast_all(batched=True)
            fb = loop.forecast_all(batched=False)
            assert fa == fb
            batched.ingest(
                {name: feeds[name][t] for name in names}, batched=True
            )
            loop.ingest(
                {name: feeds[name][t] for name in names}, batched=False
            )
        assert _qa_state(batched) == _qa_state(loop)


class TestRecordBatchParity:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=6),
        st.lists(st.integers(min_value=1, max_value=17), min_size=1,
                 max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_record_batch_equals_record_loop(
        self, seed, audit_window, audit_interval, batch_sizes
    ):
        rng = np.random.default_rng(seed)
        calls_b, calls_l = [], []
        qa_b = PredictionQualityAssuror(
            0.5, audit_window=audit_window, audit_interval=audit_interval,
            on_breach=lambda rec: calls_b.append(rec),
        )
        qa_l = PredictionQualityAssuror(
            0.5, audit_window=audit_window, audit_interval=audit_interval,
            on_breach=lambda rec: calls_l.append(rec),
        )
        for size in batch_sizes:
            p = rng.normal(0.0, 1.5, size=size)
            o = rng.normal(0.0, 1.5, size=size)
            fired = qa_b.record_batch(p, o)
            expected = []
            for i in range(size):
                rec = qa_l.record(float(p[i]), float(o[i]))
                if rec is not None:
                    expected.append(rec)
            assert fired == expected
        assert qa_b.audits == qa_l.audits
        assert tuple(qa_b._sq_errors) == tuple(qa_l._sq_errors)
        assert qa_b._sq_sum == qa_l._sq_sum
        assert qa_b._step == qa_l._step
        assert qa_b._retraining_due == qa_l._retraining_due
        assert qa_b.audits_total == qa_l.audits_total
        assert qa_b.breaches_total == qa_l.breaches_total
        assert calls_b == calls_l
        assert qa_b.state_dict() == qa_l.state_dict()
        assert qa_b.rolling_mse == qa_l.rolling_mse
