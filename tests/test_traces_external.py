"""Unit tests for the external trace loaders."""

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.traces.external import load_csv_column, load_plain_series


class TestPlainSeries:
    def test_values_only(self, tmp_path):
        p = tmp_path / "load.txt"
        p.write_text("# Dinda-style host load\n1.5\n2.5\n\n3.5\n")
        trace = load_plain_series(p, interval_seconds=60)
        np.testing.assert_array_equal(trace.values, [1.5, 2.5, 3.5])
        np.testing.assert_array_equal(trace.timestamps, [0, 60, 120])
        assert trace.interval_seconds == 60

    def test_timestamped_lines(self, tmp_path):
        p = tmp_path / "load.txt"
        p.write_text("100 1.0\n400 2.0\n700 3.0\n")
        trace = load_plain_series(p)
        np.testing.assert_array_equal(trace.timestamps, [100, 400, 700])
        assert trace.interval_seconds == 300  # median step

    def test_limit(self, tmp_path):
        p = tmp_path / "load.txt"
        p.write_text("\n".join(str(i) for i in range(100)))
        assert len(load_plain_series(p, limit=10)) == 10

    def test_garbage_line(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("1.0\nnot-a-number\n")
        with pytest.raises(DataError, match="cannot parse"):
            load_plain_series(p)

    def test_non_monotone_timestamps(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("100 1.0\n50 2.0\n")
        with pytest.raises(DataError, match="increase"):
            load_plain_series(p)

    def test_too_short(self, tmp_path):
        p = tmp_path / "one.txt"
        p.write_text("1.0\n")
        with pytest.raises(DataError, match="at least 2"):
            load_plain_series(p)

    def test_metadata_fields(self, tmp_path):
        p = tmp_path / "load.txt"
        p.write_text("1\n2\n")
        trace = load_plain_series(p, vm_id="host7", metric="load15")
        assert trace.trace_id == "host7/load15"


class TestCsvColumn:
    def _csv(self, tmp_path, text, name="data.csv"):
        p = tmp_path / name
        p.write_text(text)
        return p

    def test_by_name(self, tmp_path):
        p = self._csv(tmp_path, "ts,cpu,mem\n0,1.0,5\n300,2.0,6\n600,3.0,7\n")
        trace = load_csv_column(p, "cpu", timestamp_column="ts")
        np.testing.assert_array_equal(trace.values, [1.0, 2.0, 3.0])
        assert trace.metric == "cpu"
        assert trace.interval_seconds == 300

    def test_by_index(self, tmp_path):
        p = self._csv(tmp_path, "ts,cpu,mem\n0,1.0,5\n300,2.0,6\n")
        trace = load_csv_column(p, 2)
        np.testing.assert_array_equal(trace.values, [5.0, 6.0])
        assert trace.metric == "mem"

    def test_headerless_by_index(self, tmp_path):
        p = self._csv(tmp_path, "1.0,10\n2.0,20\n3.0,30\n")
        trace = load_csv_column(p, 1)
        np.testing.assert_array_equal(trace.values, [10.0, 20.0, 30.0])

    def test_headerless_by_name_rejected(self, tmp_path):
        p = self._csv(tmp_path, "1.0,10\n2.0,20\n")
        with pytest.raises(DataError, match="no header"):
            load_csv_column(p, "cpu")

    def test_unknown_column(self, tmp_path):
        p = self._csv(tmp_path, "a,b\n1,2\n3,4\n")
        with pytest.raises(DataError, match="no column"):
            load_csv_column(p, "cpu")

    def test_bad_cell(self, tmp_path):
        p = self._csv(tmp_path, "a\n1\nx\n")
        with pytest.raises(DataError, match="cannot parse"):
            load_csv_column(p, "a")

    def test_metric_override(self, tmp_path):
        p = self._csv(tmp_path, "a\n1\n2\n")
        trace = load_csv_column(p, "a", metric="CPU_usedsec", vm_id="VMX")
        assert trace.trace_id == "VMX/CPU_usedsec"

    def test_limit(self, tmp_path):
        p = self._csv(tmp_path, "a\n" + "\n".join(str(i) for i in range(50)))
        assert len(load_csv_column(p, "a", limit=5)) == 5

    def test_feeds_the_evaluation_stack(self, tmp_path):
        """An external trace flows through the standard pipeline."""
        from repro.core import LARConfig, LARPredictor
        from repro.traces.synthetic import conflict_series

        x = conflict_series(400, seed=4)
        p = self._csv(
            tmp_path, "cpu\n" + "\n".join(f"{v!r}" for v in x.tolist()),
            name="ext.csv",
        )
        trace = load_csv_column(p, "cpu")
        lar = LARPredictor(LARConfig(window=5)).train(trace.values[:200])
        result = lar.evaluate(trace.values[200:])
        assert result.n_steps > 0
