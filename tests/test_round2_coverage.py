"""Second-round coverage: smaller paths the main suites skim over."""

import numpy as np
import pytest

from repro.core.config import LARConfig
from repro.core.runner import StrategyRunner
from repro.exceptions import ConfigurationError
from repro.learn.pca import PCA
from repro.preprocess.pipeline import PreprocessPipeline
from repro.traces.synthetic import ar1_series, conflict_series


class TestMinVariancePipeline:
    def test_min_variance_flows_through_pipeline(self, smooth_series):
        pipe = PreprocessPipeline(window=8, n_components=None, min_variance=0.99)
        pipe.fit(smooth_series)
        data = pipe.prepare(smooth_series)
        kept = data.features.shape[1]
        assert 1 <= kept <= 8
        assert pipe.pca.explained_variance_ratio_.sum() >= 0.99 - 1e-9

    def test_min_variance_config_in_runner(self, smooth_series):
        cfg = LARConfig(window=8, n_components=None, min_variance=0.9)
        runner = StrategyRunner(cfg).fit(smooth_series[:200])
        assert runner.pipeline.pca is not None
        assert runner.pipeline.pca.n_components_ >= 1

    def test_smooth_series_needs_few_components(self):
        """A strongly autocorrelated series concentrates variance in the
        leading components, so min_variance keeps few of them."""
        x = ar1_series(1000, phi=0.97, seed=5)
        pipe = PreprocessPipeline(window=8, n_components=None, min_variance=0.9)
        pipe.fit(x)
        assert pipe.pca.n_components_ <= 3


class TestSelectionSeriesOptions:
    def test_custom_train_fraction(self, paper_traces):
        from repro.experiments.selection_series import selection_series

        trace = paper_traces.get("VM2", "CPU_usedsec")
        fig = selection_series(trace, train_fraction=0.7)
        # cut = int(288 * 0.7) = 201 -> 87 test samples -> 82 steps
        # (one window of history consumed), below the 144-step cap.
        assert fig.n_steps == 82

    def test_n_steps_cap(self, paper_traces):
        from repro.experiments.selection_series import selection_series

        trace = paper_traces.get("VM2", "CPU_usedsec")
        fig = selection_series(trace, n_steps=20)
        assert fig.n_steps == 20

    def test_too_extreme_fraction_rejected(self, paper_traces):
        from repro.experiments.selection_series import selection_series

        trace = paper_traces.get("VM2", "CPU_usedsec")
        with pytest.raises(ConfigurationError):
            selection_series(trace, train_fraction=0.99)


class TestCliRemainder:
    def test_fig5_command(self, capsys):
        from repro.cli import main

        assert main(["fig5"]) == 0
        assert "VM2/NIC1_received" in capsys.readouterr().out

    def test_custom_seed_changes_output(self, capsys):
        from repro.cli import main

        main(["fig4"])
        default_out = capsys.readouterr().out
        main(["fig4", "--seed", "99"])
        other_out = capsys.readouterr().out
        assert default_out != other_out


class TestPCADegeneracies:
    def test_min_variance_on_rank_deficient_data(self):
        """Duplicated columns: total variance concentrates on few axes."""
        rng = np.random.default_rng(3)
        base = rng.standard_normal((100, 2))
        X = np.hstack([base, base, base])  # rank 2 in 6 dims
        pca = PCA(None, min_variance=0.999).fit(X)
        assert pca.n_components_ <= 2

    def test_transform_of_constant_rows(self):
        X = np.vstack([np.ones(4), np.ones(4), np.zeros(4)])
        pca = PCA(2).fit(X)
        Z = pca.transform(np.ones(4))
        assert Z.shape == (2,)
        assert np.isfinite(Z).all()


class TestRunnerPreparedReuse:
    def test_prepared_reuse_matches_fresh(self, smooth_series):
        """Passing prepared data must give identical results to letting
        evaluate() prepare internally."""
        from repro.selection.static import StaticSelection

        runner = StrategyRunner(LARConfig(window=5)).fit(smooth_series[:200])
        test = smooth_series[200:]
        prepared = runner.prepare_test(test)
        a = runner.evaluate(test, StaticSelection("AR"))
        b = runner.evaluate(None, StaticSelection("AR"), prepared=prepared)
        np.testing.assert_array_equal(a.predictions, b.predictions)


class TestOnlineForecastConsistency:
    def test_online_matches_batch_lar_when_not_learning(self):
        """Before any observe() call, the online predictor's forecast
        equals the batch LARPredictor's (same training, same windows)."""
        from repro.core import LARPredictor
        from repro.core.online import OnlineLARPredictor

        x = conflict_series(400, seed=17)
        batch = LARPredictor(LARConfig(window=5)).train(x[:300])
        online = OnlineLARPredictor(LARConfig(window=5)).train(x[:300])
        assert online.forecast().value == pytest.approx(
            batch.forecast(x[:300]).value
        )
