"""Unit and property tests for the distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ConfigurationError, DataError
from repro.learn.distance import (
    chebyshev_distances,
    euclidean_distances,
    manhattan_distances,
    pairwise_distances,
    squared_euclidean_distances,
)

points = arrays(
    np.float64,
    st.tuples(st.integers(1, 12), st.just(3)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestEuclidean:
    def test_known_values(self):
        d = euclidean_distances([[0.0, 0.0]], [[3.0, 4.0]])
        assert d[0, 0] == pytest.approx(5.0)

    def test_matches_naive_loop(self):
        rng = np.random.default_rng(0)
        A, B = rng.standard_normal((7, 4)), rng.standard_normal((5, 4))
        fast = euclidean_distances(A, B)
        naive = np.array([[np.linalg.norm(a - b) for b in B] for a in A])
        np.testing.assert_allclose(fast, naive, atol=1e-10)

    def test_no_negative_from_roundoff(self):
        # Identical points: expanded form can produce tiny negatives.
        A = np.full((3, 4), 1e8)
        d2 = squared_euclidean_distances(A, A)
        assert (d2 >= 0.0).all()

    def test_dimension_mismatch(self):
        with pytest.raises(DataError):
            euclidean_distances(np.ones((2, 3)), np.ones((2, 4)))

    def test_1d_inputs_promoted(self):
        d = euclidean_distances([1.0, 0.0], [0.0, 0.0])
        assert d.shape == (1, 1)

    @given(points, points)
    @settings(max_examples=40, deadline=None)
    def test_property_symmetry_and_identity(self, A, B):
        d = euclidean_distances(A, B)
        dT = euclidean_distances(B, A)
        np.testing.assert_allclose(d, dT.T, atol=1e-8)
        self_d = euclidean_distances(A, A)
        # The expanded |a|^2 - 2ab + |b|^2 form carries round-off that
        # grows with coordinate magnitude; the self-distance is zero up
        # to that scale-relative error.
        scale = 1.0 + float(np.abs(A).max(initial=0.0))
        np.testing.assert_allclose(np.diag(self_d), 0.0, atol=1e-6 * scale)

    @given(points)
    @settings(max_examples=30, deadline=None)
    def test_property_triangle_inequality(self, A):
        if A.shape[0] < 3:
            return
        d = euclidean_distances(A, A)
        n = A.shape[0]
        for i in range(min(n, 4)):
            for j in range(min(n, 4)):
                for k in range(min(n, 4)):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-6


class TestOtherMetrics:
    def test_manhattan(self):
        d = manhattan_distances([[0.0, 0.0]], [[1.0, -2.0]])
        assert d[0, 0] == pytest.approx(3.0)

    def test_chebyshev(self):
        d = chebyshev_distances([[0.0, 0.0]], [[1.0, -2.0]])
        assert d[0, 0] == pytest.approx(2.0)

    def test_metric_ordering(self):
        """chebyshev <= euclidean <= manhattan pointwise."""
        rng = np.random.default_rng(1)
        A, B = rng.standard_normal((6, 5)), rng.standard_normal((4, 5))
        c = chebyshev_distances(A, B)
        e = euclidean_distances(A, B)
        m = manhattan_distances(A, B)
        assert (c <= e + 1e-12).all()
        assert (e <= m + 1e-12).all()


class TestDispatch:
    @pytest.mark.parametrize(
        "name", ["euclidean", "sqeuclidean", "manhattan", "chebyshev"]
    )
    def test_known_metrics(self, name):
        d = pairwise_distances(np.ones((2, 3)), np.zeros((2, 3)), metric=name)
        assert d.shape == (2, 2)

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            pairwise_distances(np.ones((1, 2)), np.ones((1, 2)), metric="cosine")
