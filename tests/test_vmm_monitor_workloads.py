"""Unit tests for the monitoring agent and the paper workload profiles."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.vmm.devices import ConstantModel
from repro.vmm.host import HostServer
from repro.vmm.monitor import PerformanceMonitoringAgent
from repro.vmm.vm import METRICS, GuestVM
from repro.vmm.workloads import PAPER_TRACE_LAYOUT, build_vm, paper_vm_specs


def _ramp_vm():
    class Ramp(ConstantModel):
        def generate(self, n, rng):
            return np.arange(float(n))

    models = {m: ConstantModel(0.0) for m in METRICS}
    models["CPU_usedsec"] = ConstantModel(0.0)
    models["Memory_size"] = Ramp()
    return GuestVM(vm_id="R", description="ramp", models=models)


class TestMonitoringAgent:
    def test_two_archives(self):
        agent = PerformanceMonitoringAgent(HostServer())
        rrd = agent.collect(_ramp_vm(), 20, report_interval_minutes=5, seed=0)
        raw_t, raw_v = rrd.fetch("Memory_size", archive=0)
        con_t, con_v = rrd.fetch("Memory_size", archive=1)
        assert raw_v.size == 20
        assert con_v.size == 4

    def test_consolidation_is_average(self):
        agent = PerformanceMonitoringAgent(HostServer())
        rrd = agent.collect(_ramp_vm(), 10, report_interval_minutes=5, seed=0)
        _, v = rrd.fetch("Memory_size", archive=1)
        np.testing.assert_allclose(v, [2.0, 7.0])  # means of 0..4, 5..9

    def test_timestamps_are_minutes(self):
        agent = PerformanceMonitoringAgent(HostServer())
        rrd = agent.collect(_ramp_vm(), 10, report_interval_minutes=5, seed=0)
        t, _ = rrd.fetch("Memory_size", archive=0)
        np.testing.assert_array_equal(t, np.arange(10) * 60)

    def test_validation(self):
        agent = PerformanceMonitoringAgent(HostServer())
        with pytest.raises(ConfigurationError):
            agent.collect(_ramp_vm(), 0)
        with pytest.raises(ConfigurationError):
            agent.collect(_ramp_vm(), 10, report_interval_minutes=0)
        with pytest.raises(ConfigurationError):
            PerformanceMonitoringAgent(HostServer(), raw_rows=0)


class TestPaperLayout:
    def test_layout_matches_section7(self):
        assert PAPER_TRACE_LAYOUT["VM1"] == (7 * 24 * 60, 30)
        for vm in ("VM2", "VM3", "VM4", "VM5"):
            assert PAPER_TRACE_LAYOUT[vm] == (24 * 60, 5)

    def test_reported_point_counts(self):
        specs = {s.vm_id: s for s in paper_vm_specs(seed=0)}
        assert specs["VM1"].n_reported_points == 336
        assert specs["VM2"].n_reported_points == 288


class TestPaperProfiles:
    def test_five_vms(self):
        specs = paper_vm_specs(seed=0)
        assert [s.vm_id for s in specs] == ["VM1", "VM2", "VM3", "VM4", "VM5"]

    def test_every_vm_has_all_metrics(self):
        for spec in paper_vm_specs(seed=0):
            assert set(spec.vm.models) == set(METRICS)

    def test_nan_cells_match_table3(self):
        """The constant (unused) devices are exactly the paper's NaN cells."""
        specs = {s.vm_id: s for s in paper_vm_specs(seed=0)}
        expected_constant = {
            ("VM3", "Memory_swapped"),
            ("VM3", "NIC2_received"),
            ("VM3", "NIC2_transmitted"),
            ("VM3", "VD1_read"),
            ("VM3", "VD1_write"),
            ("VM5", "NIC1_received"),
            ("VM5", "NIC1_transmitted"),
            ("VM5", "VD2_read"),
        }
        actual = {
            (vm_id, metric)
            for vm_id, spec in specs.items()
            for metric, model in spec.vm.models.items()
            if isinstance(model, ConstantModel)
        }
        assert actual == expected_constant

    def test_build_single_vm(self):
        spec = build_vm("VM2", seed=1)
        assert spec.vm_id == "VM2"
        assert spec.report_interval_minutes == 5

    def test_build_unknown_vm(self):
        with pytest.raises(ConfigurationError):
            build_vm("VM9")

    def test_profiles_deterministic_in_seed(self):
        a = paper_vm_specs(seed=5)
        b = paper_vm_specs(seed=5)
        # VM1's job-driven CPU demand is the seeded structural part.
        da = a[0].vm.models["CPU_usedsec"].components[0].demand
        db = b[0].vm.models["CPU_usedsec"].components[0].demand
        np.testing.assert_array_equal(da, db)
