"""Unit and property tests for repro.util.stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import DataError
from repro.util.stats import (
    accuracy,
    autocorrelation,
    autocovariance,
    mae,
    mse,
    normalized_mse,
    rmse,
    summary_stats,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestMSE:
    def test_zero_for_perfect(self):
        assert mse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert mse([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_length_mismatch(self):
        with pytest.raises(DataError, match="differ"):
            mse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            mse([], [])

    @given(
        arrays(np.float64, st.integers(1, 50), elements=finite_floats),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_nonnegative_and_symmetric(self, x):
        y = np.zeros_like(x)
        assert mse(x, y) >= 0.0
        assert mse(x, y) == pytest.approx(mse(y, x))

    def test_rmse_is_sqrt(self):
        p, o = [0.0, 0.0], [3.0, 4.0]
        assert rmse(p, o) == pytest.approx(np.sqrt(mse(p, o)))

    def test_mae(self):
        assert mae([0.0, 0.0], [1.0, -3.0]) == pytest.approx(2.0)


class TestNormalizedMSE:
    def test_mean_predictor_scores_one(self):
        rng = np.random.default_rng(0)
        o = rng.standard_normal(1000)
        p = np.full_like(o, o.mean())
        assert normalized_mse(p, o) == pytest.approx(1.0, rel=1e-9)

    def test_explicit_variance(self):
        assert normalized_mse([0.0], [2.0], variance=4.0) == pytest.approx(1.0)

    def test_invalid_variance(self):
        with pytest.raises(DataError):
            normalized_mse([0.0], [1.0], variance=0.0)

    def test_constant_observed_falls_back_to_mse(self):
        assert normalized_mse([2.0, 2.0], [1.0, 1.0]) == pytest.approx(1.0)


class TestAccuracy:
    def test_full_agreement(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0

    def test_partial(self):
        assert accuracy([1, 1, 1, 1], [1, 2, 1, 2]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(DataError):
            accuracy([1], [1, 2])

    def test_empty(self):
        with pytest.raises(DataError):
            accuracy([], [])


class TestAutocovariance:
    def test_lag0_is_biased_variance(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        acov = autocovariance(x, 0)
        assert acov[0] == pytest.approx(x.var())

    def test_psd_property_on_ar1(self):
        """Biased estimator keeps |rho(k)| <= rho(0)."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal(500)
        acov = autocovariance(x, 20)
        assert np.all(np.abs(acov[1:]) <= acov[0] + 1e-12)

    def test_lag_bounds(self):
        with pytest.raises(DataError):
            autocovariance([1.0, 2.0, 3.0], 3)
        with pytest.raises(DataError):
            autocovariance([1.0, 2.0], -1)


class TestAutocorrelation:
    def test_lag0_is_one(self):
        rng = np.random.default_rng(4)
        acf = autocorrelation(rng.standard_normal(200), 5)
        assert acf[0] == pytest.approx(1.0)

    def test_ar1_estimate_close_to_phi(self):
        from repro.traces.synthetic import ar1_series

        x = ar1_series(20000, phi=0.8, seed=5)
        acf = autocorrelation(x, 1)
        assert acf[1] == pytest.approx(0.8, abs=0.05)

    def test_constant_series_raises(self):
        with pytest.raises(DataError, match="constant"):
            autocorrelation(np.ones(50), 2)


class TestSummaryStats:
    def test_fields(self):
        s = summary_stats([1.0, 2.0, 3.0, 4.0])
        assert s.length == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert not s.is_constant()

    def test_constant_detection(self):
        s = summary_stats(np.full(10, 7.0))
        assert s.is_constant()
        assert s.lag1_autocorr == 0.0
