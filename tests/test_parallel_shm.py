"""Unit tests for the shared-memory arena (`repro.parallel.shm`).

The arena is the transport layer of sharded training bursts, so the
properties pinned here are the ones the trainer relies on: carved
arrays round-trip bytes exactly, specs rebuild zero-copy views in an
attached process, release always unlinks (no `/dev/shm` leak, even
with live views or after an exception), and the active-segment
accounting tests use to assert leak-freedom actually tracks reality.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.parallel.shm import ShmArena, active_segments, attach


def _layout():
    return {
        "a": ((3, 5), np.float64),
        "b": ((7,), np.int64),
        "c": ((2, 3, 4), np.float32),
    }


class TestShmArena:
    def test_carve_roundtrip(self):
        with ShmArena(_layout()) as arena:
            a = arena.array("a")
            b = arena.array("b")
            c = arena.array("c")
            a[:] = np.arange(15, dtype=np.float64).reshape(3, 5)
            b[:] = np.arange(7)
            c[:] = 1.5
            np.testing.assert_array_equal(
                arena.array("a"), np.arange(15).reshape(3, 5)
            )
            np.testing.assert_array_equal(arena.array("b"), np.arange(7))
            assert (arena.array("c") == np.float32(1.5)).all()

    def test_offsets_are_aligned_and_disjoint(self):
        with ShmArena(_layout()) as arena:
            spans = []
            for key in _layout():
                spec = arena.spec(key)
                assert spec.offset % 64 == 0
                spans.append((spec.offset, spec.offset + spec.nbytes))
            spans.sort()
            for (_, hi), (lo, _) in zip(spans, spans[1:]):
                assert hi <= lo
            assert arena.nbytes >= max(hi for _, hi in spans)

    def test_writes_do_not_bleed_between_carves(self):
        with ShmArena(_layout()) as arena:
            arena.array("a")[:] = 0.0
            arena.array("b")[:] = 0
            arena.array("c")[:] = 0.0
            arena.array("b")[:] = -1
            assert (arena.array("a") == 0.0).all()
            assert (arena.array("c") == 0.0).all()

    def test_attach_sees_parent_writes(self):
        with ShmArena(_layout()) as arena:
            arena.array("a")[:] = 42.0
            with attach() as attachment:
                view = attachment.array(arena.spec("a"))
                assert (view == 42.0).all()
                view[0, 0] = -1.0
            assert arena.array("a")[0, 0] == -1.0

    def test_release_is_idempotent_and_tracked(self):
        arena = ShmArena(_layout())
        name = arena.name
        assert name in active_segments()
        arena.release()
        assert name not in active_segments()
        arena.release()  # second release is a no-op

    def test_release_with_live_view_still_unlinks(self):
        arena = ShmArena(_layout())
        view = arena.array("a")
        view[:] = 3.0
        name = arena.name
        # release() must not fail (or leak the segment) just because a
        # view is still outstanding; reading the view afterwards is
        # undefined — callers copy out before releasing.
        arena.release()
        assert name not in active_segments()
        del view

    def test_released_arena_rejects_array(self):
        arena = ShmArena(_layout())
        arena.release()
        with pytest.raises(ConfigurationError):
            arena.array("a")

    def test_context_manager_releases_on_exception(self):
        with pytest.raises(RuntimeError):
            with ShmArena(_layout()) as arena:
                name = arena.name
                raise RuntimeError("burst failed")
        assert name not in active_segments()

    def test_empty_layout_rejected(self):
        with pytest.raises(ConfigurationError):
            ShmArena({})

    def test_negative_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            ShmArena({"a": ((-1, 4), np.float64)})

    def test_zero_size_carve_allowed(self):
        # splice groups with reuse=0 carve (S, 0, 3) cache slabs
        with ShmArena({"empty": ((4, 0, 3), np.float64)}) as arena:
            assert arena.array("empty").shape == (4, 0, 3)

    def test_spec_is_picklable(self):
        import pickle

        with ShmArena(_layout()) as arena:
            spec = arena.spec("c")
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec

    def test_no_segments_leaked_across_suite(self):
        assert active_segments() == frozenset()
