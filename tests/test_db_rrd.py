"""Unit tests for the Round-Robin Database."""

import numpy as np
import pytest

from repro.db.rrd import ArchiveSpec, RoundRobinDatabase
from repro.exceptions import ConfigurationError, DatabaseError


def _rrd(archives=None, sources=("cpu", "mem")):
    return RoundRobinDatabase(step=60, sources=sources, archives=archives)


class TestArchiveSpec:
    def test_valid(self):
        spec = ArchiveSpec("average", 5, 100)
        assert spec.period == 500

    def test_bad_consolidation(self):
        with pytest.raises(ConfigurationError):
            ArchiveSpec("sum", 1, 10)

    def test_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            ArchiveSpec("average", 0, 10)
        with pytest.raises(ConfigurationError):
            ArchiveSpec("average", 1, 0)


class TestConstruction:
    def test_requires_sources(self):
        with pytest.raises(ConfigurationError):
            RoundRobinDatabase(step=60, sources=[])

    def test_duplicate_sources(self):
        with pytest.raises(ConfigurationError):
            RoundRobinDatabase(step=60, sources=["a", "a"])

    def test_requires_archives(self):
        with pytest.raises(ConfigurationError):
            RoundRobinDatabase(step=60, sources=["a"], archives=[])


class TestUpdates:
    def test_timestamps_must_be_clocked(self):
        rrd = _rrd()
        rrd.update(0, {"cpu": 1.0, "mem": 2.0})
        with pytest.raises(DatabaseError, match="expected 60"):
            rrd.update(120, {"cpu": 1.0, "mem": 2.0})

    def test_source_mismatch(self):
        rrd = _rrd()
        with pytest.raises(DatabaseError, match="mismatch"):
            rrd.update(0, {"cpu": 1.0})
        with pytest.raises(DatabaseError, match="mismatch"):
            rrd.update(0, {"cpu": 1.0, "mem": 2.0, "disk": 3.0})

    def test_non_finite_rejected(self):
        rrd = _rrd()
        with pytest.raises(DatabaseError, match="non-finite"):
            rrd.update(0, {"cpu": float("nan"), "mem": 1.0})

    def test_counters(self):
        rrd = _rrd()
        for i in range(3):
            rrd.update(i * 60, {"cpu": float(i), "mem": 0.0})
        assert rrd.n_updates == 3
        assert rrd.last_timestamp == 120


class TestFetch:
    def test_raw_roundtrip(self):
        rrd = _rrd()
        for i in range(5):
            rrd.update(i * 60, {"cpu": float(i), "mem": float(-i)})
        t, v = rrd.fetch("cpu")
        np.testing.assert_array_equal(v, [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(t, np.arange(5) * 60)

    def test_average_consolidation(self):
        rrd = _rrd(archives=[ArchiveSpec("average", 5, 10)])
        for i in range(10):
            rrd.update(i * 60, {"cpu": float(i), "mem": 0.0})
        _, v = rrd.fetch("cpu")
        np.testing.assert_allclose(v, [2.0, 7.0])  # means of 0..4, 5..9

    @pytest.mark.parametrize(
        "cf,expected", [("max", 4.0), ("min", 0.0), ("last", 4.0)]
    )
    def test_other_consolidations(self, cf, expected):
        rrd = _rrd(archives=[ArchiveSpec(cf, 5, 10)])
        for i in range(5):
            rrd.update(i * 60, {"cpu": float(i), "mem": 0.0})
        _, v = rrd.fetch("cpu")
        assert v[0] == expected

    def test_round_robin_overwrite(self):
        """Old rows fall off once capacity is exceeded; order stays
        chronological."""
        rrd = _rrd(archives=[ArchiveSpec("average", 1, 3)])
        for i in range(5):
            rrd.update(i * 60, {"cpu": float(i), "mem": 0.0})
        t, v = rrd.fetch("cpu")
        np.testing.assert_array_equal(v, [2, 3, 4])
        assert (np.diff(t) > 0).all()

    def test_time_range_filter(self):
        rrd = _rrd()
        for i in range(10):
            rrd.update(i * 60, {"cpu": float(i), "mem": 0.0})
        _, v = rrd.fetch("cpu", start=120, end=240)
        np.testing.assert_array_equal(v, [2, 3, 4])

    def test_incomplete_bucket_not_visible(self):
        rrd = _rrd(archives=[ArchiveSpec("average", 5, 10)])
        for i in range(4):  # one short of a full bucket
            rrd.update(i * 60, {"cpu": 1.0, "mem": 0.0})
        _, v = rrd.fetch("cpu")
        assert v.size == 0

    def test_unknown_source(self):
        with pytest.raises(DatabaseError):
            _rrd().fetch("disk")

    def test_bad_archive_index(self):
        with pytest.raises(DatabaseError):
            _rrd().fetch("cpu", archive=5)

    def test_empty_fetch(self):
        t, v = _rrd().fetch("cpu")
        assert t.size == 0 and v.size == 0
