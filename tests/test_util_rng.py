"""Unit tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import resolve_rng, spawn_rngs


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = resolve_rng(7).integers(0, 1 << 30, 10)
        b = resolve_rng(7).integers(0, 1 << 30, 10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert resolve_rng(g) is g


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent_and_deterministic(self):
        a = [g.integers(0, 1 << 30, 4) for g in spawn_rngs(42, 3)]
        b = [g.integers(0, 1 << 30, 4) for g in spawn_rngs(42, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
        # Different children produce different streams.
        assert not np.array_equal(a[0], a[1])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_from_generator_varies(self):
        g = np.random.default_rng(9)
        first = spawn_rngs(g, 1)[0].integers(0, 1 << 30, 4)
        second = spawn_rngs(g, 1)[0].integers(0, 1 << 30, 4)
        assert not np.array_equal(first, second)
