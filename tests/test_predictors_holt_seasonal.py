"""Unit tests for the Holt and seasonal-naive predictors."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.predictors.holt import HoltPredictor
from repro.predictors.seasonal import SeasonalNaivePredictor
from repro.traces.synthetic import sine_series
from repro.util.windows import frame_with_targets


class TestHolt:
    def test_exact_on_line(self):
        """With full trend tracking a straight line extrapolates exactly."""
        series = 2.0 + 3.0 * np.arange(8.0)
        p = HoltPredictor(level_alpha=1.0, trend_beta=1.0)
        assert p.predict_next(series) == pytest.approx(2.0 + 3.0 * 8.0)

    def test_constant_window(self):
        p = HoltPredictor()
        assert p.predict_next(np.full(6, 4.0)) == pytest.approx(4.0)

    def test_window_of_one(self):
        p = HoltPredictor()
        assert p.predict_next([7.0]) == pytest.approx(7.0)

    def test_tracks_ramp_better_than_last_on_momentum(self):
        import scipy.signal

        rng = np.random.default_rng(0)
        v = scipy.signal.lfilter([1.0], [1.0, -0.9], rng.standard_normal(2000))
        x = np.asarray(scipy.signal.lfilter([1.0], [1.0, -0.98], v))
        F, y = frame_with_targets(x, 8)
        # Responsive constants for a strongly trending series (the
        # defaults trade responsiveness for noise suppression).
        holt = HoltPredictor(level_alpha=0.9, trend_beta=0.6).predict_batch(F)
        last = F[:, -1]
        assert np.mean((holt - y) ** 2) < np.mean((last - y) ** 2)

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            HoltPredictor(level_alpha=0.0)
        with pytest.raises(ConfigurationError):
            HoltPredictor(trend_beta=1.5)

    def test_batch_matches_single(self):
        p = HoltPredictor()
        frames = np.random.default_rng(1).standard_normal((5, 6))
        batch = p.predict_batch(frames)
        singles = [p.predict_next(f) for f in frames]
        np.testing.assert_allclose(batch, singles)


class TestSeasonalNaive:
    def test_fixed_period_lookback(self):
        p = SeasonalNaivePredictor(period=3)
        # frame [a b c d e]: one period back from the next value is c.
        assert p.predict_next([1.0, 2.0, 3.0, 4.0, 5.0]) == pytest.approx(3.0)

    def test_exact_on_pure_cycle(self):
        x = sine_series(300, period=12, noise_std=0.0)
        p = SeasonalNaivePredictor(period=12)
        F, y = frame_with_targets(x, 16)
        np.testing.assert_allclose(p.predict_batch(F), y, atol=1e-9)

    def test_beats_pool_models_on_periodic_trace(self):
        x = sine_series(600, period=12, noise_std=0.05, seed=2)
        p = SeasonalNaivePredictor(period=12)
        F, y = frame_with_targets(x, 16)
        seasonal_mse = np.mean((p.predict_batch(F) - y) ** 2)
        last_mse = np.mean((F[:, -1] - y) ** 2)
        sw_mse = np.mean((F.mean(axis=1) - y) ** 2)
        assert seasonal_mse < last_mse
        assert seasonal_mse < sw_mse

    def test_period_estimated_from_autocorrelation(self):
        x = sine_series(600, period=24, noise_std=0.1, seed=3)
        p = SeasonalNaivePredictor()
        p.fit(x)
        assert p.estimated_period_ == pytest.approx(24, abs=1)

    def test_fallback_to_last_when_frame_short(self):
        p = SeasonalNaivePredictor(period=10)
        assert p.predict_next([1.0, 2.0, 3.0]) == pytest.approx(3.0)

    def test_estimation_needs_fit(self):
        from repro.exceptions import NotFittedError

        p = SeasonalNaivePredictor()  # no fixed period
        with pytest.raises(NotFittedError):
            p.predict_next(np.arange(20.0))

    def test_constant_series_estimate(self):
        p = SeasonalNaivePredictor()
        p.fit(np.full(100, 3.0))
        assert p.estimated_period_ == p.min_period

    def test_too_short_for_estimation(self):
        p = SeasonalNaivePredictor(min_period=8)
        with pytest.raises(DataError):
            p.fit(np.arange(5.0))

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            SeasonalNaivePredictor(period=0)
        with pytest.raises(ConfigurationError):
            SeasonalNaivePredictor(min_period=1)
        with pytest.raises(ConfigurationError):
            SeasonalNaivePredictor(min_period=10, max_period=5)

    def test_registry_names(self):
        from repro.predictors import available_predictors

        names = available_predictors()
        assert "HOLT" in names and "SEASONAL" in names
