"""Exception-hierarchy tests and failure-injection tests.

The failure injections check that a fault inside one component surfaces
as a clear library error (or propagates cleanly) instead of corrupting
state — the property that makes long online runs debuggable.
"""

import numpy as np
import pytest

from repro.core import LARConfig, LARPredictor, PredictionQualityAssuror
from repro.core.runner import StrategyRunner
from repro.exceptions import (
    ConfigurationError,
    DataError,
    DatabaseError,
    DuplicateKeyError,
    InsufficientDataError,
    MissingSeriesError,
    NotFittedError,
    ReproError,
    UnknownPredictorError,
)
from repro.learn.base import Classifier
from repro.selection.learned import LearnedSelection
from repro.traces.synthetic import ar1_series


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            DataError,
            DatabaseError,
            DuplicateKeyError,
            MissingSeriesError,
            NotFittedError,
            UnknownPredictorError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        """API boundaries can catch ValueError for config mistakes."""
        assert issubclass(ConfigurationError, ValueError)

    def test_not_fitted_is_runtime_error(self):
        assert issubclass(NotFittedError, RuntimeError)

    def test_insufficient_data_carries_numbers(self):
        err = InsufficientDataError(10, 3, what="history")
        assert err.required == 10 and err.actual == 3
        assert "history" in str(err)

    def test_unknown_predictor_lists_available(self):
        err = UnknownPredictorError("FOO", ("LAST", "AR"))
        assert "FOO" in str(err)
        assert "LAST" in str(err)

    def test_one_catch_covers_everything(self):
        """A caller wrapping the library in `except ReproError` catches
        every library-raised failure in a representative workflow."""
        with pytest.raises(ReproError):
            LARPredictor().evaluate([1.0] * 50)
        with pytest.raises(ReproError):
            LARConfig(window=1)
        with pytest.raises(ReproError):
            LARPredictor().train([1.0, np.nan, 2.0] * 20)


class _ExplodingClassifier(Classifier):
    """Fails on the n-th predict call."""

    def __init__(self, explode_on_fit=False):
        super().__init__()
        self.explode_on_fit = explode_on_fit

    def _fit(self, X, y):
        if self.explode_on_fit:
            raise RuntimeError("injected fit failure")
        self._majority = int(np.bincount(y).argmax())

    def _predict(self, X):
        raise RuntimeError("injected predict failure")


class TestFailureInjection:
    def test_classifier_fit_failure_propagates_cleanly(self, smooth_series):
        lar = LARPredictor(classifier=_ExplodingClassifier(explode_on_fit=True))
        with pytest.raises(RuntimeError, match="injected fit"):
            lar.train(smooth_series)
        # The predictor must not claim to be trained after the failure.
        assert not lar.is_trained

    def test_classifier_predict_failure_propagates(self, smooth_series):
        lar = LARPredictor(classifier=_ExplodingClassifier())
        lar.train(smooth_series[:200])
        with pytest.raises(RuntimeError, match="injected predict"):
            lar.evaluate(smooth_series[200:])

    def test_qa_callback_failure_propagates_with_state_intact(self):
        def bad_callback(record):
            raise ValueError("pager exploded")

        qa = PredictionQualityAssuror(
            threshold=0.1, audit_interval=1, on_breach=bad_callback
        )
        with pytest.raises(ValueError, match="pager"):
            qa.record(0.0, 10.0)
        # The breach itself was still latched before the callback ran.
        assert qa.retraining_due

    def test_non_finite_stream_value_rejected_before_state_change(
        self, trained_lar
    ):
        lar, series = trained_lar
        qa = PredictionQualityAssuror()
        bad = np.concatenate([series[:20], [np.nan]])
        with pytest.raises(ReproError):
            lar.run_with_qa(bad, qa)

    def test_retrain_failure_leaves_predictor_unusable_not_corrupt(
        self, smooth_series
    ):
        """A failed retrain (too-short data) must not leave a half-new
        model pretending to be trained."""
        lar = LARPredictor(LARConfig(window=5)).train(smooth_series[:200])
        with pytest.raises(ReproError):
            lar.retrain(smooth_series[:4])
        assert not lar.is_trained

    def test_strategy_with_foreign_pool_labels_rejected(self, smooth_series):
        """A classifier trained against a bigger pool cannot silently
        drive a smaller one."""
        big = StrategyRunner(LARConfig(window=6, extended_pool=True))
        big.fit(smooth_series[:200])
        selection = LearnedSelection()
        selection.fit(big.pool, big.train_data)

        small = StrategyRunner(LARConfig(window=6))
        small.fit(smooth_series[:200])
        prepared = small.prepare_test(smooth_series[200:])
        labels = np.atleast_1d(selection.classifier.predict(prepared.features))
        if labels.max() > 3:  # the interesting case: foreign labels appear
            with pytest.raises(ConfigurationError):
                selection.select(small.pool, prepared)
