"""Unit tests for the alternative classifiers and voting utilities."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.learn.centroid import NearestCentroidClassifier
from repro.learn.knn import KNNClassifier
from repro.learn.logistic import SoftmaxClassifier
from repro.learn.naive_bayes import GaussianNBClassifier
from repro.learn.tree import DecisionTreeClassifier
from repro.learn.voting import VotingEnsemble, majority_vote, weighted_vote


def _blobs(n=80, seed=0, gap=6.0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, 2)) + [-gap / 2, 0.0]
    b = rng.standard_normal((n, 2)) + [gap / 2, 0.0]
    X = np.vstack([a, b])
    y = np.array([1] * n + [2] * n)
    return X, y


ALL_CLASSIFIERS = [
    lambda: KNNClassifier(k=3),
    GaussianNBClassifier,
    NearestCentroidClassifier,
    lambda: DecisionTreeClassifier(max_depth=4),
    SoftmaxClassifier,
]


@pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
class TestClassifierContract:
    """Every classifier honours the shared Classifier contract."""

    def test_separable_accuracy(self, factory):
        X, y = _blobs()
        clf = factory().fit(X, y)
        assert clf.score(X, y) > 0.9

    def test_requires_fit(self, factory):
        with pytest.raises(NotFittedError):
            factory().predict(np.zeros((1, 2)))

    def test_single_class_training(self, factory):
        X = np.random.default_rng(1).standard_normal((10, 2))
        clf = factory().fit(X, np.full(10, 3))
        assert clf.predict_one([0.0, 0.0]) == 3

    def test_label_shape_mismatch(self, factory):
        with pytest.raises(DataError):
            factory().fit(np.zeros((4, 2)), [1, 2])

    def test_zero_samples(self, factory):
        with pytest.raises(DataError):
            factory().fit(np.zeros((0, 2)), [])

    def test_1d_features_promoted(self, factory):
        X = np.array([0.0, 0.1, 5.0, 5.1])
        y = np.array([1, 1, 2, 2])
        clf = factory().fit(X, y)
        assert clf.predict_one([5.05]) == 2


class TestGaussianNB:
    def test_proba_sums_to_one(self):
        X, y = _blobs()
        nb = GaussianNBClassifier().fit(X, y)
        proba = nb.predict_proba(np.zeros((5, 2)))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_prior_influences_prediction(self):
        """With overlapping classes, the more frequent class wins at the
        midpoint."""
        rng = np.random.default_rng(2)
        X = np.vstack(
            [rng.standard_normal((90, 1)), rng.standard_normal((10, 1)) + 0.5]
        )
        y = np.array([1] * 90 + [2] * 10)
        nb = GaussianNBClassifier().fit(X, y)
        assert nb.predict_one([0.25]) == 1

    def test_constant_feature_survives(self):
        X = np.array([[1.0, 0.0], [1.0, 1.0], [1.0, 5.0], [1.0, 6.0]])
        y = np.array([1, 1, 2, 2])
        nb = GaussianNBClassifier().fit(X, y)
        assert nb.predict_one([1.0, 5.5]) == 2

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError):
            GaussianNBClassifier(var_smoothing=-1.0)


class TestNearestCentroid:
    def test_centroids_are_class_means(self):
        X = np.array([[0.0, 0.0], [2.0, 2.0], [10.0, 10.0], [12.0, 12.0]])
        y = np.array([1, 1, 2, 2])
        nc = NearestCentroidClassifier().fit(X, y)
        np.testing.assert_allclose(nc.centroids_[0], [1.0, 1.0])
        np.testing.assert_allclose(nc.centroids_[1], [11.0, 11.0])


class TestDecisionTree:
    def test_stump_depth(self):
        X, y = _blobs()
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert tree.depth() <= 1

    def test_min_samples_leaf_limits_overfit(self):
        X, y = _blobs(n=30)
        big_leaf = DecisionTreeClassifier(max_depth=10, min_samples_leaf=25).fit(X, y)
        assert big_leaf.depth() <= 2

    def test_xor_needs_depth_two(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        X = np.repeat(X, 5, axis=0)
        y = np.array([1, 2, 2, 1] * 5)
        y = np.repeat(np.array([1, 2, 2, 1]), 5)
        deep = DecisionTreeClassifier(max_depth=3, min_samples_leaf=1).fit(X, y)
        assert deep.score(X, y) == 1.0

    def test_invalid_params(self):
        with pytest.raises(Exception):
            DecisionTreeClassifier(max_depth=0)


class TestMajorityVote:
    def test_simple_majority(self):
        out = majority_vote([[1, 1, 2], [2, 2, 1]])
        np.testing.assert_array_equal(out, [1, 2])

    def test_tie_breaks_to_earliest(self):
        """A 1-1-1 tie returns the first (nearest) voter's label."""
        out = majority_vote([[3, 1, 2]])
        assert out[0] == 3

    def test_two_way_tie_earliest_occurrence(self):
        out = majority_vote([[2, 1, 2, 1]])
        assert out[0] == 2

    def test_non_integer_rejected(self):
        with pytest.raises(DataError):
            majority_vote([[1.5, 2.5]])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            majority_vote(np.zeros((1, 0), dtype=int))


class TestWeightedVote:
    def test_weights_override_count(self):
        out = weighted_vote([[1, 2, 2]], [5.0, 1.0, 1.0])
        assert out[0] == 1

    def test_per_row_weights(self):
        labels = [[1, 2], [1, 2]]
        weights = [[1.0, 3.0], [3.0, 1.0]]
        np.testing.assert_array_equal(weighted_vote(labels, weights), [2, 1])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(DataError):
            weighted_vote([[1, 2]], [0.0, 0.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(DataError):
            weighted_vote([[1, 2]], [-1.0, 1.0])


class TestVotingEnsemble:
    def test_ensemble_accuracy(self):
        X, y = _blobs()
        ens = VotingEnsemble(
            [KNNClassifier(k=3), GaussianNBClassifier(), NearestCentroidClassifier()]
        ).fit(X, y)
        assert ens.score(X, y) > 0.9

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            VotingEnsemble([])

    def test_weight_length_checked(self):
        with pytest.raises(ConfigurationError):
            VotingEnsemble([GaussianNBClassifier()], weights=[1.0, 2.0])

    def test_non_classifier_member_rejected(self):
        with pytest.raises(ConfigurationError):
            VotingEnsemble(["not a classifier"])

    def test_weighted_member_dominates(self):
        X, y = _blobs()
        # Train one member on flipped labels; with overwhelming weight it
        # should control the output.
        good = KNNClassifier(k=1)
        ens = VotingEnsemble([good, NearestCentroidClassifier()], weights=[100.0, 1.0])
        ens.fit(X, y)
        assert ens.score(X, y) > 0.95


class TestSoftmax:
    def test_proba_sums_to_one(self):
        X, y = _blobs()
        clf = SoftmaxClassifier().fit(X, y)
        proba = clf.predict_proba(np.zeros((5, 2)))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_linear_boundary_three_classes(self):
        rng = np.random.default_rng(5)
        centers = np.array([[-6.0, 0.0], [0.0, 6.0], [6.0, 0.0]])
        X = np.vstack([rng.standard_normal((50, 2)) + c for c in centers])
        y = np.repeat([1, 2, 3], 50)
        clf = SoftmaxClassifier().fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_early_stopping(self):
        X, y = _blobs(n=30)
        clf = SoftmaxClassifier(epochs=10_000, tol=1e-4).fit(X, y)
        assert clf.n_iter_ < 10_000

    def test_regularization_shrinks_weights(self):
        X, y = _blobs(n=60)
        loose = SoftmaxClassifier(l2=0.0).fit(X, y)
        tight = SoftmaxClassifier(l2=10.0).fit(X, y)
        assert np.abs(tight._W).sum() < np.abs(loose._W).sum()

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            SoftmaxClassifier(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            SoftmaxClassifier(epochs=0)
        with pytest.raises(ConfigurationError):
            SoftmaxClassifier(l2=-1.0)
