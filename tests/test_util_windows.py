"""Unit and property tests for repro.util.windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InsufficientDataError
from repro.util.windows import frame_series, frame_with_targets, num_frames, sliding_windows


class TestNumFrames:
    def test_exact(self):
        assert num_frames(10, 3) == 8

    def test_equal_length(self):
        assert num_frames(5, 5) == 1

    def test_too_short(self):
        assert num_frames(4, 5) == 0


class TestSlidingWindows:
    def test_shape_and_content(self):
        w = sliding_windows([1.0, 2.0, 3.0, 4.0], 2)
        assert w.shape == (3, 2)
        np.testing.assert_array_equal(w, [[1, 2], [2, 3], [3, 4]])

    def test_view_is_readonly(self):
        w = sliding_windows(np.arange(5.0), 2)
        with pytest.raises(ValueError):
            w[0, 0] = 99.0

    def test_too_short_raises(self):
        with pytest.raises(InsufficientDataError) as exc:
            sliding_windows([1.0, 2.0], 5)
        assert exc.value.required == 5
        assert exc.value.actual == 2

    def test_window_one(self):
        w = sliding_windows([3.0, 4.0], 1)
        assert w.shape == (2, 1)


class TestFrameSeries:
    def test_copy_is_writable(self):
        f = frame_series(np.arange(6.0), 3)
        f[0, 0] = 42.0  # must not raise
        assert f[0, 0] == 42.0

    def test_does_not_alias_input(self):
        x = np.arange(6.0)
        f = frame_series(x, 3)
        f[:] = 0.0
        assert x[0] == 0.0 or True  # input unchanged check below
        np.testing.assert_array_equal(x, np.arange(6.0))


class TestFrameWithTargets:
    def test_alignment(self):
        X, y = frame_with_targets([1.0, 2.0, 3.0, 4.0, 5.0], 2)
        np.testing.assert_array_equal(X, [[1, 2], [2, 3], [3, 4]])
        np.testing.assert_array_equal(y, [3, 4, 5])

    def test_minimum_length(self):
        with pytest.raises(InsufficientDataError):
            frame_with_targets([1.0, 2.0, 3.0], 3)

    def test_outputs_readonly(self):
        X, y = frame_with_targets(np.arange(5.0), 2)
        with pytest.raises(ValueError):
            X[0, 0] = 1.0
        with pytest.raises(ValueError):
            y[0] = 1.0

    @given(
        n=st.integers(min_value=3, max_value=200),
        window=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_counts_and_alignment(self, n, window):
        """Every frame's target is the element right after the frame."""
        series = np.arange(float(n))
        if n < window + 1:
            with pytest.raises(InsufficientDataError):
                frame_with_targets(series, window)
            return
        X, y = frame_with_targets(series, window)
        assert X.shape == (n - window, window)
        assert y.shape == (n - window,)
        # For arange input, frame i ends at value i+window-1 and the
        # target is i+window.
        np.testing.assert_array_equal(X[:, -1] + 1.0, y)
