"""k-Nearest-Neighbour classification (paper §5.1).

The LARPredictor's best-predictor forecaster: memory-based, no training
beyond storing the labelled windows, classification by majority vote of
the k = 3 closest training windows under Euclidean distance in the
PCA-reduced feature space.

Two query backends are provided:

* ``brute`` — one BLAS-backed distance matrix plus a deterministic
  top-k selection; optimal for the small training sets of a single
  trace fold.
* ``kd_tree`` — the :class:`repro.learn.kdtree.KDTree` index; wins when
  the training set is large and the feature dimension small (exactly the
  n = 2 PCA regime), reproducing §7.3's complexity discussion.
* ``auto`` — picks ``kd_tree`` when it is expected to pay off.

Storage is an amortized growth buffer: the memory lives in a
capacity-doubling ring (``_Xbuf``/``_ybuf`` plus start/end offsets), so
:meth:`KNNClassifier.partial_fit` appends in O(1) amortized time instead
of the O(n) ``vstack`` copy it once paid per observation, and
:meth:`KNNClassifier.discard_oldest` retires the oldest rows by moving
an offset instead of refitting. The fleet's batched tick engine
(:mod:`repro.serving.engine`) mirrors this memory into stacked tensors;
the ``store_generation`` / ``appended_total_`` / ``discarded_total_``
counters and :meth:`KNNClassifier.rows_since` exist so it can stay in
sync incrementally.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.learn.base import Classifier
from repro.learn.kdtree import KDTree
from repro.learn.topk import lexicographic_topk
from repro.learn.voting import majority_vote, weighted_vote
from repro.learn.distance import squared_euclidean_distances

__all__ = ["KNNClassifier", "bulk_learn_rows"]

_BACKENDS = ("auto", "brute", "kd_tree")
# Below this many training points a vectorized scan beats tree traversal.
_AUTO_TREE_THRESHOLD = 2048
# KD-trees lose their pruning power in high dimensions.
_AUTO_TREE_MAX_DIM = 8
_MIN_CAPACITY = 8


def _round_capacity(n: int) -> int:
    cap = _MIN_CAPACITY
    while cap < n:
        cap *= 2
    return cap


def _label_values_counts(y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted unique labels with counts — ``np.unique(y,
    return_counts=True)`` through a bincount fast path for the small
    non-negative label alphabets the predictor pools emit (integer
    counting, so the result is identical; the batched fleet trainer
    builds thousands of classifiers per burst and the sort-based
    ``np.unique`` was measurable there)."""
    if y.size and y.min() >= 0 and y.max() <= 64:
        counts = np.bincount(y)
        values = np.flatnonzero(counts)
        return values, counts[values]
    return np.unique(y, return_counts=True)


class KNNClassifier(Classifier):
    """Majority-vote k-NN over Euclidean distance.

    Parameters
    ----------
    k:
        Neighbourhood size; must be odd (paper: "the majority vote among
        the k (an odd number) neighbors"). Odd k prevents two-way ties;
        residual multi-class ties are broken in favour of the label of
        the nearest neighbour within the tie (a deterministic rule the
        tests pin down). Among *equidistant* neighbours, the one stored
        earliest in the memory ranks first, so queries are deterministic
        even when the memory holds duplicate feature rows.
    algorithm:
        ``brute``, ``kd_tree``, or ``auto``.
    leaf_size:
        Leaf size for the KD-tree backend.
    weights:
        ``"uniform"`` is the paper's plain majority vote; ``"distance"``
        weights each neighbour's vote by inverse distance (the weighted
        voting strategy of the paper's ref [16]) — an exact-match
        neighbour then dominates the vote outright.
    """

    def __init__(
        self,
        k: int = 3,
        *,
        algorithm: str = "auto",
        leaf_size: int = 16,
        weights: str = "uniform",
    ):
        super().__init__()
        if not isinstance(k, (int, np.integer)) or isinstance(k, bool) or k < 1:
            raise ConfigurationError(f"k must be a positive integer, got {k!r}")
        if k % 2 == 0:
            raise ConfigurationError(f"k must be odd to avoid vote ties, got {k}")
        if algorithm not in _BACKENDS:
            raise ConfigurationError(
                f"algorithm must be one of {_BACKENDS}, got {algorithm!r}"
            )
        if weights not in ("uniform", "distance"):
            raise ConfigurationError(
                f"weights must be 'uniform' or 'distance', got {weights!r}"
            )
        self.k = int(k)
        self.algorithm = algorithm
        self.leaf_size = int(leaf_size)
        self.weights = weights
        self._Xbuf: np.ndarray | None = None
        self._ybuf: np.ndarray | None = None
        self._buf_start = 0
        self._buf_end = 0
        self._appended = 0
        self._discarded = 0
        self._label_counts: dict[int, int] = {}
        #: Bumped on every :meth:`fit`; mirrors (the batched engine)
        #: treat a bump as "reload everything".
        self.store_generation = 0
        self._tree: KDTree | None = None

    @classmethod
    def from_rows(
        cls,
        X: np.ndarray,
        y: np.ndarray,
        *,
        k: int = 3,
        algorithm: str = "auto",
        leaf_size: int = 16,
        weights: str = "uniform",
        label_counts: dict[int, int] | None = None,
    ) -> "KNNClassifier":
        """Build a fitted classifier directly from precomputed memory rows.

        The batched fleet trainer computes every stream's (feature,
        label) training rows in stacked tensors; this constructor turns
        one stream's slice into a classifier whose internal state is
        indistinguishable from ``KNNClassifier(k).fit(X, y)`` — same
        growth-buffer capacity, offsets, and counters (the KD-tree
        index, when the backend resolves to one, is built lazily on the
        first query either way). Rows must already be
        validated: finite float64 features, int64 labels. A caller that
        already counted the labels (the batched trainer counts whole
        bursts in one vectorized pass) hands them in as *label_counts* —
        ``{label: count}`` in ascending label order, zero counts
        omitted — and the per-classifier counting pass is skipped.
        """
        clf = cls(k, algorithm=algorithm, leaf_size=leaf_size, weights=weights)
        X = np.ascontiguousarray(X, dtype=np.float64)
        y = np.ascontiguousarray(y, dtype=np.int64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ConfigurationError(
                f"rows must be (n, d) features with n labels, got "
                f"{X.shape} and {y.shape}"
            )
        if y.size == 0:
            raise ConfigurationError("cannot build a classifier from zero rows")
        clf._n_features = X.shape[1]
        clf._fit(X, y, label_counts=label_counts)
        # _fit already counted the labels in sorted order; materializing
        # classes_ from those keys skips a second np.unique pass.
        clf.classes_ = np.fromiter(
            clf._label_counts, dtype=np.int64, count=len(clf._label_counts)
        )
        return clf

    # -- storage views --------------------------------------------------------

    @property
    def _X(self) -> np.ndarray | None:
        """Live memory rows, oldest first (a view into the growth buffer)."""
        if self._Xbuf is None:
            return None
        return self._Xbuf[self._buf_start : self._buf_end]

    @property
    def _y(self) -> np.ndarray | None:
        """Live labels, oldest first (a view into the growth buffer)."""
        if self._ybuf is None:
            return None
        return self._ybuf[self._buf_start : self._buf_end]

    @property
    def appended_total_(self) -> int:
        """Absolute count of rows ever appended since the last fit."""
        return self._appended

    @property
    def discarded_total_(self) -> int:
        """Absolute count of oldest rows retired since the last fit."""
        return self._discarded

    def rows_since(self, abs_from: int) -> tuple[np.ndarray, np.ndarray, int]:
        """Live rows with absolute index ``>= abs_from``.

        Absolute indices count every row appended since the last fit
        (the initial training set occupies ``0 .. n-1``). Returns
        ``(X_rows, y_rows, first_abs)`` where ``first_abs`` is the
        absolute index of the first returned row — ``max(abs_from,
        discarded_total_)``, since already-retired rows cannot be
        returned. The views stay valid until the next mutation.
        """
        self._require_fitted()
        lo = max(int(abs_from), self._discarded)
        offset = self._buf_start + (lo - self._discarded)
        return (
            self._Xbuf[offset : self._buf_end],  # type: ignore[index]
            self._ybuf[offset : self._buf_end],  # type: ignore[index]
            lo,
        )

    # -- hooks ---------------------------------------------------------------

    def _fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        label_counts: dict[int, int] | None = None,
    ) -> None:
        if self.k > X.shape[0]:
            raise ConfigurationError(
                f"k={self.k} exceeds the {X.shape[0]} training samples"
            )
        n, d = X.shape
        cap = _round_capacity(n)
        self._Xbuf = np.empty((cap, d), dtype=np.float64)
        self._ybuf = np.empty(cap, dtype=np.int64)
        self._Xbuf[:n] = X
        self._ybuf[:n] = y
        self._buf_start = 0
        self._buf_end = n
        self._appended = n
        self._discarded = 0
        if label_counts is None:
            values, counts = _label_values_counts(y)
            label_counts = {int(v): int(c) for v, c in zip(values, counts)}
        self._label_counts = dict(label_counts)
        self.store_generation += 1
        # The KD-tree index (when the backend resolves to one) is built
        # lazily on the first query, exactly like after a partial_fit
        # mutation: a freshly fitted memory is often trimmed straight to
        # ``max_memory`` (the online predictors evict right after fit),
        # and an eager index over the pre-eviction rows would be thrown
        # away unqueried.
        self._tree = None

    def _predict(self, X: np.ndarray) -> np.ndarray:
        distances, neighbor_idx = self.kneighbors(X)
        neighbor_labels = self._y[neighbor_idx]  # type: ignore[index]
        if self.weights == "distance":
            # Inverse-distance weighting; an exact match (distance 0)
            # would divide by zero, so such neighbours get a weight that
            # dwarfs every finite one *in their own row* — the row
            # maximum, not a global one, keeps unrelated queries from
            # inflating each other's exact-match weight.
            with np.errstate(divide="ignore"):
                w = 1.0 / distances
            exact = ~np.isfinite(w)
            if exact.any():
                w[exact] = 0.0
                row_max = np.maximum(w.max(axis=1), 1.0)
                w = np.where(exact, row_max[:, None] * 1e6, w)
            return weighted_vote(neighbor_labels, w)
        # Neighbours arrive sorted by distance, so "first label in the
        # row" is the 1-NN label majority_vote uses for tie-breaking.
        return majority_vote(neighbor_labels)

    # -- public extras ---------------------------------------------------------

    def partial_fit(self, X, y) -> "KNNClassifier":
        """Append labelled samples to the memory (online learning path).

        k-NN is memory-based, so incremental learning is exact: new
        (sample, label) pairs simply join the stored training set. The
        append lands in a capacity-doubling growth buffer (O(1)
        amortized; no per-call copy of the whole memory). The KD-tree
        index, if one was built, is invalidated and lazily rebuilt on
        the next query batch under the ``auto``/``kd_tree`` policy.
        """
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y)
        if y.ndim == 0:
            y = y[None]
        if X.shape[0] != y.shape[0]:
            raise ConfigurationError(
                f"{X.shape[0]} samples but {y.shape[0]} labels"
            )
        if X.shape[1] != self._Xbuf.shape[1]:  # type: ignore[union-attr]
            raise ConfigurationError(
                f"samples have {X.shape[1]} features, memory has "
                f"{self._Xbuf.shape[1]}"  # type: ignore[union-attr]
            )
        if not np.issubdtype(y.dtype, np.integer):
            y_int = y.astype(np.int64)
            if not np.array_equal(y_int, y):
                raise ConfigurationError("labels must be integers")
            y = y_int
        self._append_rows(X, y.astype(np.int64))
        return self

    def discard_oldest(self, n: int) -> "KNNClassifier":
        """Retire the *n* oldest memory rows (sliding-memory eviction).

        O(1) amortized: the live window's start offset advances; rows
        are only physically moved when the buffer compacts. At least
        ``k`` samples must survive.
        """
        self._require_fitted()
        n = int(n)
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        if n == 0:
            return self
        live = self._buf_end - self._buf_start
        if live - n < self.k:
            raise ConfigurationError(
                f"discarding {n} of {live} rows would leave fewer than "
                f"k={self.k} samples"
            )
        dropped = self._ybuf[self._buf_start : self._buf_start + n]  # type: ignore[index]
        self._drop_label_counts(dropped)
        self._buf_start += n
        self._discarded += n
        self._tree = None
        return self

    @property
    def n_samples_(self) -> int:
        """Number of stored training samples."""
        self._require_fitted()
        return self._buf_end - self._buf_start

    def kneighbors(self, X) -> tuple[np.ndarray, np.ndarray]:
        """Distances and indices of the k nearest training points.

        Returns ``(n_queries, k)`` arrays sorted by increasing distance;
        equidistant neighbours are ordered by memory index (oldest
        first), making the result deterministic.
        """
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if self._tree is None and self._resolve_backend() == "kd_tree":
            self._tree = KDTree(self._X, leaf_size=self.leaf_size)
        if self._tree is not None:
            return self._tree.query_many(X, self.k)
        d2 = squared_euclidean_distances(X, self._X)
        top_d2, idx = lexicographic_topk(d2, self.k)
        return np.sqrt(top_d2), idx

    def predict_proba(self, X) -> np.ndarray:
        """Per-class vote fractions, ordered like :attr:`classes_`."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        _, neighbor_idx = self.kneighbors(X)
        labels = self._y[neighbor_idx]  # type: ignore[index]
        classes = self.classes_
        proba = np.empty((X.shape[0], classes.shape[0]), dtype=np.float64)
        for j, c in enumerate(classes):
            proba[:, j] = np.mean(labels == c, axis=1)
        return proba

    # -- internals -------------------------------------------------------------

    def _append_rows(self, X: np.ndarray, y: np.ndarray) -> None:
        """Write validated rows into the growth buffer (no checks)."""
        n_new = X.shape[0]
        self._ensure_capacity(n_new)
        end = self._buf_end
        self._Xbuf[end : end + n_new] = X  # type: ignore[index]
        self._ybuf[end : end + n_new] = y  # type: ignore[index]
        self._buf_end = end + n_new
        self._appended += n_new
        counts = self._label_counts
        new_class = False
        for label in y.tolist():
            c = counts.get(label, 0)
            if c == 0:
                new_class = True
            counts[label] = c + 1
        if new_class:
            self._refresh_classes()
        self._tree = None

    def _ensure_capacity(self, n_new: int) -> None:
        cap = self._Xbuf.shape[0]  # type: ignore[union-attr]
        if self._buf_end + n_new <= cap:
            return
        live = self._buf_end - self._buf_start
        if live + n_new <= cap // 2:
            # Plenty of retired headroom: slide the live window to the
            # front in place (source and destination cannot overlap
            # because start >= cap/2 >= live here).
            self._Xbuf[:live] = self._Xbuf[self._buf_start : self._buf_end]  # type: ignore[index]
            self._ybuf[:live] = self._ybuf[self._buf_start : self._buf_end]  # type: ignore[index]
        else:
            new_cap = _round_capacity(max(2 * cap, live + n_new))
            new_X = np.empty((new_cap, self._Xbuf.shape[1]), dtype=np.float64)  # type: ignore[union-attr]
            new_y = np.empty(new_cap, dtype=np.int64)
            new_X[:live] = self._Xbuf[self._buf_start : self._buf_end]  # type: ignore[index]
            new_y[:live] = self._ybuf[self._buf_start : self._buf_end]  # type: ignore[index]
            self._Xbuf = new_X
            self._ybuf = new_y
        self._buf_start = 0
        self._buf_end = live

    def _drop_label_counts(self, dropped: np.ndarray) -> None:
        counts = self._label_counts
        emptied = False
        if dropped.shape[0] > 16:
            # Bulk eviction (a retrained memory trimmed to max_memory
            # drops thousands of rows at once): one vectorized counting
            # pass instead of a per-row dict loop. Decrements commute,
            # so the final counts match the sequential loop exactly.
            values, drops = _label_values_counts(dropped)
            for label, c in zip(values.tolist(), drops.tolist()):
                remaining = counts.get(label, 0) - c
                if remaining <= 0:
                    counts.pop(label, None)
                    emptied = True
                else:
                    counts[label] = remaining
        else:
            for label in dropped.tolist():
                c = counts.get(label, 0) - 1
                if c <= 0:
                    counts.pop(label, None)
                    emptied = True
                else:
                    counts[label] = c
        if emptied:
            self._refresh_classes()

    def _refresh_classes(self) -> None:
        self.classes_ = np.array(sorted(self._label_counts), dtype=np.int64)

    def _resolve_backend(self) -> str:
        if self.algorithm != "auto":
            return self.algorithm
        assert self._Xbuf is not None
        n = self._buf_end - self._buf_start
        d = self._Xbuf.shape[1]
        if n >= _AUTO_TREE_THRESHOLD and d <= _AUTO_TREE_MAX_DIM:
            return "kd_tree"
        return "brute"

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"KNNClassifier(k={self.k}, algorithm={self.algorithm!r}, {state})"


def bulk_learn_rows(classifiers, X, y, max_memories) -> None:
    """Append one validated row to each classifier, then trim to its cap.

    The batched tick engine's learn step: classifier *i* gains the row
    ``(X[i], y[i])`` and is trimmed back to ``max_memories[i]`` stored
    rows (``None`` = unbounded) — exactly
    ``clf._append_rows(X[i:i+1], y[i:i+1])`` followed by the oldest-row
    eviction :meth:`~repro.core.online.OnlineLARPredictor.observe`
    performs, but with the steady-state case (capacity available, known
    label, at most one overflow row) inlined so a 500-stream tick pays
    one tight loop instead of S method-call chains with per-row array
    slices. Growth, new labels, and multi-row overflow fall back to the
    classifier's own methods, so the resulting state is identical to
    the per-stream calls in every case.
    """
    y_list = y.tolist()
    for i, (clf, label, max_memory) in enumerate(
        zip(classifiers, y_list, max_memories)
    ):
        end = clf._buf_end
        counts = clf._label_counts
        if end < clf._Xbuf.shape[0] and label in counts:
            clf._Xbuf[end] = X[i]
            clf._ybuf[end] = label
            clf._buf_end = end + 1
            clf._appended += 1
            counts[label] += 1
            clf._tree = None
        else:
            clf._append_rows(X[i : i + 1], y[i : i + 1])
        if max_memory is None:
            continue
        start = clf._buf_start
        excess = clf._buf_end - start - max_memory
        if excess == 1 and max_memory >= clf.k:
            dropped = int(clf._ybuf[start])
            c = counts.get(dropped, 0) - 1
            if c <= 0:
                counts.pop(dropped, None)
                clf._refresh_classes()
            else:
                counts[dropped] = c
            clf._buf_start = start + 1
            clf._discarded += 1
            clf._tree = None
        elif excess > 0:
            clf.discard_oldest(excess)
