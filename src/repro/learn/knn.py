"""k-Nearest-Neighbour classification (paper §5.1).

The LARPredictor's best-predictor forecaster: memory-based, no training
beyond storing the labelled windows, classification by majority vote of
the k = 3 closest training windows under Euclidean distance in the
PCA-reduced feature space.

Two query backends are provided:

* ``brute`` — one BLAS-backed distance matrix plus ``argpartition``;
  optimal for the small training sets of a single trace fold.
* ``kd_tree`` — the :class:`repro.learn.kdtree.KDTree` index; wins when
  the training set is large and the feature dimension small (exactly the
  n = 2 PCA regime), reproducing §7.3's complexity discussion.
* ``auto`` — picks ``kd_tree`` when it is expected to pay off.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.learn.base import Classifier
from repro.learn.kdtree import KDTree
from repro.learn.voting import majority_vote, weighted_vote
from repro.learn.distance import squared_euclidean_distances

__all__ = ["KNNClassifier"]

_BACKENDS = ("auto", "brute", "kd_tree")
# Below this many training points a vectorized scan beats tree traversal.
_AUTO_TREE_THRESHOLD = 2048
# KD-trees lose their pruning power in high dimensions.
_AUTO_TREE_MAX_DIM = 8


class KNNClassifier(Classifier):
    """Majority-vote k-NN over Euclidean distance.

    Parameters
    ----------
    k:
        Neighbourhood size; must be odd (paper: "the majority vote among
        the k (an odd number) neighbors"). Odd k prevents two-way ties;
        residual multi-class ties are broken in favour of the label of
        the nearest neighbour within the tie (a deterministic rule the
        tests pin down).
    algorithm:
        ``brute``, ``kd_tree``, or ``auto``.
    leaf_size:
        Leaf size for the KD-tree backend.
    weights:
        ``"uniform"`` is the paper's plain majority vote; ``"distance"``
        weights each neighbour's vote by inverse distance (the weighted
        voting strategy of the paper's ref [16]) — an exact-match
        neighbour then dominates the vote outright.
    """

    def __init__(
        self,
        k: int = 3,
        *,
        algorithm: str = "auto",
        leaf_size: int = 16,
        weights: str = "uniform",
    ):
        super().__init__()
        if not isinstance(k, (int, np.integer)) or isinstance(k, bool) or k < 1:
            raise ConfigurationError(f"k must be a positive integer, got {k!r}")
        if k % 2 == 0:
            raise ConfigurationError(f"k must be odd to avoid vote ties, got {k}")
        if algorithm not in _BACKENDS:
            raise ConfigurationError(
                f"algorithm must be one of {_BACKENDS}, got {algorithm!r}"
            )
        if weights not in ("uniform", "distance"):
            raise ConfigurationError(
                f"weights must be 'uniform' or 'distance', got {weights!r}"
            )
        self.k = int(k)
        self.algorithm = algorithm
        self.leaf_size = int(leaf_size)
        self.weights = weights
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._tree: KDTree | None = None

    # -- hooks ---------------------------------------------------------------

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.k > X.shape[0]:
            raise ConfigurationError(
                f"k={self.k} exceeds the {X.shape[0]} training samples"
            )
        self._X = X.copy()
        self._y = y.copy()
        self._tree = None
        if self._resolve_backend() == "kd_tree":
            self._tree = KDTree(self._X, leaf_size=self.leaf_size)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        distances, neighbor_idx = self.kneighbors(X)
        neighbor_labels = self._y[neighbor_idx]  # type: ignore[index]
        if self.weights == "distance":
            # Inverse-distance weighting; an exact match (distance 0)
            # would divide by zero, so such neighbours get a weight that
            # dwarfs every finite one.
            with np.errstate(divide="ignore"):
                w = 1.0 / distances
            exact = ~np.isfinite(w)
            if exact.any():
                w[exact] = 0.0
                w[exact] = max(1.0, w.max()) * 1e6
            return weighted_vote(neighbor_labels, w)
        # Neighbours arrive sorted by distance, so "first label in the
        # row" is the 1-NN label majority_vote uses for tie-breaking.
        return majority_vote(neighbor_labels)

    # -- public extras ---------------------------------------------------------

    def partial_fit(self, X, y) -> "KNNClassifier":
        """Append labelled samples to the memory (online learning path).

        k-NN is memory-based, so incremental learning is exact: new
        (sample, label) pairs simply join the stored training set. The
        KD-tree index, if one was built, is invalidated and lazily
        rebuilt on the next query batch under the ``auto``/``kd_tree``
        policy.
        """
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y)
        if y.ndim == 0:
            y = y[None]
        if X.shape[0] != y.shape[0]:
            raise ConfigurationError(
                f"{X.shape[0]} samples but {y.shape[0]} labels"
            )
        if X.shape[1] != self._X.shape[1]:  # type: ignore[union-attr]
            raise ConfigurationError(
                f"samples have {X.shape[1]} features, memory has "
                f"{self._X.shape[1]}"  # type: ignore[union-attr]
            )
        if not np.issubdtype(y.dtype, np.integer):
            y_int = y.astype(np.int64)
            if not np.array_equal(y_int, y):
                raise ConfigurationError("labels must be integers")
            y = y_int
        self._X = np.vstack([self._X, X])
        self._y = np.concatenate([self._y, y.astype(np.int64)])
        self.classes_ = np.unique(self._y)
        self._tree = None
        if self._resolve_backend() == "kd_tree":
            self._tree = KDTree(self._X, leaf_size=self.leaf_size)
        return self

    @property
    def n_samples_(self) -> int:
        """Number of stored training samples."""
        self._require_fitted()
        return int(self._X.shape[0])  # type: ignore[union-attr]

    def kneighbors(self, X) -> tuple[np.ndarray, np.ndarray]:
        """Distances and indices of the k nearest training points.

        Returns ``(n_queries, k)`` arrays sorted by increasing distance.
        """
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if self._tree is not None:
            return self._tree.query_many(X, self.k)
        d2 = squared_euclidean_distances(X, self._X)
        k = self.k
        if k < d2.shape[1]:
            part = np.argpartition(d2, k - 1, axis=1)[:, :k]
        else:
            part = np.broadcast_to(
                np.arange(d2.shape[1]), (d2.shape[0], d2.shape[1])
            ).copy()
        part_d2 = np.take_along_axis(d2, part, axis=1)
        order = np.argsort(part_d2, axis=1, kind="stable")
        idx = np.take_along_axis(part, order, axis=1)
        dist = np.sqrt(np.take_along_axis(part_d2, order, axis=1))
        return dist, idx

    def predict_proba(self, X) -> np.ndarray:
        """Per-class vote fractions, ordered like :attr:`classes_`."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        _, neighbor_idx = self.kneighbors(X)
        labels = self._y[neighbor_idx]  # type: ignore[index]
        classes = self.classes_
        proba = np.empty((X.shape[0], classes.shape[0]), dtype=np.float64)
        for j, c in enumerate(classes):
            proba[:, j] = np.mean(labels == c, axis=1)
        return proba

    def _resolve_backend(self) -> str:
        if self.algorithm != "auto":
            return self.algorithm
        assert self._X is not None
        n, d = self._X.shape
        if n >= _AUTO_TREE_THRESHOLD and d <= _AUTO_TREE_MAX_DIM:
            return "kd_tree"
        return "brute"

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"KNNClassifier(k={self.k}, algorithm={self.algorithm!r}, {state})"
