"""Vectorized pairwise distance kernels.

k-NN classification cost is dominated by the distance matrix between test
and training points. All kernels here are fully vectorized: the Euclidean
path expands ``|a - b|^2 = |a|^2 - 2 a.b + |b|^2`` so the cross term is a
single BLAS GEMM — the canonical "vectorize the loop, let BLAS do the
work" transformation from the optimization guide.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataError

__all__ = [
    "squared_euclidean_distances",
    "euclidean_distances",
    "manhattan_distances",
    "chebyshev_distances",
    "pairwise_distances",
]


def _check_pair(A, B) -> tuple[np.ndarray, np.ndarray]:
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim == 1:
        A = A[None, :]
    if B.ndim == 1:
        B = B[None, :]
    if A.ndim != 2 or B.ndim != 2:
        raise DataError(
            f"distance inputs must be 1-D or 2-D, got shapes {A.shape}, {B.shape}"
        )
    if A.shape[1] != B.shape[1]:
        raise DataError(
            f"feature dimensions differ: {A.shape[1]} vs {B.shape[1]}"
        )
    return A, B


def squared_euclidean_distances(A, B) -> np.ndarray:
    """``(len(A), len(B))`` matrix of squared Euclidean distances.

    Preferred for nearest-neighbour *ranking*: the square root is
    monotone, so skipping it changes no ordering and saves a pass.
    Round-off from the expanded form can produce tiny negatives; they
    are clamped to zero.
    """
    A, B = _check_pair(A, B)
    aa = np.einsum("ij,ij->i", A, A)[:, None]
    bb = np.einsum("ij,ij->i", B, B)[None, :]
    d2 = aa + bb - 2.0 * (A @ B.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def euclidean_distances(A, B) -> np.ndarray:
    """``(len(A), len(B))`` matrix of Euclidean distances (paper eq. 6)."""
    return np.sqrt(squared_euclidean_distances(A, B))


def manhattan_distances(A, B) -> np.ndarray:
    """``(len(A), len(B))`` matrix of L1 distances.

    Materializes the ``(n, m, d)`` difference tensor, so intended for the
    small feature dimensions (n = 2 PCA components) this library works in.
    """
    A, B = _check_pair(A, B)
    return np.abs(A[:, None, :] - B[None, :, :]).sum(axis=2)


def chebyshev_distances(A, B) -> np.ndarray:
    """``(len(A), len(B))`` matrix of L-infinity distances."""
    A, B = _check_pair(A, B)
    return np.abs(A[:, None, :] - B[None, :, :]).max(axis=2)


_METRICS = {
    "euclidean": euclidean_distances,
    "sqeuclidean": squared_euclidean_distances,
    "manhattan": manhattan_distances,
    "chebyshev": chebyshev_distances,
}


def pairwise_distances(A, B, metric: str = "euclidean") -> np.ndarray:
    """Dispatch to a named distance kernel.

    Parameters
    ----------
    metric:
        One of ``euclidean``, ``sqeuclidean``, ``manhattan``,
        ``chebyshev``.
    """
    try:
        fn = _METRICS[metric]
    except KeyError:
        raise ConfigurationError(
            f"unknown metric {metric!r}; choose from {sorted(_METRICS)}"
        ) from None
    return fn(A, B)
