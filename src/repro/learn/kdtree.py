"""A from-scratch KD-tree for exact k-nearest-neighbour queries.

The paper's discussion (§7.3) points at logarithmic-expected-time
nearest-neighbour algorithms (Friedman, Bentley & Finkel) as the way to
scale the k-NN stage beyond the O(N) scan. This module implements that
structure: median-split axis-aligned partitioning with a branch-and-bound
k-NN search.

The tree is stored in flat arrays (split axis, split value, child
indices, point ranges) rather than linked node objects: construction
partitions an index permutation in place with ``numpy.argpartition``,
and leaves store contiguous index ranges so leaf scans are vectorized.
This keeps the Python-level work proportional to the number of *nodes
visited*, not the number of points.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.util.validation import as_matrix, check_positive_int

__all__ = ["KDTree"]


class KDTree:
    """Exact k-NN index over a fixed point set.

    Parameters
    ----------
    points:
        ``(n_points, n_dims)`` array. The tree keeps its own copy.
    leaf_size:
        Maximum number of points stored in a leaf before it is split.
        Larger leaves trade tree depth for vectorized scan width; the
        default 16 is a good fit for the 2-D PCA spaces this library
        queries.

    Notes
    -----
    Split axis is chosen as the axis of largest spread within the node
    (the Friedman–Bentley–Finkel rule), and the split point is the median,
    which bounds the depth at O(log n).
    """

    __slots__ = (
        "points",
        "_indices",
        "_split_dim",
        "_split_val",
        "_left",
        "_right",
        "_start",
        "_end",
        "leaf_size",
    )

    def __init__(self, points, *, leaf_size: int = 16):
        self.points = as_matrix(points, name="points", min_rows=1)
        self.leaf_size = check_positive_int(leaf_size, name="leaf_size")
        n = self.points.shape[0]
        # Worst-case node count for a binary tree over ceil(n/leaf) leaves.
        max_nodes = 4 * max(1, n // self.leaf_size + 1)
        self._indices = np.arange(n, dtype=np.intp)
        self._split_dim = np.full(max_nodes, -1, dtype=np.intp)
        self._split_val = np.zeros(max_nodes, dtype=np.float64)
        self._left = np.full(max_nodes, -1, dtype=np.intp)
        self._right = np.full(max_nodes, -1, dtype=np.intp)
        self._start = np.zeros(max_nodes, dtype=np.intp)
        self._end = np.zeros(max_nodes, dtype=np.intp)
        next_free = self._build(0, n, _NodeAllocator())
        # Trim the arrays to the nodes actually allocated.
        for name in ("_split_dim", "_split_val", "_left", "_right", "_start", "_end"):
            setattr(self, name, getattr(self, name)[:next_free])

    # -- construction -----------------------------------------------------

    def _build(self, start: int, end: int, alloc: "_NodeAllocator") -> int:
        """Recursively build the subtree over ``_indices[start:end]``.

        Returns the total number of nodes allocated.
        """
        self._build_node(start, end, alloc)
        return alloc.next_free

    def _build_node(self, start: int, end: int, alloc: "_NodeAllocator") -> int:
        node = alloc.take(self)
        self._start[node] = start
        self._end[node] = end
        count = end - start
        if count <= self.leaf_size:
            return node  # leaf: _split_dim stays -1
        idx = self._indices[start:end]
        pts = self.points[idx]
        spread = pts.max(axis=0) - pts.min(axis=0)
        dim = int(np.argmax(spread))
        if spread[dim] <= 0.0:
            return node  # all points identical: keep as a (large) leaf
        mid = count // 2
        # Partial sort: points below the median land left of mid.
        order = np.argpartition(pts[:, dim], mid)
        self._indices[start:end] = idx[order]
        self._split_dim[node] = dim
        self._split_val[node] = float(
            self.points[self._indices[start + mid], dim]
        )
        self._left[node] = self._build_node(start, start + mid, alloc)
        self._right[node] = self._build_node(start + mid, end, alloc)
        return node

    # -- queries ------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return int(self.points.shape[0])

    def query(self, x, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Find the *k* nearest indexed points to the single query *x*.

        Returns
        -------
        (distances, indices):
            Both length *k*, sorted by increasing Euclidean distance.

        Raises
        ------
        ConfigurationError
            If ``k`` exceeds the number of indexed points.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1 or x.shape[0] != self.points.shape[1]:
            raise DataError(
                f"query must be a 1-D point of dimension {self.points.shape[1]}"
            )
        k = check_positive_int(k, name="k")
        if k > self.n_points:
            raise ConfigurationError(
                f"k={k} exceeds the {self.n_points} indexed points"
            )
        # Max-heap of the best k (negated squared distance, index).
        heap: list[tuple[float, int]] = []
        self._search(0, x, k, heap)
        order = sorted((-d2, i) for d2, i in heap)
        d2 = np.array([max(v, 0.0) for v, _ in order])
        idx = np.array([i for _, i in order], dtype=np.intp)
        return np.sqrt(d2), idx

    def query_many(self, X, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Batch :meth:`query` over the rows of *X*.

        Returns ``(n_queries, k)`` distance and index arrays.
        """
        X = as_matrix(X, name="X", min_rows=1)
        dists = np.empty((X.shape[0], k), dtype=np.float64)
        idxs = np.empty((X.shape[0], k), dtype=np.intp)
        for i, x in enumerate(X):
            d, j = self.query(x, k)
            dists[i] = d
            idxs[i] = j
        return dists, idxs

    # -- internals ------------------------------------------------------------

    def _search(
        self, node: int, x: np.ndarray, k: int, heap: list[tuple[float, int]]
    ) -> None:
        dim = self._split_dim[node]
        if dim < 0:  # leaf: vectorized scan of the contiguous index range
            idx = self._indices[self._start[node] : self._end[node]]
            diff = self.points[idx] - x
            d2 = np.einsum("ij,ij->i", diff, diff)
            for dist2, point_index in zip(d2, idx):
                entry = (-float(dist2), int(point_index))
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif entry > heap[0]:
                    heapq.heapreplace(heap, entry)
            return
        delta = x[dim] - self._split_val[node]
        near, far = (
            (self._right[node], self._left[node])
            if delta >= 0.0
            else (self._left[node], self._right[node])
        )
        self._search(near, x, k, heap)
        # Prune the far branch unless the splitting plane is closer than
        # the current k-th best distance (branch-and-bound step).
        if len(heap) < k or delta * delta < -heap[0][0]:
            self._search(far, x, k, heap)

    def __repr__(self) -> str:
        return (
            f"KDTree(n_points={self.n_points}, "
            f"n_dims={self.points.shape[1]}, leaf_size={self.leaf_size})"
        )


class _NodeAllocator:
    """Hands out node slots and grows the backing arrays on demand."""

    def __init__(self) -> None:
        self.next_free = 0

    def take(self, tree: KDTree) -> int:
        node = self.next_free
        self.next_free += 1
        if node >= tree._split_dim.shape[0]:
            for name in (
                "_split_dim",
                "_split_val",
                "_left",
                "_right",
                "_start",
                "_end",
            ):
                arr = getattr(tree, name)
                grown = np.concatenate([arr, np.full_like(arr, -1)])
                setattr(tree, name, grown)
        return node
