"""Principal Component Analysis, implemented from scratch (paper §5.2).

The PCA processor reduces each prediction window from the order *m* to
*n < m* classifier features. Two selection policies are supported,
matching the paper:

* a fixed component count (``n_components=2`` — "the minimal fraction
  variance was set to extract exactly two principal components"), and
* a minimum explained-variance fraction (``min_variance=0.95`` keeps the
  smallest *n* whose eigenvalues cover 95% of total variance).

The implementation diagonalizes the sample covariance matrix with
:func:`numpy.linalg.eigh` (symmetric solver — cheaper and more stable
than a general eigendecomposition, per the guide's "know your
computational linear algebra"). Window sizes here are tiny (m <= a few
dozen) so the O(m^3) eigensolve is negligible; the dominant cost is the
O(N m^2) covariance accumulation, a single BLAS ``X.T @ X``.

The NumPy solver (not SciPy's) is deliberate: ``np.linalg.eigh`` is a
gufunc, so the batched fleet trainer can run one eigensolve over a
stacked ``(n_streams, m, m)`` covariance tensor and land on *the same
LAPACK driver* this per-stream fit uses — the two paths then agree bit
for bit (SciPy's ``eigh`` routes through a different driver and returns
different low-order bits for the same matrix).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.util.validation import as_matrix, check_fraction, check_positive_int

__all__ = ["PCA"]


class PCA:
    """Linear least-squares projection onto the top principal components.

    Parameters
    ----------
    n_components:
        Exact number of components to keep. Mutually exclusive with
        *min_variance*.
    min_variance:
        Keep the smallest number of components whose cumulative explained
        variance ratio reaches this fraction. Mutually exclusive with
        *n_components*. Exactly one of the two must be given.

    Attributes
    ----------
    components_:
        ``(n_kept, n_features)`` array; rows are unit-norm eigenvectors of
        the covariance matrix sorted by decreasing eigenvalue.
    explained_variance_:
        Eigenvalues corresponding to the kept components.
    explained_variance_ratio_:
        Those eigenvalues divided by the total variance.
    mean_:
        Per-feature training mean (the location vector ``mu`` of eq. 7).
    """

    def __init__(
        self,
        n_components: int | None = 2,
        *,
        min_variance: float | None = None,
    ):
        if (n_components is None) == (min_variance is None):
            raise ConfigurationError(
                "exactly one of n_components and min_variance must be set"
            )
        if n_components is not None:
            self.n_components = check_positive_int(n_components, name="n_components")
            self.min_variance = None
        else:
            self.n_components = None
            self.min_variance = check_fraction(min_variance, name="min_variance")
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None
        self.mean_: np.ndarray | None = None

    # -- fitting -------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.components_ is not None

    @property
    def n_components_(self) -> int:
        """Number of components actually kept after fitting."""
        self._require_fitted()
        return int(self.components_.shape[0])  # type: ignore[union-attr]

    def fit(self, X) -> "PCA":
        """Estimate the principal axes of the rows of *X*.

        Parameters
        ----------
        X:
            ``(n_samples, n_features)`` training matrix with at least two
            rows (a single sample has no variance to decompose).
        """
        X = as_matrix(X, name="X", min_rows=2)
        n_samples, n_features = X.shape
        if self.n_components is not None and self.n_components > n_features:
            raise ConfigurationError(
                f"n_components={self.n_components} exceeds the feature "
                f"count {n_features}"
            )
        self.mean_ = X.mean(axis=0)
        Xc = X - self.mean_
        cov = (Xc.T @ Xc) / (n_samples - 1)
        # eigh returns ascending eigenvalues; flip to descending.
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(eigvals)[::-1]
        eigvals = eigvals[order]
        eigvecs = eigvecs[:, order]
        # Clamp tiny negative eigenvalues produced by round-off.
        eigvals = np.maximum(eigvals, 0.0)
        total = float(eigvals.sum())
        if total <= 0.0:
            # All rows identical: the covariance is zero. Projection onto
            # any axis yields constant features; keep the leading axes so
            # downstream shapes stay consistent.
            ratios = np.zeros_like(eigvals)
        else:
            ratios = eigvals / total

        if self.n_components is not None:
            keep = self.n_components
        else:
            cumulative = np.cumsum(ratios)
            target = self.min_variance
            reached = np.flatnonzero(cumulative >= target - 1e-12)
            keep = int(reached[0]) + 1 if reached.size else n_features

        self.components_ = np.ascontiguousarray(eigvecs[:, :keep].T)
        self.explained_variance_ = eigvals[:keep].copy()
        self.explained_variance_ratio_ = ratios[:keep].copy()
        return self

    # -- transforms ------------------------------------------------------------

    def transform(self, X) -> np.ndarray:
        """Project rows of *X* into the fitted component space.

        Accepts a single sample as a 1-D array (returned as 1-D) or a
        matrix of samples (returned as a matrix).
        """
        self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        if X.ndim != 2:
            raise DataError(f"X must be 1-D or 2-D, got shape {X.shape}")
        if X.shape[1] != self.mean_.shape[0]:  # type: ignore[union-attr]
            raise DataError(
                f"X has {X.shape[1]} features but PCA was fitted on "
                f"{self.mean_.shape[0]}"  # type: ignore[union-attr]
            )
        Z = (X - self.mean_) @ self.components_.T  # type: ignore[union-attr]
        return Z[0] if single else Z

    def fit_transform(self, X) -> np.ndarray:
        """Fit on *X* and return its projection."""
        return self.fit(X).transform(X)

    def inverse_transform(self, Z) -> np.ndarray:
        """Reconstruct inputs from component scores (rank-``n`` model, eq. 7)."""
        self._require_fitted()
        Z = np.asarray(Z, dtype=np.float64)
        single = Z.ndim == 1
        if single:
            Z = Z[None, :]
        if Z.shape[1] != self.n_components_:
            raise DataError(
                f"Z has {Z.shape[1]} components but PCA kept {self.n_components_}"
            )
        X = Z @ self.components_ + self.mean_  # type: ignore[union-attr]
        return X[0] if single else X

    def reconstruction_error(self, X) -> float:
        """Mean squared reconstruction error of *X* under the rank-n model.

        PCA minimizes exactly this quantity among all rank-n linear
        models, a property the test suite checks.
        """
        X = as_matrix(X, name="X")
        R = self.inverse_transform(self.transform(X))
        return float(np.mean((X - R) ** 2))

    # -- internals ---------------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.components_ is None:
            raise NotFittedError("PCA must be fitted before use")

    def __repr__(self) -> str:
        if self.n_components is not None:
            spec = f"n_components={self.n_components}"
        else:
            spec = f"min_variance={self.min_variance}"
        state = "fitted" if self.is_fitted else "unfitted"
        return f"PCA({spec}, {state})"
