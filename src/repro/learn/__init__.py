"""Learning components: PCA and the classifiers that forecast the best predictor.

The paper uses PCA for dimensionality reduction (§5.2) and a k-NN
classifier for best-predictor forecasting (§5.1), noting that "our
methodology may be generally used with other types of classification
algorithms" — the alternative classifiers here back that generality
claim and the classifier-choice ablation.
"""

from repro.learn.pca import PCA
from repro.learn.base import Classifier
from repro.learn.distance import (
    euclidean_distances,
    squared_euclidean_distances,
    manhattan_distances,
    chebyshev_distances,
    pairwise_distances,
)
from repro.learn.knn import KNNClassifier
from repro.learn.kdtree import KDTree
from repro.learn.naive_bayes import GaussianNBClassifier
from repro.learn.centroid import NearestCentroidClassifier
from repro.learn.tree import DecisionTreeClassifier
from repro.learn.logistic import SoftmaxClassifier
from repro.learn.voting import majority_vote, weighted_vote, VotingEnsemble

__all__ = [
    "PCA",
    "Classifier",
    "euclidean_distances",
    "squared_euclidean_distances",
    "manhattan_distances",
    "chebyshev_distances",
    "pairwise_distances",
    "KNNClassifier",
    "KDTree",
    "GaussianNBClassifier",
    "NearestCentroidClassifier",
    "DecisionTreeClassifier",
    "SoftmaxClassifier",
    "majority_vote",
    "weighted_vote",
    "VotingEnsemble",
]
