"""A small CART-style decision tree classifier.

Third alternative forecaster for the classifier-choice ablation. Axis-
aligned binary splits chosen by Gini impurity reduction; split thresholds
are evaluated with a vectorized cumulative-count sweep over each sorted
feature column, so finding the best split of a node costs
O(n_features * n log n) with no Python-level loop over candidate
thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.learn.base import Classifier
from repro.util.validation import check_positive_int

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """One tree node; leaves carry a label, internal nodes a split."""

    label: int = -1
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeClassifier(Classifier):
    """Gini-impurity CART tree with depth and leaf-size limits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; 1 gives a decision stump.
    min_samples_leaf:
        A split is only accepted if both children keep at least this many
        samples — the main overfitting guard for the small per-trace
        training sets this library produces.
    """

    def __init__(self, *, max_depth: int = 8, min_samples_leaf: int = 2):
        super().__init__()
        self.max_depth = check_positive_int(max_depth, name="max_depth")
        self.min_samples_leaf = check_positive_int(
            min_samples_leaf, name="min_samples_leaf"
        )
        self._root: _Node | None = None
        self._class_index: dict[int, int] = {}

    # -- fitting ------------------------------------------------------------

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._class_index = {int(c): i for i, c in enumerate(self.classes_)}
        y_idx = np.vectorize(self._class_index.__getitem__, otypes=[np.int64])(y)
        self._root = self._grow(X, y_idx, depth=0)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        n_classes = self.classes_.shape[0]
        counts = np.bincount(y, minlength=n_classes)
        majority = int(self.classes_[np.argmax(counts)])
        if (
            depth >= self.max_depth
            or y.size < 2 * self.min_samples_leaf
            or counts.max() == y.size
        ):
            return _Node(label=majority)
        split = self._best_split(X, y, counts)
        if split is None:
            return _Node(label=majority)
        feature, threshold = split
        mask = X[:, feature] <= threshold
        left = self._grow(X[mask], y[mask], depth + 1)
        right = self._grow(X[~mask], y[~mask], depth + 1)
        return _Node(label=majority, feature=feature, threshold=threshold,
                     left=left, right=right)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, counts: np.ndarray
    ) -> tuple[int, float] | None:
        """Return (feature, threshold) minimizing weighted child Gini."""
        n = y.size
        n_classes = counts.shape[0]
        # Accept the best valid split even at zero immediate Gini gain:
        # XOR-like structure has no single-split gain but becomes
        # separable one level down; depth/leaf limits bound the growth.
        best: tuple[float, int, float] | None = None
        one_hot = np.zeros((n, n_classes))
        one_hot[np.arange(n), y] = 1.0
        for f in range(X.shape[1]):
            order = np.argsort(X[:, f], kind="stable")
            xs = X[order, f]
            # Cumulative class counts after each prefix of the sort order.
            left_counts = np.cumsum(one_hot[order], axis=0)
            left_n = np.arange(1, n + 1, dtype=np.float64)
            right_counts = counts[None, :] - left_counts
            right_n = n - left_n
            # Candidate split after position i is valid when the next x
            # differs (threshold between distinct values) and both sides
            # satisfy the leaf minimum.
            valid = np.zeros(n, dtype=bool)
            valid[:-1] = xs[1:] > xs[:-1]
            valid &= left_n >= self.min_samples_leaf
            valid &= right_n >= self.min_samples_leaf
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gini_l = 1.0 - np.einsum(
                    "ij,ij->i", left_counts / left_n[:, None],
                    left_counts / left_n[:, None],
                )
                gini_r = np.where(
                    right_n > 0,
                    1.0
                    - np.einsum(
                        "ij,ij->i",
                        np.divide(
                            right_counts,
                            right_n[:, None],
                            out=np.zeros_like(right_counts),
                            where=right_n[:, None] > 0,
                        ),
                        np.divide(
                            right_counts,
                            right_n[:, None],
                            out=np.zeros_like(right_counts),
                            where=right_n[:, None] > 0,
                        ),
                    ),
                    0.0,
                )
            weighted = (left_n * gini_l + right_n * gini_r) / n
            weighted = np.where(valid, weighted, np.inf)
            i = int(np.argmin(weighted))
            if best is None or weighted[i] < best[0]:
                threshold = 0.5 * (xs[i] + xs[i + 1])
                best = (float(weighted[i]), f, threshold)
        if best is None:
            return None
        return best[1], best[2]

    # -- prediction -----------------------------------------------------------

    def _predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0], dtype=np.int64)
        for i, x in enumerate(X):
            node = self._root
            while not node.is_leaf:  # type: ignore[union-attr]
                if x[node.feature] <= node.threshold:  # type: ignore[union-attr]
                    node = node.left  # type: ignore[union-attr]
                else:
                    node = node.right  # type: ignore[union-attr]
            out[i] = node.label  # type: ignore[union-attr]
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""
        self._require_fitted()

        def _d(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(_d(node.left), _d(node.right))  # type: ignore[arg-type]

        return _d(self._root)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return (
            f"DecisionTreeClassifier(max_depth={self.max_depth}, "
            f"min_samples_leaf={self.min_samples_leaf}, {state})"
        )
