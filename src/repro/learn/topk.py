"""Deterministic row-wise top-k selection under a lexicographic order.

Nearest-neighbour queries need the *k smallest distances per row* — but
``argpartition`` alone leaves the choice among tied distances at the
selection boundary unspecified, and that arbitrariness leaks into k-NN
votes whenever the memory holds duplicate feature rows (constant windows
produce them routinely). :func:`lexicographic_topk` pins the rule down:

    select the k smallest entries per row under the total order
    ``(value, tie_key)`` — smaller value first, smaller tie key among
    equal values.

Both the per-stream brute-force path
(:meth:`repro.learn.knn.KNNClassifier.kneighbors`) and the fleet's
batched tick engine (:mod:`repro.serving.engine`) route their selection
through this one function, which is what makes the batched path's
neighbour sets bit-identical to the per-stream loop even in the presence
of exact distance ties.

The implementation stays O(n) per row in the common case: an
``argpartition`` down to ``min(2k, n)`` candidates, a small stable
double-argsort over the candidates, and a per-row fallback to a full
lexicographic sort only when ties at the selection boundary could extend
beyond the candidate set (detectable exactly, and rare outside
degenerate all-equal rows).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataError

__all__ = ["lexicographic_topk"]


def _take(a: np.ndarray, idx: np.ndarray) -> np.ndarray:
    return np.take_along_axis(a, idx, axis=1)


def lexicographic_topk(
    values, k: int, *, tie_keys=None
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row indices of the *k* smallest entries, deterministically.

    Parameters
    ----------
    values:
        ``(n_rows, n_cols)`` float matrix (e.g. squared distances).
        Rows are handled independently. ``+inf`` entries act as
        padding: they lose to every finite value.
    k:
        How many entries to select per row; ``1 <= k <= n_cols``.
    tie_keys:
        Optional ``(n_rows, n_cols)`` integer matrix used to order equal
        values (smaller key wins). Defaults to the column index, i.e.
        ties resolve to the leftmost column. Keys must be unique within
        a row for the order to be total.

    Returns
    -------
    (top_values, top_indices):
        Two ``(n_rows, k)`` arrays; column order is the selection order
        (ascending by ``(value, tie_key)``).
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 2 or v.shape[1] == 0:
        raise DataError(f"values must be a non-empty 2-D matrix, got {v.shape}")
    n_rows, n_cols = v.shape
    k = int(k)
    if not 1 <= k <= n_cols:
        raise ConfigurationError(
            f"k must be in [1, {n_cols}], got {k}"
        )
    if tie_keys is None:
        tie = np.broadcast_to(np.arange(n_cols, dtype=np.int64), v.shape)
    else:
        tie = np.asarray(tie_keys)
        if tie.shape != v.shape:
            raise DataError(
                f"tie_keys shape {tie.shape} does not match values {v.shape}"
            )

    # Candidate pool: the 2k smallest values per row. Any entry outside
    # the pool is >= the pool's maximum, so the top-k by (value, tie) is
    # contained in the pool unless the k-th selected value *equals* that
    # maximum (checked below).
    m = min(2 * k, n_cols)
    if m < n_cols:
        cand = np.argpartition(v, m - 1, axis=1)[:, :m]
    else:
        cand = np.broadcast_to(np.arange(n_cols), v.shape).copy()
    cv = _take(v, cand)
    ct = _take(tie, cand)

    # Stable two-pass argsort == lexicographic sort by (value, tie).
    by_tie = np.argsort(ct, axis=1, kind="stable")
    cv = _take(cv, by_tie)
    cand = _take(cand, by_tie)
    by_val = np.argsort(cv, axis=1, kind="stable")
    cv = _take(cv, by_val)
    cand = _take(cand, by_val)

    top_v = cv[:, :k]
    top_i = cand[:, :k]
    if m == n_cols:
        return top_v.copy(), top_i.copy()

    # Boundary check: if the k-th selected value reaches the worst
    # candidate value, equal values outside the pool might have smaller
    # tie keys — re-select those rows against the full row.
    unresolved = np.flatnonzero(top_v[:, k - 1] >= cv[:, m - 1])
    if unresolved.size:
        top_v = top_v.copy()
        top_i = top_i.copy()
        for r in unresolved:
            order = np.lexsort((tie[r], v[r]))[:k]
            top_i[r] = order
            top_v[r] = v[r, order]
    return top_v, top_i
