"""Vote-combination rules (paper §2, ref [16]).

The paper's related-work section points at weighted and probability-based
voting for classifier combination; :func:`majority_vote` is the rule the
LARPredictor's k-NN stage uses, and :class:`VotingEnsemble` packages the
combination strategies for the classifier-choice ablation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.learn.base import Classifier

__all__ = ["majority_vote", "weighted_vote", "VotingEnsemble"]

# The O(k^2) vectorized vote beats the per-row unique() loop for the
# small neighbourhoods k-NN uses; past this width the loop wins.
_VECTOR_VOTE_MAX_K = 64


def majority_vote(labels) -> np.ndarray:
    """Row-wise plurality vote over an integer label matrix.

    Parameters
    ----------
    labels:
        ``(n_rows, n_voters)`` integers. Voters are assumed ordered by
        decreasing authority (for k-NN: increasing distance); when two or
        more classes tie on count, the tied class that appears **earliest
        in the row** wins, which for k-NN means falling back to the
        nearest neighbour among the tied classes. This makes three-way
        ties under odd k deterministic.

    Returns
    -------
    numpy.ndarray
        Length ``n_rows`` winning labels.
    """
    arr = np.asarray(labels)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[1] == 0:
        raise DataError(f"labels must be a non-empty 2-D matrix, got {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise DataError("labels must be integers")
    k = arr.shape[1]
    if k <= _VECTOR_VOTE_MAX_K:
        # Vectorized evaluation of the same (max count, then earliest
        # first occurrence) rule, without a per-row Python loop: column
        # j's candidate is arr[:, j]; eq[i, a, b] tells whether columns
        # a and b of row i hold the same label, so summing over a gives
        # each candidate's vote count and argmax over a its first
        # occurrence. Scoring count*(k+1) - first_pos ranks candidates
        # exactly like the rule (distinct labels can never collide on
        # the score: equal count and equal first occurrence implies the
        # same label).
        eq = arr[:, :, None] == arr[:, None, :]
        counts = eq.sum(axis=1)
        first_pos = eq.argmax(axis=1)
        score = counts * (k + 1) - first_pos
        winner_col = score.argmax(axis=1)
        return arr[np.arange(arr.shape[0]), winner_col].astype(np.int64)
    out = np.empty(arr.shape[0], dtype=np.int64)
    for i, row in enumerate(arr):
        values, first_pos, counts = np.unique(
            row, return_index=True, return_counts=True
        )
        best = counts.max()
        tied = counts == best
        # Among tied classes pick the one whose first occurrence is earliest.
        winner = values[tied][np.argmin(first_pos[tied])]
        out[i] = winner
    return out


def weighted_vote(labels, weights) -> np.ndarray:
    """Row-wise weighted vote.

    Each voter contributes its weight to its label's total; the label with
    the largest total wins. Ties break toward the earliest-appearing tied
    label, mirroring :func:`majority_vote`.

    Parameters
    ----------
    labels:
        ``(n_rows, n_voters)`` integers.
    weights:
        Either a length ``n_voters`` vector (shared across rows) or a
        matrix matching *labels* (per-row weights, e.g. inverse
        distances). Weights must be non-negative and not all zero.
    """
    arr = np.asarray(labels)
    if arr.ndim == 1:
        arr = arr[None, :]
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim == 1:
        w = np.broadcast_to(w, arr.shape)
    if w.shape != arr.shape:
        raise DataError(
            f"weights shape {w.shape} does not match labels shape {arr.shape}"
        )
    if (w < 0).any():
        raise DataError("weights must be non-negative")
    out = np.empty(arr.shape[0], dtype=np.int64)
    for i in range(arr.shape[0]):
        row, row_w = arr[i], w[i]
        total = row_w.sum()
        if total <= 0.0:
            raise DataError(f"row {i} has all-zero weights")
        values, first_pos = np.unique(row, return_index=True)
        scores = np.array([row_w[row == v].sum() for v in values])
        best = scores.max()
        tied = scores >= best - 1e-12 * max(best, 1.0)
        out[i] = values[tied][np.argmin(first_pos[tied])]
    return out


class VotingEnsemble(Classifier):
    """Combine several fitted-together classifiers by (weighted) vote.

    Parameters
    ----------
    members:
        The component classifiers. Each is fitted on the same data by
        :meth:`fit`.
    weights:
        Optional per-member vote weights; default is uniform (plain
        majority vote).
    """

    def __init__(self, members, *, weights=None):
        super().__init__()
        members = list(members)
        if not members:
            raise ConfigurationError("VotingEnsemble needs at least one member")
        for m in members:
            if not isinstance(m, Classifier):
                raise ConfigurationError(
                    f"ensemble members must be Classifier instances, got {type(m)}"
                )
        self.members = members
        if weights is None:
            self.weights = np.ones(len(members))
        else:
            self.weights = np.asarray(weights, dtype=np.float64)
            if self.weights.shape != (len(members),):
                raise ConfigurationError(
                    "weights must have one entry per ensemble member"
                )
            if (self.weights < 0).any() or self.weights.sum() <= 0:
                raise ConfigurationError(
                    "weights must be non-negative and not all zero"
                )

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        for member in self.members:
            member.fit(X, y)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        votes = np.stack([np.atleast_1d(m.predict(X)) for m in self.members], axis=1)
        return weighted_vote(votes, self.weights)

    def __repr__(self) -> str:
        names = ", ".join(type(m).__name__ for m in self.members)
        return f"VotingEnsemble([{names}])"
