"""Nearest-centroid classifier.

The cheapest alternative best-predictor forecaster: collapse each class
to the mean of its training windows and classify by nearest centroid.
Useful as the ablation's lower anchor — it captures only the coarse
location of each predictor's "home region" in feature space, so the gap
between it and k-NN measures how much the *local* structure of the
labelled windows matters to the LARPredictor.
"""

from __future__ import annotations

import numpy as np

from repro.learn.base import Classifier
from repro.learn.distance import squared_euclidean_distances

__all__ = ["NearestCentroidClassifier"]


class NearestCentroidClassifier(Classifier):
    """Classify to the class whose training-mean is closest (Euclidean)."""

    def __init__(self) -> None:
        super().__init__()
        self._centroids: np.ndarray | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        classes = self.classes_
        centroids = np.empty((classes.shape[0], X.shape[1]))
        for j, c in enumerate(classes):
            centroids[j] = X[y == c].mean(axis=0)
        self._centroids = centroids

    def _predict(self, X: np.ndarray) -> np.ndarray:
        d2 = squared_euclidean_distances(X, self._centroids)
        return self.classes_[np.argmin(d2, axis=1)]

    @property
    def centroids_(self) -> np.ndarray:
        """``(n_classes, n_features)`` fitted class centroids."""
        self._require_fitted()
        return self._centroids  # type: ignore[return-value]

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"NearestCentroidClassifier({state})"
