"""Multinomial logistic regression (softmax) classifier.

The parametric-linear member of the classifier family (§5's "other
types of classification algorithms"): unlike k-NN it compresses the
labelled windows into one weight matrix, so prediction cost is O(n_c·n)
regardless of training-set size — the opposite end of the
memory/computation trade-off from k-NN's O(N) scans, and a useful point
on the §7.3 cost axis.

Trained by full-batch gradient descent on the L2-regularized
cross-entropy; every step is a pair of matrix products, so training is
BLAS-bound. Features are standardized internally (the optimizer's
conditioning, not the caller's problem).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.learn.base import Classifier

__all__ = ["SoftmaxClassifier"]


class SoftmaxClassifier(Classifier):
    """Linear softmax classifier trained by gradient descent.

    Parameters
    ----------
    learning_rate:
        Gradient step size (on standardized features).
    epochs:
        Maximum full-batch gradient steps.
    l2:
        Weight-decay strength (biases unpenalized).
    tol:
        Stop early when the loss improvement falls below this.
    """

    def __init__(
        self,
        *,
        learning_rate: float = 0.5,
        epochs: int = 300,
        l2: float = 1e-3,
        tol: float = 1e-7,
    ):
        super().__init__()
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        if l2 < 0:
            raise ConfigurationError(f"l2 must be >= 0, got {l2}")
        if tol < 0:
            raise ConfigurationError(f"tol must be >= 0, got {tol}")
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.l2 = float(l2)
        self.tol = float(tol)
        self._W: np.ndarray | None = None  # (n_features, n_classes)
        self._b: np.ndarray | None = None
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None
        self.n_iter_: int = 0

    # -- hooks ---------------------------------------------------------------

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        classes = self.classes_
        n, d = X.shape
        k = classes.shape[0]
        self._mu = X.mean(axis=0)
        sigma = X.std(axis=0)
        self._sigma = np.where(sigma > 0, sigma, 1.0)
        Z = (X - self._mu) / self._sigma
        Y = np.zeros((n, k))
        for j, c in enumerate(classes):
            Y[y == c, j] = 1.0
        W = np.zeros((d, k))
        b = np.zeros(k)
        prev_loss = np.inf
        lr = self.learning_rate
        for step in range(self.epochs):
            logits = Z @ W + b
            logits -= logits.max(axis=1, keepdims=True)
            expl = np.exp(logits)
            P = expl / expl.sum(axis=1, keepdims=True)
            loss = (
                -np.log(np.maximum(P[Y.astype(bool)], 1e-300)).mean()
                + 0.5 * self.l2 * float((W * W).sum())
            )
            grad_logits = (P - Y) / n
            grad_W = Z.T @ grad_logits + self.l2 * W
            grad_b = grad_logits.sum(axis=0)
            W -= lr * grad_W
            b -= lr * grad_b
            self.n_iter_ = step + 1
            if prev_loss - loss < self.tol:
                break
            prev_loss = loss
        self._W, self._b = W, b

    def _predict(self, X: np.ndarray) -> np.ndarray:
        scores = self._decision(X)
        return self.classes_[np.argmax(scores, axis=1)]

    # -- extras --------------------------------------------------------------

    def predict_proba(self, X) -> np.ndarray:
        """Softmax class probabilities, ordered like :attr:`classes_`."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        logits = self._decision(X)
        logits -= logits.max(axis=1, keepdims=True)
        expl = np.exp(logits)
        return expl / expl.sum(axis=1, keepdims=True)

    def _decision(self, X: np.ndarray) -> np.ndarray:
        Z = (X - self._mu) / self._sigma
        return Z @ self._W + self._b

    def __repr__(self) -> str:
        state = f"fitted in {self.n_iter_} steps" if self.is_fitted else "unfitted"
        return (
            f"SoftmaxClassifier(lr={self.learning_rate}, l2={self.l2}, {state})"
        )
