"""The classifier interface shared by every best-predictor forecaster.

The LARPredictor only needs ``fit(X, y)`` / ``predict(X)`` over integer
class labels (the labels are predictor indices in the pool). Keeping the
contract this small is what lets the methodology swap k-NN for naive
Bayes, nearest-centroid, or a decision tree without touching the core.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import DataError, NotFittedError
from repro.util.validation import as_matrix

__all__ = ["Classifier"]


class Classifier(abc.ABC):
    """Abstract multi-class classifier over real-valued feature vectors.

    Subclasses implement :meth:`_fit` and :meth:`_predict`; this base
    handles validation, label bookkeeping, and the single-sample
    convenience path, so concrete classifiers stay purely numerical.
    """

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None
        self._n_features: int | None = None

    # -- public API --------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.classes_ is not None

    def fit(self, X, y) -> "Classifier":
        """Learn from feature matrix *X* and integer labels *y*.

        Parameters
        ----------
        X:
            ``(n_samples, n_features)`` matrix. A 1-D input is treated as
            ``n_samples`` single-feature rows.
        y:
            Length ``n_samples`` integer labels.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        X = as_matrix(X, name="X", min_rows=1)
        y = np.asarray(y)
        if y.ndim != 1:
            raise DataError(f"y must be 1-D, got shape {y.shape}")
        if y.shape[0] != X.shape[0]:
            raise DataError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} labels"
            )
        if y.size == 0:
            raise DataError("cannot fit a classifier on zero samples")
        if not np.issubdtype(y.dtype, np.integer):
            y_int = y.astype(np.int64)
            if not np.array_equal(y_int, y):
                raise DataError("labels must be integers")
            y = y_int
        else:
            y = y.astype(np.int64)
        self.classes_ = np.unique(y)
        self._n_features = X.shape[1]
        self._fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict a label for each row of *X*.

        A single 1-D sample yields a 0-d result convertible with ``int()``;
        a matrix yields a 1-D label array.
        """
        self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        if X.ndim != 2:
            raise DataError(f"X must be 1-D or 2-D, got shape {X.shape}")
        if X.shape[1] != self._n_features:
            raise DataError(
                f"X has {X.shape[1]} features but classifier was fitted "
                f"on {self._n_features}"
            )
        labels = self._predict(X)
        return labels[0] if single else labels

    def predict_one(self, x) -> int:
        """Predict the label of a single sample as a plain ``int``."""
        return int(self.predict(np.asarray(x, dtype=np.float64)))

    def score(self, X, y) -> float:
        """Mean accuracy of :meth:`predict` on the given test data."""
        y = np.asarray(y)
        pred = self.predict(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        if pred.shape != y.shape:
            raise DataError(
                f"prediction shape {pred.shape} does not match labels {y.shape}"
            )
        return float(np.mean(pred == y))

    # -- subclass hooks ------------------------------------------------------

    @abc.abstractmethod
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Fit on validated float64 *X* and int64 *y*."""

    @abc.abstractmethod
    def _predict(self, X: np.ndarray) -> np.ndarray:
        """Predict int64 labels for validated float64 *X*."""

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before predicting"
            )
