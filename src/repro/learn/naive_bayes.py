"""Gaussian naive Bayes classifier.

One of the alternative best-predictor forecasters backing the paper's
claim (§5) that the methodology "may be generally used with other types
of classification algorithms". Fits a per-class diagonal Gaussian over
the (PCA-reduced) window features; prediction maximizes the log joint
likelihood. All densities are evaluated in log space, vectorized across
classes, to avoid underflow on far-out windows.
"""

from __future__ import annotations

import numpy as np

from repro.learn.base import Classifier

__all__ = ["GaussianNBClassifier"]


class GaussianNBClassifier(Classifier):
    """Naive Bayes with per-class, per-feature Gaussian likelihoods.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest overall feature variance added to every
        per-class variance. Guards against zero variance when a class has
        a single training window or a constant feature.
    """

    def __init__(self, *, var_smoothing: float = 1e-9):
        super().__init__()
        var_smoothing = float(var_smoothing)
        if var_smoothing < 0:
            raise ValueError(f"var_smoothing must be >= 0, got {var_smoothing}")
        self.var_smoothing = var_smoothing
        self._theta: np.ndarray | None = None  # (n_classes, n_features) means
        self._var: np.ndarray | None = None  # (n_classes, n_features) variances
        self._log_prior: np.ndarray | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        classes = self.classes_
        n_classes, n_features = classes.shape[0], X.shape[1]
        theta = np.empty((n_classes, n_features))
        var = np.empty((n_classes, n_features))
        prior = np.empty(n_classes)
        eps = self.var_smoothing * float(X.var(axis=0).max() or 1.0)
        for j, c in enumerate(classes):
            Xc = X[y == c]
            theta[j] = Xc.mean(axis=0)
            var[j] = Xc.var(axis=0) + eps
            prior[j] = Xc.shape[0] / X.shape[0]
        # A constant feature inside a class with var_smoothing=0 would
        # produce a zero variance; clamp so the log density stays finite.
        np.maximum(var, 1e-300, out=var)
        self._theta, self._var = theta, var
        self._log_prior = np.log(prior)

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        """``(n_samples, n_classes)`` log p(x | c) + log p(c)."""
        theta, var = self._theta, self._var
        # (n_samples, 1, n_features) - (1, n_classes, n_features)
        diff = X[:, None, :] - theta[None, :, :]
        log_like = -0.5 * (
            np.log(2.0 * np.pi * var)[None, :, :] + diff * diff / var[None, :, :]
        ).sum(axis=2)
        return log_like + self._log_prior[None, :]

    def _predict(self, X: np.ndarray) -> np.ndarray:
        jll = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(jll, axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        """Posterior class probabilities via a stable log-sum-exp."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        p /= p.sum(axis=1, keepdims=True)
        return p

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"GaussianNBClassifier(var_smoothing={self.var_smoothing}, {state})"
