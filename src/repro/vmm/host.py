"""The simulated ESX host: CPU arbitration and contention.

The paper's physical host (a 2.0 GHz Xeon running ESX 2.5.2) multiplexes
its guests; the ``CPU_ready`` metric is "the percentage of time that the
virtual machine was ready but could not get scheduled to run on a
physical CPU" — i.e. a *host-level* phenomenon, a function of everyone
else's demand, not of the guest alone. The host model reproduces that:

* each guest's CPU model emits *demand* (CPU-seconds per minute);
* a background-load model stands in for the other co-hosted guests and
  the service console;
* per minute, if total demand exceeds capacity, every demander is
  scaled back proportionally (ESX's default equal-share policy with
  equal shares), and the unmet portion becomes ready time.

This is what makes the simulated ``CPU_ready`` traces bursty and
cross-correlated with load, the character the LARPredictor's CPU rows
exercise.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.util.rng import resolve_rng
from repro.vmm.devices import DeviceModel, MomentumLoadModel
from repro.vmm.vm import METRICS, GuestVM

__all__ = ["HostServer"]


class HostServer:
    """Fixed-capacity host with proportional-share CPU arbitration.

    Parameters
    ----------
    cpu_capacity:
        CPU-seconds the host can serve per minute (60 per physical
        core; the paper's host is a single-socket Xeon, so 60).
    background:
        Device model for the co-tenant demand the traced VM competes
        with. Defaults to a smooth but occasionally saturating load.
    """

    def __init__(
        self,
        *,
        cpu_capacity: float = 60.0,
        background: DeviceModel | None = None,
    ):
        cpu_capacity = float(cpu_capacity)
        if cpu_capacity <= 0:
            raise ConfigurationError(
                f"cpu_capacity must be positive, got {cpu_capacity}"
            )
        self.cpu_capacity = cpu_capacity
        if background is None:
            # Momentum (persistent-velocity) co-tenant load: parameters
            # are per minute; the velocity persistence survives 5- and
            # 30-minute consolidation, so contention-driven CPU_ready
            # keeps AR-predictable ramp structure at the report scale.
            background = MomentumLoadModel(
                mean=0.50 * cpu_capacity,
                std=0.24 * cpu_capacity,
                momentum=0.95,
                reversion=0.999,
                lo=0.0,
                hi=cpu_capacity,
            )
        self.background = background

    # -- arbitration --------------------------------------------------------

    def arbitrate(
        self,
        demand: np.ndarray,
        background_demand: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split a guest's CPU demand into (used, ready%) under contention.

        Parameters
        ----------
        demand:
            Guest CPU demand, CPU-seconds per minute.
        background_demand:
            Co-tenant demand on the same scale.

        Returns
        -------
        (used, ready_pct):
            ``used`` is the demand actually served (CPU-seconds/min);
            ``ready_pct`` is the unserved share of the minute as a
            percentage — the vmkusage ``CPU_Ready`` definition.
        """
        demand = np.asarray(demand, dtype=np.float64)
        background_demand = np.asarray(background_demand, dtype=np.float64)
        if demand.shape != background_demand.shape:
            raise ConfigurationError(
                f"demand shapes differ: {demand.shape} vs {background_demand.shape}"
            )
        total = demand + background_demand
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(
                total > self.cpu_capacity,
                self.cpu_capacity / np.maximum(total, 1e-12),
                1.0,
            )
        used = demand * scale
        unserved = demand - used
        ready_pct = unserved / 60.0 * 100.0
        return used, ready_pct

    def simulate_vm(
        self, vm: GuestVM, n_minutes: int, seed=None
    ) -> dict[str, np.ndarray]:
        """Generate one guest's full per-minute metric matrix.

        The guest's ``CPU_usedsec`` model provides demand; arbitration
        produces the final ``CPU_usedsec`` (served) and adds contention
        ready-time on top of the guest's own ``CPU_ready`` baseline
        (scheduling jitter the guest would see even on an idle host).
        """
        rng = resolve_rng(seed)
        raw = vm.generate_raw(n_minutes, rng)
        background_demand = self.background.generate(int(n_minutes), rng)
        used, contention_ready = self.arbitrate(
            raw["CPU_usedsec"], background_demand
        )
        out = {metric: raw[metric] for metric in METRICS}
        out["CPU_usedsec"] = used
        out["CPU_ready"] = np.maximum(raw["CPU_ready"] + contention_ready, 0.0)
        return out

    def simulate_cohort(
        self, vms, n_minutes: int, seed=None
    ) -> dict[str, dict[str, np.ndarray]]:
        """Simulate several guests co-hosted on this server.

        Unlike :meth:`simulate_vm` — where the traced guest competes
        only with the synthetic background — every guest here competes
        with every *other* guest **and** the background, minute by
        minute, under the same proportional-share policy. This is the
        configuration the paper's testbed actually ran (five VMs on one
        Xeon host): contention couples the guests' ``CPU_ready`` traces
        to each other's load.

        Returns
        -------
        dict
            ``vm_id -> {metric -> per-minute samples}``.
        """
        vms = list(vms)
        if not vms:
            raise ConfigurationError("simulate_cohort needs at least one VM")
        ids = [vm.vm_id for vm in vms]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate vm_ids in cohort: {ids}")
        n_minutes = int(n_minutes)
        if n_minutes < 1:
            raise ConfigurationError(f"n_minutes must be >= 1, got {n_minutes}")
        rng = resolve_rng(seed)
        raws = {vm.vm_id: vm.generate_raw(n_minutes, rng) for vm in vms}
        background = self.background.generate(n_minutes, rng)
        demands = np.stack([raws[i]["CPU_usedsec"] for i in ids], axis=0)
        total = demands.sum(axis=0) + background
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(
                total > self.cpu_capacity,
                self.cpu_capacity / np.maximum(total, 1e-12),
                1.0,
            )
        out: dict[str, dict[str, np.ndarray]] = {}
        for j, vm in enumerate(vms):
            used = demands[j] * scale
            ready = (demands[j] - used) / 60.0 * 100.0
            metrics = {m: raws[vm.vm_id][m] for m in METRICS}
            metrics["CPU_usedsec"] = used
            metrics["CPU_ready"] = np.maximum(
                raws[vm.vm_id]["CPU_ready"] + ready, 0.0
            )
            out[vm.vm_id] = metrics
        return out

    def __repr__(self) -> str:
        return f"HostServer(cpu_capacity={self.cpu_capacity})"
