"""Workload profiles of the five traced VMs (paper §7).

    VM1: web server, Globus GRAM/MDS + GridFTP, PBS head node
         (7-day trace, 30-minute intervals, 310 batch jobs)
    VM2: Linux port-forwarding proxy for VNC sessions
    VM3: Windows XP-based calendar
    VM4: web server + list server + wiki
    VM5: web server
         (VM2-VM5: 24-hour traces, 5-minute intervals)

Each profile assigns one device model per metric. Two structural rules
make the traces behave like the paper's:

1. **Time constants live at the report scale.** The monitoring agent
   samples every minute but the traces are consolidated to 5- or
   30-minute averages; any structure faster than the report interval is
   averaged away. So AR coefficients, sojourn times, spike rates and
   decay constants below are specified per *report step* and converted
   to per-minute values (``phi_min = phi_rep ** (1/interval)``,
   ``sojourn_min = sojourn_steps * interval``, ...).

2. **Regimes differ in level and in winner.** The trace classes are
   chosen so the per-step best predictor is *learnable from the window
   shape*: exactly-quiet stretches (idle NICs report constants — LAST's
   zero-error home), smooth AR ramps (AR's home), near-white churn
   (SW_AVG's home), and stepped allocations (LAST again). Regime
   switches move the window *mean*, which is what a linear PCA feature
   can see — the mechanism that lets the k-NN selector adapt
   (Figures 4/5) and beat every static predictor on mixed traces.

The NaN pattern matches Table 3: VM3's Memory_swapped, NIC2 and VD1 and
VM5's NIC1 and VD2_read are constant (unused devices), leaving 52 valid
traces of 60.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.util.rng import resolve_rng
from repro.vmm.devices import (
    BurstyTrafficModel,
    MomentumLoadModel,
    CompositeModel,
    ConstantModel,
    DeviceModel,
    ExogenousModel,
    PeriodicLoadModel,
    RegimeSwitchingModel,
    SmoothLoadModel,
    SpikeModel,
    SteppedResourceModel,
)
from repro.vmm.jobs import PAPER_VM1_JOB_MIX, demand_series, generate_jobs
from repro.vmm.vm import GuestVM

__all__ = ["VMSpec", "paper_vm_specs", "build_vm", "PAPER_TRACE_LAYOUT"]

#: Per-VM (duration_minutes, report_interval_minutes) from §7: VM1 is a
#: 7-day trace at 30-minute intervals, VM2-VM5 are 24-hour traces at
#: 5-minute intervals.
PAPER_TRACE_LAYOUT: dict[str, tuple[int, int]] = {
    "VM1": (7 * 24 * 60, 30),
    "VM2": (24 * 60, 5),
    "VM3": (24 * 60, 5),
    "VM4": (24 * 60, 5),
    "VM5": (24 * 60, 5),
}

#: Number of jobs executed on VM1 during its 7-day trace.
PAPER_VM1_JOB_COUNT = 310

_DAY = 1440  # minutes


@dataclass(frozen=True)
class VMSpec:
    """A buildable VM profile.

    Attributes
    ----------
    vm_id, description:
        Identity, mirroring §7's list.
    duration_minutes:
        Length of the simulated trace at one-minute resolution.
    report_interval_minutes:
        Consolidation interval of the reported trace (5 or 30).
    vm:
        The fully-wired :class:`~repro.vmm.vm.GuestVM`.
    """

    vm_id: str
    description: str
    duration_minutes: int
    report_interval_minutes: int
    vm: GuestVM

    @property
    def n_reported_points(self) -> int:
        """Length of the consolidated trace the profiler extracts."""
        return self.duration_minutes // self.report_interval_minutes


# -- report-scale -> minute-scale conversions ---------------------------------


def _phi(phi_rep: float, interval: int) -> float:
    """Per-minute AR coefficient giving *phi_rep* at the report lag."""
    if not 0.0 <= phi_rep < 1.0:
        raise ConfigurationError(f"phi_rep must be in [0, 1), got {phi_rep}")
    return phi_rep ** (1.0 / interval)


def _smooth(
    mean: float, std: float, phi_rep: float, interval: int, *, hi: float | None = None
) -> DeviceModel:
    """Smooth load whose report-scale lag-1 autocorrelation is *phi_rep*."""
    return SmoothLoadModel(mean=mean, std=std, phi=_phi(phi_rep, interval), lo=0.0, hi=hi)


def _momentum(
    mean: float,
    std: float,
    interval: int,
    *,
    mom_rep: float = 0.7,
    hi: float | None = None,
    lo: float = 0.0,
) -> DeviceModel:
    """Momentum load whose velocity persistence is *mom_rep* per report
    step — the AR-dominant class (persistent ramps LAST lags behind)."""
    return MomentumLoadModel(
        mean=mean,
        std=std,
        momentum=mom_rep ** (1.0 / interval),
        reversion=0.96 ** (1.0 / interval),
        lo=lo,
        hi=hi,
    )


def _osc(mean: float, std: float, interval: int, *, phi_rep: float = 0.45) -> DeviceModel:
    """Oscillating (anti-persistent) load: drain/fill cycles.

    Negative report-scale lag-1 autocorrelation. LAST is poor here (it
    chases the swing), the window mean is good — the dynamic opposite of
    :func:`_momentum`.
    """
    # A per-minute phi of -(phi_rep ** (1/interval)) flips sign at every
    # consolidated step, preserving the negative report-scale lag-1.
    return SmoothLoadModel(
        mean=mean, std=std, phi=-(phi_rep ** (1.0 / interval)), lo=0.0
    )


def _conflict(
    interval: int,
    *,
    hi_mean: float,
    hi_std: float,
    lo_mean: float,
    lo_std: float,
    sojourn_steps: float = 35.0,
    mom_rep: float = 0.7,
    osc_rep: float = 0.45,
) -> DeviceModel:
    """Regime switching between *conflicting* dynamics.

    A momentum phase (persistent ramps, AR's home) alternates with an
    oscillating phase (anti-persistent drain/fill, the window average's
    home) at a different level. A single AR model fitted across both
    phases compromises its coefficients and is mediocre in each, so the
    per-phase best predictors win by a margin — the workload class on
    which the LARPredictor genuinely beats every static predictor
    (paper claim 4, §1), not merely ties the dominant one. The level
    difference is what makes the phase visible to the linear PCA
    features the k-NN selector sees.
    """
    return RegimeSwitchingModel(
        [
            _momentum(hi_mean, hi_std, interval, mom_rep=mom_rep),
            _osc(lo_mean, lo_std, interval, phi_rep=osc_rep),
        ],
        mean_sojourn=sojourn_steps * interval,
    )


def _white(mean: float, std: float, interval: int = 5) -> DeviceModel:
    """Near-white churn over a slow drift — SW_AVG's home class.

    Pure white noise is best predicted by the *global* mean (which the
    AR fit collapses to), so a slowly wandering level is added: the
    local window mean then tracks the drift better than any global
    statistic, which is what makes the sliding-window average win its
    Table 3 cells.
    """
    return CompositeModel(
        [
            SmoothLoadModel(mean=mean, std=std, phi=0.05, lo=0.0),
            SmoothLoadModel(mean=0.0, std=0.5 * std, phi=_phi(0.85, interval),
                            lo=-3.0 * std, hi=3.0 * std),
        ]
    )


def _bursty(
    interval: int,
    *,
    on_steps: float,
    off_steps: float,
    level: float,
    sigma: float = 0.5,
    phi_rep: float = 0.85,
    off_level: float = 0.0,
    off_chatter: float | None = None,
) -> DeviceModel:
    """ON/OFF traffic: smooth log-level bursts over smooth quiet chatter.

    The quiet state carries low-level autocorrelated chatter (default
    15% of the quiet level) so that the AR model stays competitive in
    both states — which is what keeps mis-selections between the
    near-tied models cheap, as the paper's Table 2 rows (all selectors
    within tens of percent of each other) imply.
    """
    if off_chatter is None:
        off_chatter = 0.15 * max(off_level, 1.0)
    return BurstyTrafficModel(
        mean_on=on_steps * interval,
        mean_off=off_steps * interval,
        on_level=level,
        on_sigma=sigma,
        off_level=off_level,
        noise_std=off_chatter,
        phi=_phi(phi_rep, interval),
        momentum=0.6 ** (1.0 / interval),
    )


def _stepped(
    interval: int, *, initial: float, hold_steps: float, step: float, hi: float
) -> DeviceModel:
    """Stepped allocation with smooth dither.

    The dither keeps any train split non-degenerate (a fold landing
    entirely inside one hold would otherwise have zero variance). It is
    *smooth* (high report-scale autocorrelation), not white: white
    dither would hand the within-hold steps to the window average and
    scramble the labels, where the real behaviour of an allocation
    metric — and Table 3's memory rows — is LAST-dominated.
    """
    return CompositeModel(
        [
            SteppedResourceModel(
                initial, mean_hold=hold_steps * interval, step_std=step, lo=0.0, hi=hi
            ),
            SmoothLoadModel(mean=0.0, std=max(step * 0.05, 1e-3),
                            phi=_phi(0.9, interval), lo=-step, hi=step),
        ]
    )


def _spikes(
    interval: int,
    *,
    background: float,
    prob_per_step: float,
    mean: float,
    decay_rep: float = 0.5,
    noise_std: float = 0.0,
) -> DeviceModel:
    """Poisson spikes over smooth background chatter.

    Spike decays persist for several report steps (AR-predictable
    ramps); between spikes the disk idles at smooth autocorrelated
    chatter, keeping the AR model competitive everywhere for the same
    reason as :func:`_bursty`.
    """
    spikes = SpikeModel(
        background=0.0,
        spike_prob=min(1.0, prob_per_step / interval),
        spike_mean=mean,
        decay=decay_rep ** (1.0 / interval),
        noise_std=noise_std,
    )
    chatter = SmoothLoadModel(
        mean=background,
        std=0.3 * max(background, 0.5),
        phi=_phi(0.85, interval),
        lo=0.0,
    )
    return CompositeModel([spikes, chatter])


# -- the five profiles -------------------------------------------------------


def _vm1(seed) -> GuestVM:
    """Grid-service host driven by the 310-job batch schedule."""
    rng = resolve_rng(seed)
    duration, iv = PAPER_TRACE_LAYOUT["VM1"]
    jobs = generate_jobs(
        PAPER_VM1_JOB_COUNT, duration * 60.0, mix=PAPER_VM1_JOB_MIX, seed=rng
    )
    cpu_demand = demand_series(jobs, duration)
    return GuestVM(
        vm_id="VM1",
        description=(
            "web server, Globus GRAM/MDS and GridFTP services, PBS head node"
        ),
        models={
            # Middleware baseline plus the batch schedule's demand.
            "CPU_usedsec": CompositeModel(
                [
                    ExogenousModel(cpu_demand, scale=1.0, lo=0.0, hi=60.0),
                    _momentum(6.0, 2.5, iv, hi=60.0),
                ]
            ),
            "CPU_ready": _momentum(0.8, 0.5, iv, hi=100.0),
            "Memory_size": _stepped(iv, initial=512.0, hold_steps=16.0, step=48.0,
                                    hi=1024.0),
            "Memory_swapped": _stepped(iv, initial=64.0, hold_steps=20.0, step=24.0,
                                       hi=512.0),
            # GridFTP transfers: multi-hour bursts, silent otherwise.
            "NIC1_received": _conflict(iv, hi_mean=420.0, hi_std=75.0,
                                       lo_mean=170.0, lo_std=65.0,
                                       sojourn_steps=24.0),
            "NIC1_transmitted": _conflict(iv, hi_mean=260.0, hi_std=46.0,
                                          lo_mean=105.0, lo_std=40.0,
                                          sojourn_steps=24.0),
            # Web traffic: diurnal swing with smooth request noise.
            "NIC2_received": PeriodicLoadModel(
                base=35.0, amplitude=22.0, period=_DAY,
                noise_std=6.0, phi=_phi(0.6, iv),
            ),
            "NIC2_transmitted": _conflict(iv, hi_mean=90.0, hi_std=16.0,
                                          lo_mean=36.0, lo_std=14.0,
                                          sojourn_steps=22.0),
            "VD1_read": _spikes(iv, background=9.0, prob_per_step=0.18,
                                mean=90.0, decay_rep=0.7),
            "VD1_write": _conflict(iv, hi_mean=120.0, hi_std=21.0,
                                   lo_mean=48.0, lo_std=19.0,
                                   sojourn_steps=22.0),
            # Near-white scratch reads: the SW_AVG cell of Table 3.
            "VD2_read": _white(mean=12.0, std=5.0, interval=iv),
            "VD2_write": _spikes(iv, background=6.0, prob_per_step=0.16,
                                 mean=70.0, decay_rep=0.68),
        },
    )


def _vm2(seed) -> GuestVM:
    """VNC proxy: regime-switching CPU and NIC (the Figure 4/5 traces)."""
    iv = PAPER_TRACE_LAYOUT["VM2"][1]
    return GuestVM(
        vm_id="VM2",
        description="Linux-based port-forwarding proxy for VNC sessions",
        models={
            # Three session regimes with distinct levels and winners:
            # idle churn (SW_AVG), active smooth load (AR), saturated
            # plateau (LAST). Figure 4's subject.
            "CPU_usedsec": RegimeSwitchingModel(
                [
                    _white(8.0, 3.0),
                    _momentum(28.0, 6.0, iv, hi=60.0),
                    _smooth(46.0, 0.8, 0.5, iv, hi=60.0),
                ],
                mean_sojourn=38.0 * iv,
            ),
            "CPU_ready": _conflict(iv, hi_mean=3.5, hi_std=0.62,
                                   lo_mean=1.4, lo_std=0.55,
                                   sojourn_steps=22.0),
            "Memory_size": _conflict(iv, hi_mean=440.0, hi_std=36.0,
                                     lo_mean=340.0, lo_std=30.0,
                                     sojourn_steps=24.0, mom_rep=0.8),
            "Memory_swapped": _conflict(iv, hi_mean=72.0, hi_std=13.0,
                                        lo_mean=34.0, lo_std=11.0,
                                        sojourn_steps=24.0, mom_rep=0.75),
            # Session packet streams: ON/OFF (Figure 5's subject).
            "NIC1_received": _bursty(iv, on_steps=26.0, off_steps=18.0, level=300.0,
                                     sigma=0.5, phi_rep=0.9, off_level=2.0),
            "NIC1_transmitted": _conflict(iv, hi_mean=280.0, hi_std=50.0,
                                          lo_mean=120.0, lo_std=44.0,
                                          sojourn_steps=22.0),
            # Management NIC: slow stepped keep-alives; LAST's cell.
            "NIC2_received": _stepped(iv, initial=18.0, hold_steps=12.0, step=3.0,
                                      hi=64.0),
            "NIC2_transmitted": _conflict(iv, hi_mean=60.0, hi_std=11.0,
                                          lo_mean=26.0, lo_std=9.0,
                                          sojourn_steps=22.0),
            "VD1_read": _spikes(iv, background=2.0, prob_per_step=0.07, mean=90.0,
                                decay_rep=0.68),
            "VD1_write": _spikes(iv, background=5.0, prob_per_step=0.09, mean=35.0,
                                 decay_rep=0.65),
            "VD2_read": _spikes(iv, background=1.5, prob_per_step=0.06, mean=60.0,
                                decay_rep=0.7),
            "VD2_write": _spikes(iv, background=2.5, prob_per_step=0.07, mean=80.0,
                                 decay_rep=0.66),
        },
    )


def _vm3(seed) -> GuestVM:
    """Windows XP calendar: mostly idle, several devices unused (NaN)."""
    iv = PAPER_TRACE_LAYOUT["VM3"][1]
    return GuestVM(
        vm_id="VM3",
        description="Windows XP based calendar",
        models={
            "CPU_usedsec": CompositeModel(
                [
                    _momentum(3.0, 1.2, iv, hi=60.0),
                    _spikes(iv, background=0.0, prob_per_step=0.06, mean=20.0,
                            decay_rep=0.66),
                ]
            ),
            "CPU_ready": _conflict(iv, hi_mean=1.6, hi_std=0.3,
                                   lo_mean=0.7, lo_std=0.25,
                                   sojourn_steps=22.0),
            "Memory_size": _conflict(iv, hi_mean=290.0, hi_std=18.0,
                                     lo_mean=235.0, lo_std=15.0,
                                     sojourn_steps=24.0, mom_rep=0.8),
            "Memory_swapped": ConstantModel(0.0),  # NaN cell in Table 3
            "NIC1_received": _conflict(iv, hi_mean=40.0, hi_std=7.0,
                                       lo_mean=17.0, lo_std=6.0,
                                       sojourn_steps=22.0),
            "NIC1_transmitted": _conflict(iv, hi_mean=30.0, hi_std=5.5,
                                          lo_mean=13.0, lo_std=4.5,
                                          sojourn_steps=22.0),
            "NIC2_received": ConstantModel(0.0),  # NaN
            "NIC2_transmitted": ConstantModel(0.0),  # NaN
            "VD1_read": ConstantModel(0.0),  # NaN
            "VD1_write": ConstantModel(0.0),  # NaN
            "VD2_read": _spikes(iv, background=1.0, prob_per_step=0.06, mean=50.0,
                                decay_rep=0.7),
            "VD2_write": _conflict(iv, hi_mean=28.0, hi_std=5.0,
                                   lo_mean=12.0, lo_std=4.2,
                                   sojourn_steps=22.0),
        },
    )


def _vm4(seed) -> GuestVM:
    """Web + list + wiki servers: diurnal with request bursts."""
    iv = PAPER_TRACE_LAYOUT["VM4"][1]
    return GuestVM(
        vm_id="VM4",
        description="web server, list server, and Wiki server",
        models={
            "CPU_usedsec": CompositeModel(
                [
                    PeriodicLoadModel(base=10.0, amplitude=3.0, period=_DAY,
                                      noise_std=0.5, phi=_phi(0.5, iv), hi=60.0),
                    _conflict(iv, hi_mean=18.0, hi_std=4.0,
                              lo_mean=7.0, lo_std=3.3, sojourn_steps=22.0),
                ]
            ),
            "CPU_ready": _conflict(iv, hi_mean=2.8, hi_std=0.5,
                                   lo_mean=1.2, lo_std=0.42,
                                   sojourn_steps=22.0),
            "Memory_size": _stepped(iv, initial=640.0, hold_steps=14.0, step=28.0,
                                    hi=1280.0),
            "Memory_swapped": _stepped(iv, initial=96.0, hold_steps=18.0, step=16.0,
                                       hi=512.0),
            "NIC1_received": CompositeModel(
                [
                    PeriodicLoadModel(base=60.0, amplitude=35.0, period=_DAY,
                                      noise_std=10.0, phi=_phi(0.6, iv)),
                    _bursty(iv, on_steps=18.0, off_steps=20.0, level=110.0,
                            sigma=0.5, phi_rep=0.9, off_level=0.0),
                ]
            ),
            "NIC1_transmitted": CompositeModel(
                [
                    PeriodicLoadModel(base=90.0, amplitude=55.0, period=_DAY,
                                      noise_std=14.0, phi=_phi(0.6, iv), phase=30.0),
                    _bursty(iv, on_steps=18.0, off_steps=20.0, level=160.0,
                            sigma=0.5, phi_rep=0.9, off_level=0.0),
                ]
            ),
            "NIC2_received": _conflict(iv, hi_mean=80.0, hi_std=14.0,
                                       lo_mean=34.0, lo_std=12.0,
                                       sojourn_steps=22.0),
            "NIC2_transmitted": _conflict(iv, hi_mean=110.0, hi_std=20.0,
                                          lo_mean=45.0, lo_std=17.0,
                                          sojourn_steps=22.0),
            "VD1_read": _spikes(iv, background=5.0, prob_per_step=0.08, mean=140.0,
                                decay_rep=0.68),
            # Wiki page writes: near-white churn — the SW_AVG* cell.
            "VD1_write": _white(mean=18.0, std=7.0, interval=iv),
            "VD2_read": _conflict(iv, hi_mean=60.0, hi_std=11.0,
                                  lo_mean=25.0, lo_std=9.0,
                                  sojourn_steps=22.0),
            "VD2_write": _conflict(iv, hi_mean=70.0, hi_std=12.5,
                                   lo_mean=29.0, lo_std=10.5,
                                   sojourn_steps=22.0),
        },
    )


def _vm5(seed) -> GuestVM:
    """Plain web server: diurnal, single NIC, light disk (several NaN)."""
    iv = PAPER_TRACE_LAYOUT["VM5"][1]
    return GuestVM(
        vm_id="VM5",
        description="web server",
        models={
            "CPU_usedsec": _conflict(iv, hi_mean=16.0, hi_std=3.5,
                                     lo_mean=7.0, lo_std=3.0,
                                     sojourn_steps=22.0),
            "CPU_ready": _momentum(0.7, 0.5, iv, hi=100.0),
            "Memory_size": _conflict(iv, hi_mean=490.0, hi_std=30.0,
                                     lo_mean=410.0, lo_std=25.0,
                                     sojourn_steps=24.0, mom_rep=0.8),
            "Memory_swapped": _conflict(iv, hi_mean=48.0, hi_std=9.0,
                                        lo_mean=20.0, lo_std=7.5,
                                        sojourn_steps=24.0, mom_rep=0.75),
            "NIC1_received": ConstantModel(0.0),  # NaN — site served on NIC2
            "NIC1_transmitted": ConstantModel(0.0),  # NaN
            # Request arrivals: near-white — the SW_AVG cell of Table 3.
            "NIC2_received": _white(mean=45.0, std=16.0, interval=iv),
            "NIC2_transmitted": CompositeModel(
                [
                    PeriodicLoadModel(base=70.0, amplitude=40.0, period=_DAY,
                                      noise_std=12.0, phi=_phi(0.65, iv)),
                    _bursty(iv, on_steps=15.0, off_steps=16.0, level=80.0,
                            sigma=0.5, phi_rep=0.9, off_level=0.0),
                ]
            ),
            # Static-content cache reads: near-white — SW_AVG's cell.
            "VD1_read": _white(mean=10.0, std=4.0, interval=iv),
            "VD1_write": _spikes(iv, background=2.0, prob_per_step=0.08, mean=60.0,
                                 decay_rep=0.66),
            "VD2_read": ConstantModel(0.0),  # NaN — unused second disk
            "VD2_write": _momentum(4.0, 1.4, iv),
        },
    )


_BUILDERS = {"VM1": _vm1, "VM2": _vm2, "VM3": _vm3, "VM4": _vm4, "VM5": _vm5}


def paper_vm_specs(seed=None) -> list[VMSpec]:
    """Build all five VM profiles with the paper's trace layout.

    Parameters
    ----------
    seed:
        Seed for the *structural* randomness inside the profiles (VM1's
        job schedule). The per-minute sample noise is drawn later, when
        the monitoring agent runs.
    """
    from repro.util.rng import spawn_rngs

    rngs = {vm_id: rng for vm_id, rng in zip(sorted(_BUILDERS), spawn_rngs(seed, len(_BUILDERS)))}
    specs = []
    for vm_id in ("VM1", "VM2", "VM3", "VM4", "VM5"):
        duration, interval = PAPER_TRACE_LAYOUT[vm_id]
        vm = _BUILDERS[vm_id](rngs[vm_id])
        specs.append(
            VMSpec(
                vm_id=vm_id,
                description=vm.description,
                duration_minutes=duration,
                report_interval_minutes=interval,
                vm=vm,
            )
        )
    return specs


def build_vm(vm_id: str, seed=None) -> VMSpec:
    """Build a single named VM profile."""
    if vm_id not in _BUILDERS:
        raise ConfigurationError(
            f"unknown VM {vm_id!r}; choose from {sorted(_BUILDERS)}"
        )
    duration, interval = PAPER_TRACE_LAYOUT[vm_id]
    vm = _BUILDERS[vm_id](resolve_rng(seed))
    return VMSpec(
        vm_id=vm_id,
        description=vm.description,
        duration_minutes=duration,
        report_interval_minutes=interval,
        vm=vm,
    )
