"""Batch-job workload generation for VM1 (paper §7).

VM1 hosts Grid middleware (Globus GRAM/MDS, GridFTP, a PBS head node)
and, over the 7-day trace, executed "total 310 jobs ... with a mix of
93.55% short running jobs (1-2 seconds), 3.87% medium running jobs
(2-10 minutes), and 2.58% long running jobs (45-50 minutes)". This
module reproduces that mix: job arrivals over the week, per-class
durations, and the per-minute resource demand the running jobs imply,
which drives VM1's CPU/disk/network device models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.util.rng import resolve_rng

__all__ = ["Job", "JobMix", "PAPER_VM1_JOB_MIX", "generate_jobs", "demand_series"]


@dataclass(frozen=True)
class Job:
    """One batch job.

    Attributes
    ----------
    arrival:
        Arrival time in seconds from trace start.
    duration:
        Run time in seconds.
    cpu_share:
        Fraction of one CPU the job consumes while running.
    """

    arrival: float
    duration: float
    cpu_share: float

    @property
    def completion(self) -> float:
        """End time in seconds."""
        return self.arrival + self.duration


@dataclass(frozen=True)
class JobMix:
    """A job-class mixture.

    Attributes
    ----------
    fractions:
        Per-class probabilities (must sum to 1).
    duration_ranges:
        Per-class (lo, hi) duration bounds in seconds; durations are
        uniform within the class range.
    cpu_shares:
        Per-class CPU fraction while running.
    """

    fractions: tuple[float, ...]
    duration_ranges: tuple[tuple[float, float], ...]
    cpu_shares: tuple[float, ...]

    def __post_init__(self) -> None:
        k = len(self.fractions)
        if k == 0 or len(self.duration_ranges) != k or len(self.cpu_shares) != k:
            raise ConfigurationError(
                "fractions, duration_ranges and cpu_shares must have equal, "
                "non-zero lengths"
            )
        if abs(sum(self.fractions) - 1.0) > 1e-9:
            raise ConfigurationError(
                f"class fractions must sum to 1, got {sum(self.fractions)}"
            )
        for lo, hi in self.duration_ranges:
            if not 0 < lo <= hi:
                raise ConfigurationError(
                    f"invalid duration range ({lo}, {hi})"
                )
        for share in self.cpu_shares:
            if not 0 < share <= 1.0:
                raise ConfigurationError(
                    f"cpu_share must be in (0, 1], got {share}"
                )


#: The paper's VM1 mix: 93.55% short (1-2 s), 3.87% medium (2-10 min),
#: 2.58% long (45-50 min).
PAPER_VM1_JOB_MIX = JobMix(
    fractions=(0.9355, 0.0387, 0.0258),
    duration_ranges=((1.0, 2.0), (120.0, 600.0), (2700.0, 3000.0)),
    cpu_shares=(0.9, 0.7, 0.6),
)


def generate_jobs(
    n_jobs: int,
    horizon_seconds: float,
    *,
    mix: JobMix = PAPER_VM1_JOB_MIX,
    seed=None,
) -> list[Job]:
    """Draw *n_jobs* jobs over a horizon with the given class mix.

    Arrivals are uniform over the horizon (the order-statistics view of
    a Poisson process conditioned on its count), drawn in bulk and
    sorted. Class counts follow a multinomial over the mix fractions, so
    the realized mix fluctuates the way a real week would.
    """
    n_jobs = int(n_jobs)
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    horizon_seconds = float(horizon_seconds)
    if horizon_seconds <= 0:
        raise ConfigurationError(
            f"horizon_seconds must be positive, got {horizon_seconds}"
        )
    rng = resolve_rng(seed)
    arrivals = np.sort(rng.uniform(0.0, horizon_seconds, size=n_jobs))
    counts = rng.multinomial(n_jobs, mix.fractions)
    classes = np.repeat(np.arange(len(mix.fractions)), counts)
    rng.shuffle(classes)
    jobs = []
    for arrival, cls in zip(arrivals, classes):
        lo, hi = mix.duration_ranges[cls]
        duration = float(rng.uniform(lo, hi))
        jobs.append(
            Job(
                arrival=float(arrival),
                duration=duration,
                cpu_share=mix.cpu_shares[cls],
            )
        )
    return jobs


def demand_series(
    jobs, n_minutes: int, *, attribute: str = "cpu"
) -> np.ndarray:
    """Per-minute aggregate demand implied by a job list.

    For each minute bucket, sums every job's overlap with the bucket
    weighted by the job's CPU share. The result is in "CPU-seconds per
    minute" (0..60 per CPU), the natural unit for the ``CPU_usedsec``
    metric. Fully vectorized over jobs via clipped interval overlaps.

    Parameters
    ----------
    jobs:
        Iterable of :class:`Job`.
    n_minutes:
        Length of the output series.
    attribute:
        Currently ``"cpu"`` (reserved for future I/O demand kinds).
    """
    if attribute != "cpu":
        raise ConfigurationError(f"unsupported demand attribute {attribute!r}")
    n_minutes = int(n_minutes)
    if n_minutes < 1:
        raise ConfigurationError(f"n_minutes must be >= 1, got {n_minutes}")
    jobs = list(jobs)
    out = np.zeros(n_minutes)
    if not jobs:
        return out
    starts = np.array([j.arrival for j in jobs])
    ends = np.array([j.completion for j in jobs])
    shares = np.array([j.cpu_share for j in jobs])
    # Each job can span multiple buckets; loop over jobs but vectorize
    # the bucket overlap within each (jobs are few, buckets are many).
    for s, e, share in zip(starts, ends, shares):
        first = int(s // 60)
        last = min(int(np.ceil(e / 60.0)), n_minutes)
        if first >= n_minutes:
            continue
        buckets = np.arange(first, last)
        lo = np.maximum(buckets * 60.0, s)
        hi = np.minimum((buckets + 1) * 60.0, e)
        overlap = np.maximum(hi - lo, 0.0)
        out[buckets] += overlap * share
    return out
