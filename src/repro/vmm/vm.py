"""Guest virtual machines and the canonical metric schema.

Table 1 of the paper lists the performance metrics vmkusage collects per
guest; Tables 2/3 report twelve concrete series per VM. This module pins
that schema — metric names, their device IDs, and their physical units —
and defines :class:`GuestVM`, which owns one device model per metric and
produces the raw per-minute sample matrix the host arbitrates and the
monitoring agent stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.vmm.devices import DeviceModel

__all__ = ["METRICS", "METRIC_DEVICE", "GuestVM"]

#: The twelve per-VM metrics of Tables 2/3, in the tables' row order.
METRICS: tuple[str, ...] = (
    "CPU_usedsec",
    "CPU_ready",
    "Memory_size",
    "Memory_swapped",
    "NIC1_received",
    "NIC1_transmitted",
    "NIC2_received",
    "NIC2_transmitted",
    "VD1_read",
    "VD1_write",
    "VD2_read",
    "VD2_write",
)

#: Metric -> vmkusage device identifier (the deviceID key component).
METRIC_DEVICE: dict[str, str] = {
    "CPU_usedsec": "cpu0",
    "CPU_ready": "cpu0",
    "Memory_size": "mem0",
    "Memory_swapped": "mem0",
    "NIC1_received": "nic1",
    "NIC1_transmitted": "nic1",
    "NIC2_received": "nic2",
    "NIC2_transmitted": "nic2",
    "VD1_read": "vd1",
    "VD1_write": "vd1",
    "VD2_read": "vd2",
    "VD2_write": "vd2",
}


@dataclass
class GuestVM:
    """One guest VM: an ID, a description, and a model per metric.

    Attributes
    ----------
    vm_id:
        Identifier like ``"VM2"``.
    description:
        What the VM hosts (mirrors the paper's §7 list).
    models:
        Metric name -> :class:`~repro.vmm.devices.DeviceModel`. Every
        metric in :data:`METRICS` must be present — a VM that does not
        use a device still reports it (as a constant), exactly like the
        paper's NaN traces.
    """

    vm_id: str
    description: str
    models: dict[str, DeviceModel] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.vm_id:
            raise ConfigurationError("vm_id must be non-empty")
        missing = set(METRICS) - set(self.models)
        extra = set(self.models) - set(METRICS)
        if missing or extra:
            raise ConfigurationError(
                f"{self.vm_id}: metric models mismatch; "
                f"missing={sorted(missing)}, unknown={sorted(extra)}"
            )
        for name, model in self.models.items():
            if not isinstance(model, DeviceModel):
                raise ConfigurationError(
                    f"{self.vm_id}: model for {name!r} is {type(model)}, "
                    f"not a DeviceModel"
                )

    def generate_raw(
        self, n_minutes: int, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Generate *n_minutes* of raw per-minute samples for every metric.

        CPU numbers produced here are *demand* — the host's arbitration
        (:meth:`repro.vmm.host.HostServer.arbitrate`) converts demand
        into used/ready splits under contention.
        """
        n_minutes = int(n_minutes)
        if n_minutes < 1:
            raise ConfigurationError(f"n_minutes must be >= 1, got {n_minutes}")
        return {
            metric: self.models[metric].generate(n_minutes, rng)
            for metric in METRICS
        }

    def __repr__(self) -> str:
        return f"GuestVM(vm_id={self.vm_id!r}, description={self.description!r})"
