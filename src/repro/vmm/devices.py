"""Stochastic per-device resource models.

The paper's evaluation traces come from five production VMs on a VMware
ESX host — data we do not have. These models synthesize the same
*classes* of behaviour the paper's metrics exhibit, because the
LARPredictor's dynamics depend on exactly those classes:

* smooth, strongly autocorrelated load (Dinda: host CPU load) — where
  AR and LAST do well;
* bursty ON/OFF traffic (network, disk) — where window averages and
  medians win during bursts and LAST wins in silence;
* stepwise-constant allocations (memory size/swap) — where LAST is
  nearly perfect (Table 3 gives memory to LAST on VM1/VM4);
* periodic (diurnal) service load — where trend/AR models pay off;
* regime switches between the above — the reason the *best* predictor
  changes over time (Figures 4/5) and adaptive selection beats any
  static choice.

Every model is generated vectorized: AR recursions run through
:func:`scipy.signal.lfilter`, ON/OFF chains are built from geometric
sojourn draws, spikes from a Poisson mask convolved with an exponential
kernel — no per-sample Python loops.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np
import scipy.signal

from repro.exceptions import ConfigurationError

__all__ = [
    "DeviceModel",
    "ConstantModel",
    "SmoothLoadModel",
    "MomentumLoadModel",
    "PeriodicLoadModel",
    "BurstyTrafficModel",
    "SteppedResourceModel",
    "SpikeModel",
    "CompositeModel",
    "RegimeSwitchingModel",
    "ExogenousModel",
]


class DeviceModel(abc.ABC):
    """A generator of one per-minute performance-metric sample stream."""

    @abc.abstractmethod
    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Produce *n* consecutive per-minute samples."""

    def _check_n(self, n: int) -> int:
        n = int(n)
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        return n


def _ar1(
    n: int,
    rng: np.random.Generator,
    *,
    phi: float,
    std: float,
) -> np.ndarray:
    """Zero-mean AR(1) noise via lfilter (stationary start)."""
    innovations = rng.standard_normal(n) * std * np.sqrt(max(1.0 - phi * phi, 1e-12))
    x = scipy.signal.lfilter([1.0], [1.0, -phi], innovations)
    return np.asarray(x)


class ConstantModel(DeviceModel):
    """A metric that never changes (unused device).

    This reproduces the paper's NaN cells in Table 3: a constant trace
    has zero variance, so normalized prediction MSE is undefined and the
    experiment harness reports NaN for it, exactly as the paper does for
    e.g. VM3's unused disks.
    """

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(self._check_n(n), self.value)


class SmoothLoadModel(DeviceModel):
    """Autocorrelated Gaussian load (AR(1)), clamped to a range.

    Parameters
    ----------
    mean, std:
        Stationary mean and standard deviation.
    phi:
        AR(1) coefficient in (-1, 1). Positive values give smooth load;
        *negative* values give oscillating (anti-persistent) load — the
        drain/fill, batch-then-flush cycle whose dynamics directly
        conflict with momentum load, which is what breaks a single
        mixture-fitted AR model and creates the adaptive-selection
        opportunity the paper's headline results rest on.
    lo, hi:
        Physical clamps (e.g. a CPU percentage lives in [0, 100]).
    """

    def __init__(
        self,
        mean: float,
        std: float,
        *,
        phi: float = 0.9,
        lo: float = 0.0,
        hi: float | None = None,
    ):
        if not -1.0 < phi < 1.0:
            raise ConfigurationError(f"phi must be in (-1, 1), got {phi}")
        if std < 0:
            raise ConfigurationError(f"std must be >= 0, got {std}")
        self.mean, self.std, self.phi = float(mean), float(std), float(phi)
        self.lo = float(lo)
        self.hi = float(hi) if hi is not None else None

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._check_n(n)
        x = self.mean + _ar1(n, rng, phi=self.phi, std=self.std)
        np.clip(x, self.lo, self.hi, out=x)
        return x


class MomentumLoadModel(DeviceModel):
    """Smooth load with *momentum*: an integrated-AR(1) velocity process.

        v_t = momentum * v_{t-1} + eta_t        (persistent velocity)
        s_t = reversion * s_{t-1} + v_t         (slowly mean-reverting level)
        x_t = mean + std * s_t / std(s)

    Real load ramps (a transfer accelerating, a service draining a
    queue) have exactly this signature: the *derivative* is predictable
    for several steps. That is the regime where the AR model beats LAST
    decisively and consistently — LAST's error is the persistent
    velocity, AR's is only the innovation — which is what makes the
    per-step best-predictor labels on such traces overwhelmingly AR,
    as the paper's NIC rows (LAR == AR to four decimals) require.
    """

    def __init__(
        self,
        mean: float,
        std: float,
        *,
        momentum: float = 0.7,
        reversion: float = 0.96,
        lo: float = 0.0,
        hi: float | None = None,
    ):
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if not 0.0 <= reversion < 1.0:
            raise ConfigurationError(f"reversion must be in [0, 1), got {reversion}")
        if std < 0:
            raise ConfigurationError(f"std must be >= 0, got {std}")
        self.mean, self.std = float(mean), float(std)
        self.momentum, self.reversion = float(momentum), float(reversion)
        self.lo = float(lo)
        self.hi = float(hi) if hi is not None else None

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._check_n(n)
        eta = rng.standard_normal(n)
        velocity = scipy.signal.lfilter([1.0], [1.0, -self.momentum], eta)
        level = scipy.signal.lfilter([1.0], [1.0, -self.reversion], velocity)
        level = np.asarray(level)
        scale = level.std()
        if scale > 0:
            level = level * (self.std / scale)
        x = self.mean + level
        np.clip(x, self.lo, self.hi, out=x)
        return x


class PeriodicLoadModel(DeviceModel):
    """Diurnal-style sinusoidal load plus AR(1) noise.

    Parameters
    ----------
    base, amplitude:
        Offset and swing of the sinusoid.
    period:
        Period in samples (1440 for a daily cycle at 1-minute sampling).
    noise_std, phi:
        AR(1) noise magnitude and smoothness.
    phase:
        Phase offset in samples.
    """

    def __init__(
        self,
        base: float,
        amplitude: float,
        period: int,
        *,
        noise_std: float = 1.0,
        phi: float = 0.7,
        phase: float = 0.0,
        lo: float = 0.0,
        hi: float | None = None,
    ):
        if period < 2:
            raise ConfigurationError(f"period must be >= 2, got {period}")
        self.base, self.amplitude = float(base), float(amplitude)
        self.period = int(period)
        self.noise_std, self.phi, self.phase = float(noise_std), float(phi), float(phase)
        self.lo = float(lo)
        self.hi = float(hi) if hi is not None else None

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._check_n(n)
        t = np.arange(n, dtype=np.float64)
        x = self.base + self.amplitude * np.sin(
            2.0 * np.pi * (t + self.phase) / self.period
        )
        x += _ar1(n, rng, phi=self.phi, std=self.noise_std)
        np.clip(x, self.lo, self.hi, out=x)
        return x


class BurstyTrafficModel(DeviceModel):
    """Markov-modulated ON/OFF traffic (network packets, I/O rates).

    The chain alternates ON and OFF sojourns with geometric lengths
    (mean ``mean_on`` / ``mean_off`` samples). During ON the level is a
    lognormal burst size smoothed by AR(1); during OFF it is near-zero
    background noise. This produces the heavy-tailed, peaky traces for
    which the paper finds AR best overall but LAST terrible (Table 2's
    NIC rows: LAST MSE ~1.8 vs AR ~0.55).
    """

    def __init__(
        self,
        *,
        mean_on: float = 20.0,
        mean_off: float = 40.0,
        on_level: float = 100.0,
        on_sigma: float = 0.5,
        off_level: float = 0.5,
        noise_std: float = 0.2,
        phi: float = 0.6,
        momentum: float = 0.0,
    ):
        """See class docstring.

        Parameters
        ----------
        mean_on, mean_off:
            Mean sojourn (samples) of the ON and OFF states.
        on_level, on_sigma:
            Median burst level and its log-scale spread. The log-level
            follows an AR(1) with coefficient *phi*, so bursts are
            *smooth* heavy-tailed ramps — the structure an AR predictor
            exploits and LAST lags one step behind on.
        off_level:
            Quiet-state level. With ``noise_std=0`` the quiet stretches
            are exactly constant (an idle NIC reports zeros), giving
            LAST zero error there — the regime contrast the learned
            selector keys on.
        noise_std, phi:
            Quiet-state noise and the log-level AR coefficient.
        momentum:
            Optional velocity persistence of the log-level path
            (:class:`MomentumLoadModel` dynamics); 0 keeps a plain AR(1)
            path. Positive momentum makes within-burst levels *ramp*,
            the AR-dominant regime.
        """
        if mean_on < 1 or mean_off < 1:
            raise ConfigurationError("mean_on and mean_off must be >= 1")
        if on_level <= 0:
            raise ConfigurationError(f"on_level must be positive, got {on_level}")
        if not 0.0 <= phi < 1.0:
            raise ConfigurationError(f"phi must be in [0, 1), got {phi}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if noise_std < 0:
            raise ConfigurationError(f"noise_std must be >= 0, got {noise_std}")
        self.mean_on, self.mean_off = float(mean_on), float(mean_off)
        self.on_level, self.on_sigma = float(on_level), float(on_sigma)
        self.off_level = float(off_level)
        self.noise_std, self.phi = float(noise_std), float(phi)
        self.momentum = float(momentum)

    def _state_mask(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean ON mask built from geometric sojourn times."""
        # Upper-bound the number of sojourns; expected sojourn >= 1 sample.
        est = max(8, int(2 * n / min(self.mean_on, self.mean_off)) + 8)
        on_lens = rng.geometric(1.0 / self.mean_on, size=est)
        off_lens = rng.geometric(1.0 / self.mean_off, size=est)
        lens = np.empty(2 * est, dtype=np.int64)
        start_on = bool(rng.random() < self.mean_on / (self.mean_on + self.mean_off))
        if start_on:
            lens[0::2], lens[1::2] = on_lens, off_lens
        else:
            lens[0::2], lens[1::2] = off_lens, on_lens
        while lens.sum() < n:  # extremely unlikely; top up deterministically
            lens = np.concatenate([lens, lens])
        edges = np.cumsum(lens)
        # state index at each sample = number of completed sojourns.
        state_idx = np.searchsorted(edges, np.arange(n), side="right")
        on = state_idx % 2 == (0 if start_on else 1)
        return on

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._check_n(n)
        on = self._state_mask(n, rng)
        # Smooth log-normal burst level: exp of an autocorrelated path,
        # median on_level. Heavy-tailed but smooth within a burst; with
        # momentum the path carries persistent ramps.
        if self.momentum > 0.0:
            eta = rng.standard_normal(n)
            v = scipy.signal.lfilter([1.0], [1.0, -self.momentum], eta)
            path = np.asarray(scipy.signal.lfilter([1.0], [1.0, -self.phi], v))
            scale = path.std()
            log_path = path / scale if scale > 0 else path
        else:
            log_path = _ar1(n, rng, phi=self.phi, std=1.0)
        burst = self.on_level * np.exp(self.on_sigma * log_path)
        if self.noise_std > 0:
            # Quiet-state background chatter is *smooth* (same AR
            # coefficient as the burst level), not white: idle links
            # still carry autocorrelated keep-alive traffic, and white
            # quiet noise would randomize the per-step best-predictor
            # labels that the learned selector trains on.
            chatter = _ar1(n, rng, phi=self.phi, std=self.noise_std)
            background = np.maximum(self.off_level + chatter, 0.0)
        else:
            background = np.full(n, self.off_level)
        x = np.where(on, burst, background)
        return x


class SteppedResourceModel(DeviceModel):
    """Piecewise-constant allocation (memory size, swap).

    Holds a level for a geometric sojourn, then jumps by a Gaussian step.
    Between jumps the trace is *exactly* constant — the regime where
    LAST has zero error, matching Table 3's memory rows.
    """

    def __init__(
        self,
        initial: float,
        *,
        mean_hold: float = 120.0,
        step_std: float = 64.0,
        reversion: float = 0.3,
        lo: float = 0.0,
        hi: float | None = None,
    ):
        """See class docstring.

        Parameters
        ----------
        reversion:
            Fraction of the distance back to *initial* each step pulls.
            Real allocations revisit a small set of working levels (page
            pools, balloon targets) instead of random-walking away; the
            pull keeps levels recurring, so windows at a given level are
            seen in both halves of an evaluation split.
        """
        if mean_hold < 1:
            raise ConfigurationError(f"mean_hold must be >= 1, got {mean_hold}")
        if not 0.0 <= reversion <= 1.0:
            raise ConfigurationError(
                f"reversion must be in [0, 1], got {reversion}"
            )
        self.initial = float(initial)
        self.mean_hold = float(mean_hold)
        self.step_std = float(step_std)
        self.reversion = float(reversion)
        self.lo = float(lo)
        self.hi = float(hi) if hi is not None else None

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._check_n(n)
        est = max(4, int(2 * n / self.mean_hold) + 4)
        holds = rng.geometric(1.0 / self.mean_hold, size=est)
        while holds.sum() < n:
            holds = np.concatenate([holds, holds])
        k = holds.size
        noise = rng.standard_normal(k) * self.step_std
        levels = np.empty(k)
        level = self.initial
        for i in range(k):
            levels[i] = level
            level = level + self.reversion * (self.initial - level) + noise[i]
        np.clip(levels, self.lo, self.hi, out=levels)
        if self.step_std > 0:
            # Quantize to the step ladder: allocations land on a small
            # set of recurring working levels (page pools, balloon
            # targets), so both halves of any evaluation split see the
            # same levels and windowed features generalize across them.
            levels = self.initial + np.round(
                (levels - self.initial) / self.step_std
            ) * self.step_std
            np.clip(levels, self.lo, self.hi, out=levels)
        edges = np.cumsum(holds)
        seg = np.searchsorted(edges, np.arange(n), side="right")
        return levels[seg]


class SpikeModel(DeviceModel):
    """Poisson spikes with exponential decay over a low background.

    Disk-write style traffic: long quiet stretches, occasional flushes
    that decay over a few samples. The decay is a linear filter, so the
    whole trace is one ``lfilter`` call over the spike train.
    """

    def __init__(
        self,
        *,
        background: float = 2.0,
        spike_prob: float = 0.02,
        spike_mean: float = 200.0,
        decay: float = 0.5,
        noise_std: float = 0.5,
    ):
        if not 0.0 <= spike_prob <= 1.0:
            raise ConfigurationError(f"spike_prob must be in [0, 1], got {spike_prob}")
        if not 0.0 <= decay < 1.0:
            raise ConfigurationError(f"decay must be in [0, 1), got {decay}")
        self.background = float(background)
        self.spike_prob = float(spike_prob)
        self.spike_mean = float(spike_mean)
        self.decay = float(decay)
        self.noise_std = float(noise_std)

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._check_n(n)
        spikes = rng.random(n) < self.spike_prob
        amplitudes = rng.exponential(self.spike_mean, size=n) * spikes
        decayed = scipy.signal.lfilter([1.0], [1.0, -self.decay], amplitudes)
        x = self.background + decayed + np.abs(rng.standard_normal(n)) * self.noise_std
        return np.maximum(np.asarray(x), 0.0)


class CompositeModel(DeviceModel):
    """Sum of component models (e.g. periodic base + bursty overlay)."""

    def __init__(self, components: Sequence[DeviceModel]):
        components = list(components)
        if not components:
            raise ConfigurationError("CompositeModel needs at least one component")
        for c in components:
            if not isinstance(c, DeviceModel):
                raise ConfigurationError(
                    f"components must be DeviceModel instances, got {type(c)}"
                )
        self.components = components

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._check_n(n)
        total = np.zeros(n)
        for c in self.components:
            total += c.generate(n, rng)
        return total


class RegimeSwitchingModel(DeviceModel):
    """Alternate between sub-models with jittered sojourn times.

    This is the crucial ingredient for reproducing Figures 4/5 and the
    headline better-than-expert results: when a trace switches between
    regimes with conflicting dynamics, the *best* predictor switches
    with it, and a learned selector that recognizes the regime from the
    window shape can adapt while a cumulative-MSE selector lags behind
    its accumulated history.

    Parameters
    ----------
    regimes:
        The sub-models; each sojourn picks a different one than the last.
    mean_sojourn:
        Mean phase length in samples.
    sojourn_jitter:
        Sojourns are uniform in ``mean * [1 - jitter, 1 + jitter]``.
        Workload phases (a VNC session, a transfer, a batch window) have
        *typical* durations — they are not memoryless — and the bounded
        jitter also guarantees both halves of a 50/50 evaluation split
        contain several phases of each regime. Set close to 1.0 for
        near-geometric variability.
    """

    def __init__(
        self,
        regimes: Sequence[DeviceModel],
        *,
        mean_sojourn: float = 90.0,
        sojourn_jitter: float = 0.3,
    ):
        regimes = list(regimes)
        if len(regimes) < 2:
            raise ConfigurationError("RegimeSwitchingModel needs >= 2 regimes")
        if mean_sojourn < 1:
            raise ConfigurationError(f"mean_sojourn must be >= 1, got {mean_sojourn}")
        if not 0.0 <= sojourn_jitter <= 1.0:
            raise ConfigurationError(
                f"sojourn_jitter must be in [0, 1], got {sojourn_jitter}"
            )
        self.regimes = regimes
        self.mean_sojourn = float(mean_sojourn)
        self.sojourn_jitter = float(sojourn_jitter)

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._check_n(n)
        out = np.empty(n)
        pos = 0
        regime = int(rng.integers(len(self.regimes)))
        lo = 1.0 - self.sojourn_jitter
        width = 2.0 * self.sojourn_jitter
        while pos < n:
            length = int(self.mean_sojourn * (lo + width * rng.random()))
            length = min(max(length, 1), n - pos)
            out[pos : pos + length] = self.regimes[regime].generate(length, rng)
            pos += length
            # Move to a different regime (uniform among the others).
            step = 1 + int(rng.integers(len(self.regimes) - 1))
            regime = (regime + step) % len(self.regimes)
        return out


class ExogenousModel(DeviceModel):
    """A metric driven by an externally supplied demand series.

    Used to couple VM1's devices to its simulated batch-job schedule:
    the demand array (e.g. per-minute CPU seconds implied by running
    jobs) is scaled and perturbed with AR(1) measurement noise.
    """

    def __init__(
        self,
        demand,
        *,
        scale: float = 1.0,
        noise_std: float = 0.0,
        phi: float = 0.5,
        lo: float = 0.0,
        hi: float | None = None,
    ):
        self.demand = np.ascontiguousarray(demand, dtype=np.float64)
        if self.demand.ndim != 1 or self.demand.size == 0:
            raise ConfigurationError("demand must be a non-empty 1-D array")
        self.scale = float(scale)
        self.noise_std = float(noise_std)
        self.phi = float(phi)
        self.lo = float(lo)
        self.hi = float(hi) if hi is not None else None

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = self._check_n(n)
        if n > self.demand.size:
            raise ConfigurationError(
                f"requested {n} samples but the demand series has only "
                f"{self.demand.size}"
            )
        x = self.demand[:n] * self.scale
        if self.noise_std > 0:
            x = x + _ar1(n, rng, phi=self.phi, std=self.noise_std)
        np.clip(x, self.lo, self.hi, out=x)
        return x

