"""Simulated VMM substrate: device models, guests, host, monitor, workloads.

This package stands in for the paper's VMware ESX testbed (see
DESIGN.md's substitution table): stochastic device models generate the
per-minute samples a vmkusage-like monitoring agent consolidates into
Round-Robin Databases, from which the profiler extracts the evaluation
traces.
"""

from repro.vmm.devices import (
    DeviceModel,
    ConstantModel,
    SmoothLoadModel,
    MomentumLoadModel,
    PeriodicLoadModel,
    BurstyTrafficModel,
    SteppedResourceModel,
    SpikeModel,
    CompositeModel,
    RegimeSwitchingModel,
    ExogenousModel,
)
from repro.vmm.vm import GuestVM, METRICS, METRIC_DEVICE
from repro.vmm.host import HostServer
from repro.vmm.monitor import PerformanceMonitoringAgent
from repro.vmm.jobs import Job, JobMix, PAPER_VM1_JOB_MIX, generate_jobs, demand_series
from repro.vmm.workloads import VMSpec, paper_vm_specs, build_vm, PAPER_TRACE_LAYOUT

__all__ = [
    "DeviceModel",
    "ConstantModel",
    "SmoothLoadModel",
    "MomentumLoadModel",
    "PeriodicLoadModel",
    "BurstyTrafficModel",
    "SteppedResourceModel",
    "SpikeModel",
    "CompositeModel",
    "RegimeSwitchingModel",
    "ExogenousModel",
    "GuestVM",
    "METRICS",
    "METRIC_DEVICE",
    "HostServer",
    "PerformanceMonitoringAgent",
    "Job",
    "JobMix",
    "PAPER_VM1_JOB_MIX",
    "generate_jobs",
    "demand_series",
    "VMSpec",
    "paper_vm_specs",
    "build_vm",
    "PAPER_TRACE_LAYOUT",
]
