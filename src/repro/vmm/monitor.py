"""The performance monitoring agent (paper §3.2, Figure 1).

"A performance monitoring agent is installed in the VMM ... The tool
samples every minute, and updates its data every five minutes with an
average of the one-minute statistics over the given five-minute
interval. The collected data is stored in a Round Robin Database."

:class:`PerformanceMonitoringAgent` is that component for the simulated
host: it drives the host/guest simulation at one-minute resolution and
streams every sample into a per-VM :class:`~repro.db.rrd.RoundRobinDatabase`
with two archives — the raw one-minute samples and the consolidated
(averaged) report-interval archive the profiler later reads (5 minutes
for VM2-VM5, 30 minutes for VM1).
"""

from __future__ import annotations

from repro.db.rrd import ArchiveSpec, RoundRobinDatabase
from repro.exceptions import ConfigurationError
from repro.util.rng import resolve_rng
from repro.vmm.host import HostServer
from repro.vmm.vm import METRICS, GuestVM

__all__ = ["PerformanceMonitoringAgent"]

#: Primary sampling interval (vmkusage samples every minute).
SAMPLE_STEP_SECONDS = 60


class PerformanceMonitoringAgent:
    """vmkusage-like collector: simulate, sample, consolidate, store.

    Parameters
    ----------
    host:
        The :class:`~repro.vmm.host.HostServer` whose guests are traced.
    raw_rows:
        Capacity of the raw one-minute archive. Defaults to two weeks.
    """

    def __init__(self, host: HostServer, *, raw_rows: int = 20160):
        self.host = host
        self.raw_rows = int(raw_rows)
        if self.raw_rows < 1:
            raise ConfigurationError(f"raw_rows must be >= 1, got {raw_rows}")

    def collect(
        self,
        vm: GuestVM,
        n_minutes: int,
        *,
        report_interval_minutes: int = 5,
        seed=None,
    ) -> RoundRobinDatabase:
        """Trace one guest for *n_minutes* and return its filled RRD.

        Parameters
        ----------
        report_interval_minutes:
            Consolidation width of the averaged archive — the interval
            at which the paper's traces are reported (5 or 30).

        Returns
        -------
        RoundRobinDatabase
            Archive 0 holds the raw one-minute samples, archive 1 the
            ``report_interval_minutes``-averaged series.
        """
        n_minutes = int(n_minutes)
        if n_minutes < 1:
            raise ConfigurationError(f"n_minutes must be >= 1, got {n_minutes}")
        interval = int(report_interval_minutes)
        if interval < 1:
            raise ConfigurationError(
                f"report_interval_minutes must be >= 1, got {interval}"
            )
        rng = resolve_rng(seed)
        samples = self.host.simulate_vm(vm, n_minutes, seed=rng)
        return self._store(samples, n_minutes, interval)

    def collect_cohort(
        self,
        vms,
        n_minutes: int,
        *,
        report_interval_minutes: int = 5,
        seed=None,
    ) -> dict[str, RoundRobinDatabase]:
        """Trace several co-hosted guests simultaneously.

        Uses :meth:`repro.vmm.host.HostServer.simulate_cohort`, so the
        guests contend with each other for CPU (the paper's actual
        five-VMs-on-one-Xeon deployment), and returns one filled RRD per
        guest.
        """
        n_minutes = int(n_minutes)
        if n_minutes < 1:
            raise ConfigurationError(f"n_minutes must be >= 1, got {n_minutes}")
        interval = int(report_interval_minutes)
        if interval < 1:
            raise ConfigurationError(
                f"report_interval_minutes must be >= 1, got {interval}"
            )
        cohort = self.host.simulate_cohort(vms, n_minutes, seed=seed)
        return {
            vm_id: self._store(samples, n_minutes, interval)
            for vm_id, samples in cohort.items()
        }

    def _store(
        self, samples: dict, n_minutes: int, interval: int
    ) -> RoundRobinDatabase:
        consolidated_rows = max(1, n_minutes // interval)
        rrd = RoundRobinDatabase(
            step=SAMPLE_STEP_SECONDS,
            sources=METRICS,
            archives=[
                ArchiveSpec("average", 1, min(self.raw_rows, n_minutes)),
                ArchiveSpec("average", interval, consolidated_rows),
            ],
        )
        for minute in range(n_minutes):
            timestamp = minute * SAMPLE_STEP_SECONDS
            rrd.update(
                timestamp,
                {metric: float(samples[metric][minute]) for metric in METRICS},
            )
        return rrd
