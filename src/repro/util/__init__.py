"""Shared numerical utilities: validation, windowing, statistics, RNG."""

from repro.util.validation import (
    as_series,
    as_matrix,
    check_finite,
    check_positive_int,
    check_odd,
    check_fraction,
)
from repro.util.windows import (
    sliding_windows,
    frame_series,
    frame_with_targets,
    num_frames,
)
from repro.util.stats import (
    mse,
    rmse,
    mae,
    normalized_mse,
    accuracy,
    autocorrelation,
    autocovariance,
    summary_stats,
    SeriesSummary,
)
from repro.util.rng import resolve_rng, spawn_rngs

__all__ = [
    "as_series",
    "as_matrix",
    "check_finite",
    "check_positive_int",
    "check_odd",
    "check_fraction",
    "sliding_windows",
    "frame_series",
    "frame_with_targets",
    "num_frames",
    "mse",
    "rmse",
    "mae",
    "normalized_mse",
    "accuracy",
    "autocorrelation",
    "autocovariance",
    "summary_stats",
    "SeriesSummary",
    "resolve_rng",
    "spawn_rngs",
]
