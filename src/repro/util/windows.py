"""Window framing of time series.

The paper's dataflow (Figure 3) frames a normalized series of length *u*
into overlapping windows of the prediction order *m*, yielding a
``(u - m + 1, m)`` matrix. These helpers do that with NumPy stride tricks
so no data is copied until a writable matrix is explicitly requested —
the guide's "use views, not copies" rule matters here because framing is
applied to every trace on every cross-validation fold.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.exceptions import InsufficientDataError
from repro.util.validation import as_series, check_positive_int

__all__ = ["sliding_windows", "frame_series", "frame_with_targets", "num_frames"]


def num_frames(length: int, window: int) -> int:
    """Number of complete windows of size *window* in a series of *length*.

    Returns 0 when the series is shorter than the window.
    """
    length = int(length)
    window = check_positive_int(window, name="window")
    return max(0, length - window + 1)


def sliding_windows(series, window: int) -> np.ndarray:
    """Return a **read-only view** of all length-*window* windows.

    The result has shape ``(len(series) - window + 1, window)`` and shares
    memory with the input; do not mutate it. Use :func:`frame_series` when
    a writable, independent matrix is needed.

    Raises
    ------
    InsufficientDataError
        If the series is shorter than *window*.
    """
    arr = as_series(series, name="series")
    window = check_positive_int(window, name="window")
    if arr.size < window:
        raise InsufficientDataError(window, arr.size)
    view = sliding_window_view(arr, window)
    view.flags.writeable = False
    return view


def frame_series(series, window: int) -> np.ndarray:
    """Frame *series* into a writable ``(n_frames, window)`` matrix.

    Equivalent to copying :func:`sliding_windows`; the copy makes the
    frames safe to hand to downstream code that normalizes in place.
    """
    return np.array(sliding_windows(series, window))


def frame_with_targets(series, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Frame *series* into (inputs, next-value targets) for one-step prediction.

    Each row ``X[i] = series[i : i + window]`` is paired with
    ``y[i] = series[i + window]``, so there are ``len(series) - window``
    pairs. ``X`` is a read-only view; ``y`` is a read-only view as well.

    This is the shape both the predictor-pool labelling pass (training
    phase, §6.1) and the evaluation pass (testing phase, §6.2) consume.

    Raises
    ------
    InsufficientDataError
        If the series has fewer than ``window + 1`` values (no target
        exists for any frame).
    """
    arr = as_series(series, name="series")
    window = check_positive_int(window, name="window")
    if arr.size < window + 1:
        raise InsufficientDataError(window + 1, arr.size)
    X = sliding_window_view(arr[:-1], window)
    y = arr[window:]
    X.flags.writeable = False
    y = y.view()
    y.flags.writeable = False
    return X, y
