"""Input validation helpers.

Every public entry point of the library funnels its array arguments through
these functions so error messages are uniform and numerical code further
down can assume clean, contiguous ``float64`` data (which also keeps the
vectorized kernels fast: no surprise object arrays, no NaN propagation).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataError

__all__ = [
    "as_series",
    "as_matrix",
    "check_finite",
    "check_positive_int",
    "check_odd",
    "check_fraction",
]


def as_series(
    values,
    *,
    name: str = "series",
    min_length: int = 1,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce *values* to a 1-D contiguous ``float64`` array.

    Parameters
    ----------
    values:
        Any sequence convertible by :func:`numpy.asarray`.
    name:
        Label used in error messages.
    min_length:
        Minimum number of elements required (ignored when *allow_empty*
        is true and the input is empty).
    allow_empty:
        Permit zero-length input.

    Returns
    -------
    numpy.ndarray
        A C-contiguous ``float64`` copy-or-view of the input.

    Raises
    ------
    DataError
        If the input is not 1-D, contains non-finite values, or is shorter
        than *min_length*.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise DataError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        if allow_empty:
            return arr
        raise DataError(f"{name} must not be empty")
    if arr.size < min_length:
        raise DataError(
            f"{name} has {arr.size} values but at least {min_length} are required"
        )
    check_finite(arr, name=name)
    return arr


def as_matrix(values, *, name: str = "matrix", min_rows: int = 1) -> np.ndarray:
    """Coerce *values* to a 2-D contiguous ``float64`` array.

    Raises
    ------
    DataError
        If the input is not 2-D, has fewer than *min_rows* rows, or
        contains non-finite values.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise DataError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.shape[0] < min_rows:
        raise DataError(
            f"{name} has {arr.shape[0]} rows but at least {min_rows} are required"
        )
    check_finite(arr, name=name)
    return arr


def check_finite(arr: np.ndarray, *, name: str = "array") -> None:
    """Raise :class:`DataError` if *arr* contains NaN or infinity."""
    if not np.isfinite(arr).all():
        bad = int(np.count_nonzero(~np.isfinite(arr)))
        raise DataError(f"{name} contains {bad} non-finite value(s)")


def check_positive_int(value, *, name: str) -> int:
    """Validate that *value* is an integer >= 1 and return it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


def check_odd(value, *, name: str) -> int:
    """Validate that *value* is a positive odd integer (k-NN vote size)."""
    value = check_positive_int(value, name=name)
    if value % 2 == 0:
        raise ConfigurationError(f"{name} must be odd to avoid vote ties, got {value}")
    return value


def check_fraction(value, *, name: str) -> float:
    """Validate that *value* lies in the open-closed interval (0, 1]."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from None
    if not 0.0 < value <= 1.0:
        raise ConfigurationError(f"{name} must be in (0, 1], got {value}")
    return value
