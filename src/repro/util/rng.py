"""Random number generator plumbing.

All stochastic components (the VMM simulator, cross-validation splits,
synthetic series) accept a ``seed`` that may be an ``int``, an existing
:class:`numpy.random.Generator`, or ``None``. These helpers resolve that
into concrete generators, and spawn statistically independent child
streams so parallel trace generation is reproducible regardless of
worker scheduling order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resolve_rng", "spawn_rngs"]

Seed = int | np.random.Generator | np.random.SeedSequence | None


def resolve_rng(seed: Seed = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    An existing generator is passed through unchanged (shared state), so a
    caller can thread one generator through several components when it
    wants their draws interleaved deterministically.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: Seed, n: int) -> list[np.random.Generator]:
    """Spawn *n* independent child generators from *seed*.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees the
    children's streams do not overlap — the property that makes per-trace
    parallel generation order-independent.
    """
    n = int(n)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a fresh sequence from the generator's own stream so that
        # repeated spawns from one generator yield different children.
        ss = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
