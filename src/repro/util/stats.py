"""Error metrics and series statistics.

The paper measures prediction quality in mean squared error (MSE, eq. 5)
computed on *normalized* series, and best-predictor forecasting quality as
classification accuracy (§7.1). Autocorrelation/autocovariance estimators
here back both the AR model's Yule–Walker fit and the trace simulator's
self-checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.util.validation import as_series

__all__ = [
    "mse",
    "rmse",
    "mae",
    "normalized_mse",
    "accuracy",
    "autocovariance",
    "autocorrelation",
    "summary_stats",
    "SeriesSummary",
]


def _paired(predicted, observed) -> tuple[np.ndarray, np.ndarray]:
    p = as_series(predicted, name="predicted", allow_empty=True)
    o = as_series(observed, name="observed", allow_empty=True)
    if p.shape != o.shape:
        raise DataError(
            f"predicted and observed lengths differ: {p.size} vs {o.size}"
        )
    if p.size == 0:
        raise DataError("cannot compute an error metric on empty inputs")
    return p, o


def mse(predicted, observed) -> float:
    """Mean squared error between two equal-length series (paper eq. 5)."""
    p, o = _paired(predicted, observed)
    d = p - o
    return float(d @ d / d.size)


def rmse(predicted, observed) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(predicted, observed)))


def mae(predicted, observed) -> float:
    """Mean absolute error."""
    p, o = _paired(predicted, observed)
    return float(np.abs(p - o).mean())


def normalized_mse(predicted, observed, *, variance: float | None = None) -> float:
    """MSE divided by the variance of the observed series.

    With ``variance=None`` the observations' own variance is used. A value
    of 1.0 then means "no better than predicting the mean", which is how
    Table 2's *normalized prediction MSE* columns read (the LAST model on
    white-noise-like traces lands near 2.0, persistent traces near 0).

    When the series was already normalized to unit variance by the
    training-phase coefficients, pass ``variance=1.0`` to avoid dividing
    by the (slightly different) test-split variance.
    """
    p, o = _paired(predicted, observed)
    if variance is None:
        variance = float(o.var())
        if variance <= 0.0:
            # A constant observed series: any exact prediction is perfect,
            # any error is infinitely bad relative to zero spread. Report
            # plain MSE instead of dividing by zero.
            return mse(p, o)
    v = float(variance)
    if v <= 0.0:
        raise DataError(f"variance must be positive, got {v}")
    return mse(p, o) / v


def accuracy(predicted_labels, true_labels) -> float:
    """Fraction of positions where two integer label sequences agree."""
    p = np.asarray(predicted_labels)
    t = np.asarray(true_labels)
    if p.shape != t.shape:
        raise DataError(
            f"label sequences have different shapes: {p.shape} vs {t.shape}"
        )
    if p.size == 0:
        raise DataError("cannot compute accuracy on empty label sequences")
    return float(np.mean(p == t))


def autocovariance(series, max_lag: int) -> np.ndarray:
    """Biased sample autocovariance at lags ``0 .. max_lag``.

    The biased (divide by N) estimator is the standard choice for
    Yule–Walker fitting because it guarantees a positive semi-definite
    autocovariance sequence, keeping the Toeplitz system solvable.
    """
    x = as_series(series, name="series", min_length=2)
    max_lag = int(max_lag)
    if max_lag < 0:
        raise DataError(f"max_lag must be >= 0, got {max_lag}")
    if max_lag >= x.size:
        raise DataError(
            f"max_lag {max_lag} requires a series longer than {max_lag} "
            f"(got {x.size})"
        )
    xc = x - x.mean()
    n = xc.size
    # One FFT-free vectorized pass is fine at the lags this library uses
    # (m <= a few dozen); the dot products are BLAS calls.
    return np.array(
        [float(xc[: n - lag] @ xc[lag:]) / n for lag in range(max_lag + 1)]
    )


def autocorrelation(series, max_lag: int) -> np.ndarray:
    """Sample autocorrelation at lags ``0 .. max_lag`` (lag 0 == 1).

    For a constant series the autocovariance at lag 0 is zero; the
    autocorrelation is undefined, and this function raises
    :class:`DataError` rather than returning NaNs.
    """
    acov = autocovariance(series, max_lag)
    if acov[0] <= 0.0:
        raise DataError("autocorrelation undefined for a constant series")
    return acov / acov[0]


@dataclass(frozen=True)
class SeriesSummary:
    """Descriptive statistics of one trace, used in reports and tests."""

    length: int
    mean: float
    std: float
    minimum: float
    maximum: float
    lag1_autocorr: float

    def is_constant(self, tol: float = 1e-12) -> bool:
        """Whether the series has (numerically) zero spread."""
        return self.std <= tol


def summary_stats(series) -> SeriesSummary:
    """Compute a :class:`SeriesSummary` for *series*."""
    x = as_series(series, name="series", min_length=2)
    std = float(x.std())
    if std > 0.0:
        lag1 = float(autocorrelation(x, 1)[1])
    else:
        lag1 = 0.0
    return SeriesSummary(
        length=int(x.size),
        mean=float(x.mean()),
        std=std,
        minimum=float(x.min()),
        maximum=float(x.max()),
        lag1_autocorr=lag1,
    )
