"""Stacked per-stream pre-processing for batched fleet ticks.

One fleet tick normalizes and projects the trailing window of every
stream. Per stream that is three tiny ops (scalar z-score, tail frame,
``(1, m) @ (m, c)`` PCA projection); across thousands of streams the
Python dispatch dominates. These helpers stack the frozen per-stream
coefficients once — ``(mu, sigma)`` vectors, a ``(n_streams, c, m)``
component tensor — so a whole tick is a broadcast subtract/divide and
one 3-D ``matmul``.

Bit-exactness contract
----------------------
* z-score: ``(x - mu) / sigma`` is elementwise; broadcasting the
  stacked vectors performs the identical scalar IEEE ops per element.
* PCA: the stacked projection uses ``np.matmul`` over 3-D operands,
  with each stream's component matrix laid out exactly like the
  per-stream ``components_.T`` view (contiguous ``(c, m)`` storage,
  transposed axes), so every slice hits the same BLAS GEMM as
  :meth:`repro.learn.pca.PCA.transform` and returns the same bits.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "StackedNormalizer",
    "stack_normalizers",
    "StackedPCA",
    "stack_pcas",
]


class StackedNormalizer:
    """Frozen z-score coefficients for many streams, stacked.

    Attributes
    ----------
    means / stds:
        Length ``n_streams`` fitted coefficients (stds already floored
        by each normalizer's ``min_std``).
    """

    __slots__ = ("means", "stds")

    def __init__(self, means: np.ndarray, stds: np.ndarray):
        self.means = means
        self.stds = stds

    def transform(self, rows: np.ndarray) -> np.ndarray:
        """Normalize row *s* with stream *s*'s coefficients."""
        return (rows - self.means[:, None]) / self.stds[:, None]

    def transform_values(self, values: np.ndarray) -> np.ndarray:
        """Normalize one scalar per stream."""
        return (values - self.means) / self.stds

    def inverse_transform_values(self, values: np.ndarray) -> np.ndarray:
        """De-normalize one scalar per stream."""
        return values * self.stds + self.means


def stack_normalizers(normalizers) -> StackedNormalizer:
    """Stack fitted :class:`~repro.preprocess.normalize.ZScoreNormalizer`s."""
    normalizers = list(normalizers)
    if not normalizers:
        raise ConfigurationError("need at least one normalizer to stack")
    means = np.array([n.mean for n in normalizers], dtype=np.float64)
    stds = np.array([n.std for n in normalizers], dtype=np.float64)
    return StackedNormalizer(means, stds)


class StackedPCA:
    """Frozen per-stream PCA bases stacked for one 3-D projection.

    Attributes
    ----------
    components:
        ``(n_streams, c, m)`` tensor; slice *s* is stream *s*'s
        contiguous ``components_`` matrix.
    means:
        ``(n_streams, m)`` per-feature training means.
    """

    __slots__ = ("components", "means")

    def __init__(self, components: np.ndarray, means: np.ndarray):
        self.components = components
        self.means = means

    @property
    def n_components(self) -> int:
        return int(self.components.shape[1])

    def transform(self, frames: np.ndarray) -> np.ndarray:
        """Project row *s* of *frames* with stream *s*'s basis.

        ``components.transpose(0, 2, 1)`` gives each slice the same
        shape *and strides* as the per-stream ``components_.T`` operand,
        which is what keeps the stacked GEMM bit-identical.
        """
        centered = frames - self.means
        z = np.matmul(centered[:, None, :], self.components.transpose(0, 2, 1))
        return z[:, 0, :]


def stack_pcas(pcas) -> StackedPCA:
    """Stack fitted :class:`~repro.learn.pca.PCA` instances.

    All instances must keep the same component count (the fleet trains
    every stream with one shared :class:`~repro.core.config.LARConfig`,
    so this holds by construction).
    """
    pcas = list(pcas)
    if not pcas:
        raise ConfigurationError("need at least one PCA to stack")
    shapes = {p.components_.shape for p in pcas}
    if len(shapes) > 1:
        raise ConfigurationError(
            f"cannot stack PCA bases of differing shapes: {sorted(shapes)}"
        )
    components = np.ascontiguousarray(
        np.stack([p.components_ for p in pcas], axis=0)
    )
    means = np.stack([p.mean_ for p in pcas], axis=0)
    return StackedPCA(components, means)
