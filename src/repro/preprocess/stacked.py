"""Stacked per-stream pre-processing for batched fleet ticks.

One fleet tick normalizes and projects the trailing window of every
stream. Per stream that is three tiny ops (scalar z-score, tail frame,
``(1, m) @ (m, c)`` PCA projection); across thousands of streams the
Python dispatch dominates. These helpers stack the frozen per-stream
coefficients once — ``(mu, sigma)`` vectors, a ``(n_streams, c, m)``
component tensor — so a whole tick is a broadcast subtract/divide and
one 3-D ``matmul``.

Bit-exactness contract
----------------------
* z-score: ``(x - mu) / sigma`` is elementwise; broadcasting the
  stacked vectors performs the identical scalar IEEE ops per element.
* PCA: the stacked projection uses ``np.matmul`` over 3-D operands,
  with each stream's component matrix laid out exactly like the
  per-stream ``components_.T`` view (contiguous ``(c, m)`` storage,
  transposed axes), so every slice hits the same BLAS GEMM as
  :meth:`repro.learn.pca.PCA.transform` and returns the same bits.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "StackedNormalizer",
    "stack_normalizers",
    "StackedPCA",
    "stack_pcas",
    "fit_stacked_normalizer",
    "StackedPCAFit",
    "fit_stacked_pca",
]


class StackedNormalizer:
    """Frozen z-score coefficients for many streams, stacked.

    Attributes
    ----------
    means / stds:
        Length ``n_streams`` fitted coefficients (stds already floored
        by each normalizer's ``min_std``).
    """

    __slots__ = ("means", "stds")

    def __init__(self, means: np.ndarray, stds: np.ndarray):
        self.means = means
        self.stds = stds

    def transform(self, rows: np.ndarray) -> np.ndarray:
        """Normalize row *s* with stream *s*'s coefficients."""
        return (rows - self.means[:, None]) / self.stds[:, None]

    def transform_values(self, values: np.ndarray) -> np.ndarray:
        """Normalize one scalar per stream."""
        return (values - self.means) / self.stds

    def inverse_transform_values(self, values: np.ndarray) -> np.ndarray:
        """De-normalize one scalar per stream."""
        return values * self.stds + self.means


def stack_normalizers(normalizers) -> StackedNormalizer:
    """Stack fitted :class:`~repro.preprocess.normalize.ZScoreNormalizer`s."""
    normalizers = list(normalizers)
    if not normalizers:
        raise ConfigurationError("need at least one normalizer to stack")
    means = np.array([n.mean for n in normalizers], dtype=np.float64)
    stds = np.array([n.std for n in normalizers], dtype=np.float64)
    return StackedNormalizer(means, stds)


class StackedPCA:
    """Frozen per-stream PCA bases stacked for one 3-D projection.

    Attributes
    ----------
    components:
        ``(n_streams, c, m)`` tensor; slice *s* is stream *s*'s
        contiguous ``components_`` matrix.
    means:
        ``(n_streams, m)`` per-feature training means.
    """

    __slots__ = ("components", "means")

    def __init__(self, components: np.ndarray, means: np.ndarray):
        self.components = components
        self.means = means

    @property
    def n_components(self) -> int:
        return int(self.components.shape[1])

    def transform(self, frames: np.ndarray) -> np.ndarray:
        """Project row *s* of *frames* with stream *s*'s basis.

        ``components.transpose(0, 2, 1)`` gives each slice the same
        shape *and strides* as the per-stream ``components_.T`` operand,
        which is what keeps the stacked GEMM bit-identical.
        """
        centered = frames - self.means
        z = np.matmul(centered[:, None, :], self.components.transpose(0, 2, 1))
        return z[:, 0, :]


def fit_stacked_normalizer(
    histories: np.ndarray, *, min_std: float = 1e-12
) -> StackedNormalizer:
    """Fit z-score coefficients for every row of a ``(S, T)`` matrix.

    One broadcast reduction instead of S
    :meth:`~repro.preprocess.normalize.ZScoreNormalizer.fit` calls.
    NumPy's pairwise summation evaluates each row of ``mean(axis=1)`` /
    ``std(axis=1)`` exactly as it evaluates the row alone, so the
    stacked coefficients carry the per-stream bits.
    """
    means = histories.mean(axis=1)
    stds = np.maximum(histories.std(axis=1), min_std)
    return StackedNormalizer(means, stds)


class StackedPCAFit:
    """The product of a batched PCA training pass over many streams.

    Extends :class:`StackedPCA`'s frozen (components, means) pair with
    the per-stream eigenvalue bookkeeping a fitted
    :class:`~repro.learn.pca.PCA` instance exposes, so each stream's
    slice can reconstitute a full fitted object.
    """

    __slots__ = ("components", "means", "explained_variance",
                 "explained_variance_ratio", "centered")

    def __init__(self, components, means, explained_variance,
                 explained_variance_ratio, centered=None):
        self.components = components
        self.means = means
        self.explained_variance = explained_variance
        self.explained_variance_ratio = explained_variance_ratio
        #: The mean-centered frame tensor the covariances were built
        #: from (kept only on request — it is as large as the input).
        self.centered = centered


def fit_stacked_pca(
    frames: np.ndarray,
    n_components: int,
    *,
    keep_centered: bool = False,
    centered_out: np.ndarray | None = None,
) -> StackedPCAFit:
    """Batched :meth:`~repro.learn.pca.PCA.fit` over a frame tensor.

    *frames* is ``(S, N, m)``: stream *s*'s N training frames. The S
    covariance accumulations collapse into one stacked ``matmul`` and
    the S eigensolves into one gufunc call — ``np.linalg.eigh`` over
    ``(S, m, m)`` dispatches the same LAPACK driver per slice as the
    per-stream fit (which uses ``np.linalg.eigh`` for exactly this
    reason), keeping every stream's basis bit-identical to what
    ``PCA(n_components).fit(frames[s])`` computes.
    """
    if frames.ndim != 3:
        raise ConfigurationError(
            f"frames must be a (S, N, m) tensor, got shape {frames.shape}"
        )
    n_samples, m = frames.shape[1], frames.shape[2]
    if n_components > m:
        raise ConfigurationError(
            f"n_components={n_components} exceeds the feature count {m}"
        )
    if n_samples < 2:
        raise ConfigurationError(
            f"PCA needs at least 2 samples per stream, got {n_samples}"
        )
    means = frames.mean(axis=1)
    # centered_out lets a caller recycle this frame-sized buffer across
    # fits (the subtraction is elementwise — same bits either way).
    centered = np.subtract(frames, means[:, None, :], out=centered_out)
    cov = np.matmul(centered.transpose(0, 2, 1), centered) / (n_samples - 1)
    eigvals, eigvecs = np.linalg.eigh(cov)
    # Descending eigenvalue order, exactly like the per-stream fit's
    # argsort-and-flip (same sort per row, same reversal).
    order = np.argsort(eigvals, axis=1)[:, ::-1]
    eigvals = np.take_along_axis(eigvals, order, axis=1)
    eigvecs = np.take_along_axis(eigvecs, order[:, None, :], axis=2)
    np.maximum(eigvals, 0.0, out=eigvals)
    totals = eigvals.sum(axis=1)
    ratios = np.zeros_like(eigvals)
    positive = totals > 0.0
    ratios[positive] = eigvals[positive] / totals[positive, None]
    components = np.ascontiguousarray(
        eigvecs[:, :, :n_components].transpose(0, 2, 1)
    )
    return StackedPCAFit(
        components=components,
        means=means,
        explained_variance=np.ascontiguousarray(eigvals[:, :n_components]),
        explained_variance_ratio=np.ascontiguousarray(ratios[:, :n_components]),
        centered=centered if keep_centered else None,
    )


def stack_pcas(pcas) -> StackedPCA:
    """Stack fitted :class:`~repro.learn.pca.PCA` instances.

    All instances must keep the same component count (the fleet trains
    every stream with one shared :class:`~repro.core.config.LARConfig`,
    so this holds by construction).
    """
    pcas = list(pcas)
    if not pcas:
        raise ConfigurationError("need at least one PCA to stack")
    shapes = {p.components_.shape for p in pcas}
    if len(shapes) > 1:
        raise ConfigurationError(
            f"cannot stack PCA bases of differing shapes: {sorted(shapes)}"
        )
    components = np.ascontiguousarray(
        np.stack([p.components_ for p in pcas], axis=0)
    )
    means = np.stack([p.mean_ for p in pcas], axis=0)
    return StackedPCA(components, means)
