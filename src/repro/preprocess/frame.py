"""Framing of normalized series into fixed-order prediction windows.

Thin object wrapper over :mod:`repro.util.windows` that records the
prediction order *m* (the paper uses m = 5 for the 5-minute-interval
traces and m = 16 for VM1's 30-minute trace) so the same configuration
object can frame training data, test data, and streaming tails.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int
from repro.util.windows import frame_with_targets, num_frames, sliding_windows

__all__ = ["Framer"]


class Framer:
    """Frame series into overlapping windows of a fixed prediction order.

    Parameters
    ----------
    window:
        The prediction order *m*: how many trailing values each predictor
        sees when forecasting the next one.
    """

    def __init__(self, window: int):
        self.window = check_positive_int(window, name="window")

    def frames(self, series) -> np.ndarray:
        """All length-``window`` frames of *series* (read-only view)."""
        return sliding_windows(series, self.window)

    def frames_with_targets(self, series) -> tuple[np.ndarray, np.ndarray]:
        """(inputs, next-value targets) pairs for one-step prediction."""
        return frame_with_targets(series, self.window)

    def count(self, length: int) -> int:
        """How many (frame, target) pairs a series of *length* yields."""
        return max(0, num_frames(int(length), self.window) - 1)

    def tail(self, series) -> np.ndarray:
        """The most recent frame of *series* (for streaming prediction)."""
        return self.frames(series)[-1]

    def __repr__(self) -> str:
        return f"Framer(window={self.window})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Framer) and other.window == self.window

    def __hash__(self) -> int:
        return hash(("Framer", self.window))
