"""Data pre-processing: z-score normalization and window framing (Fig. 3)."""

from repro.preprocess.normalize import ZScoreNormalizer
from repro.preprocess.frame import Framer
from repro.preprocess.pipeline import PreprocessPipeline

__all__ = ["ZScoreNormalizer", "Framer", "PreprocessPipeline"]
