"""The combined pre-processing pipeline of Figure 3.

``raw series -> z-score normalize -> frame (order m) -> PCA (m -> n)``

The pipeline is fitted once on training data and then applied, frozen, to
test data: the normalizer's coefficients and the PCA basis both come from
the training phase (§6.2). It exposes *both* intermediate products the
LARPredictor needs —

* the **normalized frames** (what the predictors consume), and
* the **PCA features** (what the classifier consumes) —

reflecting the design decision recorded in DESIGN.md: PCA is a classifier
feature transform, not a predictor input transform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import NotFittedError
from repro.learn.pca import PCA
from repro.preprocess.frame import Framer
from repro.preprocess.normalize import ZScoreNormalizer

__all__ = ["PreprocessPipeline", "PreparedData"]


@dataclass(frozen=True)
class PreparedData:
    """Everything one series yields after pre-processing.

    Attributes
    ----------
    frames:
        ``(n_pairs, m)`` normalized prediction windows.
    targets:
        Length ``n_pairs`` normalized next values (one per frame).
    features:
        ``(n_pairs, n)`` PCA projections of the frames — the classifier's
        feature space.
    """

    frames: np.ndarray
    targets: np.ndarray
    features: np.ndarray

    def __len__(self) -> int:
        return int(self.targets.shape[0])


class PreprocessPipeline:
    """Fit-once, apply-frozen pre-processing for one performance trace.

    Parameters
    ----------
    window:
        Prediction order *m*.
    n_components:
        PCA dimensionality *n* (paper default 2). ``None`` disables PCA —
        the classifier then sees the raw normalized frames, which is the
        "PCA off" arm of the ablation.
    min_variance:
        Alternative PCA selection rule: keep enough components to explain
        this fraction of variance. Mutually exclusive with
        *n_components*.
    """

    def __init__(
        self,
        window: int = 5,
        *,
        n_components: int | None = 2,
        min_variance: float | None = None,
    ):
        self.framer = Framer(window)
        self.normalizer = ZScoreNormalizer()
        if min_variance is not None:
            self.pca: PCA | None = PCA(None, min_variance=min_variance)
        elif n_components is not None:
            if n_components > window:
                from repro.exceptions import ConfigurationError

                raise ConfigurationError(
                    f"n_components={n_components} exceeds window={window}"
                )
            self.pca = PCA(n_components)
        else:
            self.pca = None

    # -- properties ---------------------------------------------------------

    @property
    def window(self) -> int:
        """Prediction order *m*."""
        return self.framer.window

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.normalizer.is_fitted

    # -- fitting ------------------------------------------------------------

    def fit(self, train_series) -> "PreprocessPipeline":
        """Fit the normalizer and PCA basis on the training series."""
        z = self.normalizer.fit_transform(train_series)
        frames, _ = self.framer.frames_with_targets(z)
        if self.pca is not None:
            self.pca.fit(frames)
        return self

    def fit_prepare(self, train_series) -> PreparedData:
        """Fit on *train_series* and return its prepared form."""
        return self.fit(train_series).prepare(train_series)

    # -- application -----------------------------------------------------------

    def prepare(self, series) -> PreparedData:
        """Apply the frozen pipeline to *series*.

        Works for both training data (after :meth:`fit`) and test data.
        """
        self._require_fitted()
        z = self.normalizer.transform(series)
        frames, targets = self.framer.frames_with_targets(z)
        features = self.pca.transform(frames) if self.pca is not None else frames
        return PreparedData(
            frames=np.asarray(frames), targets=np.asarray(targets),
            features=np.atleast_2d(np.asarray(features)),
        )

    def prepare_tail(self, series) -> tuple[np.ndarray, np.ndarray]:
        """Prepare the most recent window of *series* for a live forecast.

        Returns ``(normalized_frame, feature_vector)`` for the final
        ``window`` values — the streaming path, where no target exists
        yet.
        """
        self._require_fitted()
        z = self.normalizer.transform(series)
        frame = self.framer.tail(z)
        feature = self.pca.transform(frame) if self.pca is not None else frame
        return np.asarray(frame), np.asarray(feature)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError("PreprocessPipeline must be fitted first")

    def __repr__(self) -> str:
        pca = repr(self.pca) if self.pca is not None else "disabled"
        return f"PreprocessPipeline(window={self.window}, pca={pca})"
