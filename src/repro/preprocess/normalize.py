"""Zero-mean / unit-variance normalization with train-derived coefficients.

The paper's features (CPU percentage, bytes/s, …) have incommensurate
units, so every series is normalized before prediction and classification
(§5.1, §6). Crucially, §6.2 says test data are normalized "using the
normalization coefficient derived from the training phase" — the mean and
standard deviation are *frozen* at fit time, never re-estimated on test
data. :class:`ZScoreNormalizer` encodes exactly that contract.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError
from repro.util.validation import as_series

__all__ = ["ZScoreNormalizer"]


class ZScoreNormalizer:
    """Normalize a series to zero mean and unit variance.

    Parameters
    ----------
    min_std:
        Floor applied to the fitted standard deviation. A constant
        training series has zero spread; dividing by it would produce
        infinities, so the scale is clamped to this floor (the transform
        then only centres the data). The floor is deliberately tiny — it
        never distorts real traces, only degenerate ones.

    Examples
    --------
    >>> import numpy as np
    >>> norm = ZScoreNormalizer().fit([1.0, 2.0, 3.0, 4.0])
    >>> z = norm.transform([1.0, 2.0, 3.0, 4.0])
    >>> bool(abs(z.mean()) < 1e-12)
    True
    """

    def __init__(self, *, min_std: float = 1e-12):
        min_std = float(min_std)
        if min_std <= 0.0:
            raise ValueError(f"min_std must be positive, got {min_std}")
        self.min_std = min_std
        self._mean: float | None = None
        self._std: float | None = None

    # -- fitting -----------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._mean is not None

    @property
    def mean(self) -> float:
        """Fitted location coefficient."""
        self._require_fitted()
        return self._mean  # type: ignore[return-value]

    @property
    def std(self) -> float:
        """Fitted scale coefficient (never below ``min_std``)."""
        self._require_fitted()
        return self._std  # type: ignore[return-value]

    def fit(self, series) -> "ZScoreNormalizer":
        """Estimate the coefficients from *series* and return ``self``."""
        x = as_series(series, name="series")
        self._mean = float(x.mean())
        self._std = max(float(x.std()), self.min_std)
        return self

    # -- transforms ---------------------------------------------------------

    def transform(self, series) -> np.ndarray:
        """Apply ``(x - mean) / std`` with the fitted coefficients."""
        self._require_fitted()
        x = as_series(series, name="series", allow_empty=True)
        return (x - self._mean) / self._std

    def fit_transform(self, series) -> np.ndarray:
        """Fit on *series* and return its normalized form."""
        return self.fit(series).transform(series)

    def inverse_transform(self, series) -> np.ndarray:
        """Map normalized values back to the original scale."""
        self._require_fitted()
        z = as_series(series, name="series", allow_empty=True)
        return z * self._std + self._mean

    def transform_value(self, value: float) -> float:
        """Normalize a single scalar (streaming-path convenience)."""
        self._require_fitted()
        return (float(value) - self._mean) / self._std  # type: ignore[operator]

    def inverse_transform_value(self, value: float) -> float:
        """De-normalize a single scalar."""
        self._require_fitted()
        return float(value) * self._std + self._mean  # type: ignore[operator]

    # -- internals ----------------------------------------------------------

    def _require_fitted(self) -> None:
        if self._mean is None:
            raise NotFittedError(
                "ZScoreNormalizer must be fitted before transforming data"
            )

    def __repr__(self) -> str:
        if self.is_fitted:
            return (
                f"ZScoreNormalizer(mean={self._mean:.6g}, std={self._std:.6g})"
            )
        return "ZScoreNormalizer(unfitted)"
