"""The prediction database (paper §3.2).

"The retrieved performance data with the corresponding time stamps are
stored in the prediction database. The [vmID, deviceID, timeStamp,
metricName] forms the combinational primary key of the database." The
same store later receives the LARPredictor's outputs so the Quality
Assuror can audit them.

This is an in-memory implementation of that schema: rows are keyed by
the composite primary key, kept sorted by timestamp per series, with
separate *measurement* and *prediction* columns so an audit can join the
two without a second table.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DuplicateKeyError, MissingSeriesError

__all__ = ["SeriesKey", "PredictionDatabase"]


@dataclass(frozen=True, order=True)
class SeriesKey:
    """The series part of the composite key: (vmID, deviceID, metricName)."""

    vm_id: str
    device_id: str
    metric: str

    def __str__(self) -> str:
        return f"{self.vm_id}/{self.device_id}/{self.metric}"


class _Series:
    """One series' rows, sorted by timestamp."""

    __slots__ = ("timestamps", "measurements", "predictions")

    def __init__(self) -> None:
        self.timestamps: list[int] = []
        self.measurements: list[float] = []
        self.predictions: list[float] = []  # NaN where no prediction stored

    def index_of(self, timestamp: int) -> int | None:
        i = bisect.bisect_left(self.timestamps, timestamp)
        if i < len(self.timestamps) and self.timestamps[i] == timestamp:
            return i
        return None

    def insert(self, timestamp: int, measurement: float) -> None:
        i = bisect.bisect_left(self.timestamps, timestamp)
        if i < len(self.timestamps) and self.timestamps[i] == timestamp:
            raise DuplicateKeyError(
                f"a row with timestamp {timestamp} already exists"
            )
        self.timestamps.insert(i, timestamp)
        self.measurements.insert(i, measurement)
        self.predictions.insert(i, float("nan"))


class PredictionDatabase:
    """Composite-key store of measurements and predictions.

    All writes enforce primary-key uniqueness
    (vmID, deviceID, timeStamp, metricName); all range reads return
    NumPy arrays sorted by timestamp.
    """

    def __init__(self) -> None:
        self._series: dict[SeriesKey, _Series] = {}

    # -- writes --------------------------------------------------------------

    def insert_measurement(
        self, key: SeriesKey, timestamp: int, value: float
    ) -> None:
        """Insert one measured value; duplicate keys raise."""
        series = self._series.setdefault(key, _Series())
        series.insert(int(timestamp), float(value))

    def insert_measurements(self, key: SeriesKey, timestamps, values) -> None:
        """Bulk :meth:`insert_measurement` (still key-checked per row)."""
        t = np.asarray(timestamps)
        v = np.asarray(values, dtype=np.float64)
        if t.shape != v.shape or t.ndim != 1:
            raise ValueError(
                f"timestamps and values must be equal-length 1-D, "
                f"got {t.shape} and {v.shape}"
            )
        for ti, vi in zip(t, v):
            self.insert_measurement(key, int(ti), float(vi))

    def store_prediction(
        self, key: SeriesKey, timestamp: int, predicted: float
    ) -> None:
        """Attach the LARPredictor's forecast for an upcoming timestamp.

        The row may not exist yet (the measurement arrives later); in
        that case a placeholder row with a NaN measurement is created and
        filled in by :meth:`record_observation`.
        """
        series = self._series.setdefault(key, _Series())
        i = series.index_of(int(timestamp))
        if i is None:
            series.insert(int(timestamp), float("nan"))
            i = series.index_of(int(timestamp))
        assert i is not None
        series.predictions[i] = float(predicted)

    def record_observation(
        self, key: SeriesKey, timestamp: int, value: float
    ) -> None:
        """Fill in the measurement of a row created by a prediction."""
        series = self._get(key)
        i = series.index_of(int(timestamp))
        if i is None:
            series.insert(int(timestamp), float(value))
        else:
            series.measurements[i] = float(value)

    # -- reads ----------------------------------------------------------------

    def keys(self) -> list[SeriesKey]:
        """All stored series keys, sorted."""
        return sorted(self._series)

    def __contains__(self, key: SeriesKey) -> bool:
        return key in self._series

    def fetch_measurements(
        self,
        key: SeriesKey,
        *,
        start: int | None = None,
        end: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(timestamps, measured values) in a time range, sorted.

        Rows whose measurement is still the NaN placeholder are skipped.
        """
        series = self._get(key)
        t = np.asarray(series.timestamps, dtype=np.int64)
        v = np.asarray(series.measurements, dtype=np.float64)
        mask = ~np.isnan(v)
        if start is not None:
            mask &= t >= int(start)
        if end is not None:
            mask &= t <= int(end)
        return t[mask], v[mask]

    def fetch_prediction_pairs(
        self,
        key: SeriesKey,
        *,
        start: int | None = None,
        end: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(timestamps, predictions, measurements) where **both** exist.

        This is the join the Quality Assuror audits: only rows that have
        received a forecast *and* its later observation participate.
        """
        series = self._get(key)
        t = np.asarray(series.timestamps, dtype=np.int64)
        m = np.asarray(series.measurements, dtype=np.float64)
        p = np.asarray(series.predictions, dtype=np.float64)
        mask = ~np.isnan(m) & ~np.isnan(p)
        if start is not None:
            mask &= t >= int(start)
        if end is not None:
            mask &= t <= int(end)
        return t[mask], p[mask], m[mask]

    def audit_mse(
        self,
        key: SeriesKey,
        *,
        start: int | None = None,
        end: int | None = None,
    ) -> float:
        """Average squared prediction error over the joined rows.

        Returns NaN when no joined rows exist in the range (the QA treats
        that as "nothing to audit yet").
        """
        _, p, m = self.fetch_prediction_pairs(key, start=start, end=end)
        if p.size == 0:
            return float("nan")
        d = p - m
        return float(d @ d / d.size)

    # -- internals ------------------------------------------------------------

    def _get(self, key: SeriesKey) -> _Series:
        try:
            return self._series[key]
        except KeyError:
            raise MissingSeriesError(f"no series stored under {key}") from None

    def __repr__(self) -> str:
        rows = sum(len(s.timestamps) for s in self._series.values())
        return f"PredictionDatabase(series={len(self._series)}, rows={rows})"
