"""Storage substrates: the Round-Robin Database and the prediction database."""

from repro.db.rrd import ArchiveSpec, RoundRobinDatabase
from repro.db.prediction_db import SeriesKey, PredictionDatabase

__all__ = ["ArchiveSpec", "RoundRobinDatabase", "SeriesKey", "PredictionDatabase"]
