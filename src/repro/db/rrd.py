"""A Round-Robin Database (paper §3.2).

The prototype stores vmkusage's measurements "in a Round Robin Database
(RRD)": fixed-size circular storage where old data is overwritten and
coarser archives hold consolidated (averaged) views of the primary
samples — the vmkusage behaviour of sampling every minute but exposing
five-minute averages is exactly one ``average``-consolidated archive
with ``steps=5``.

This is a faithful in-memory implementation of that model: named data
sources, one primary step, any number of round-robin archives per
consolidation function, NaN for missing slots, and range fetch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DatabaseError
from repro.util.validation import check_positive_int

__all__ = ["ArchiveSpec", "RoundRobinDatabase"]

_CONSOLIDATIONS = ("average", "max", "min", "last")


@dataclass(frozen=True)
class ArchiveSpec:
    """Specification of one round-robin archive.

    Attributes
    ----------
    consolidation:
        How *steps* primary samples collapse into one archive row:
        ``average``, ``max``, ``min``, or ``last``.
    steps:
        Primary samples per archive row (1 keeps raw resolution).
    rows:
        Archive capacity; older rows are overwritten round-robin.
    """

    consolidation: str
    steps: int
    rows: int

    def __post_init__(self) -> None:
        if self.consolidation not in _CONSOLIDATIONS:
            raise ConfigurationError(
                f"consolidation must be one of {_CONSOLIDATIONS}, "
                f"got {self.consolidation!r}"
            )
        check_positive_int(self.steps, name="steps")
        check_positive_int(self.rows, name="rows")

    @property
    def period(self) -> int:
        """Rows * steps — the primary-sample span the archive covers."""
        return self.rows * self.steps


class _Archive:
    """One circular buffer per (data source, archive spec)."""

    __slots__ = ("spec", "values", "times", "head", "count", "_bucket", "_bucket_n")

    def __init__(self, spec: ArchiveSpec):
        self.spec = spec
        self.values = np.full(spec.rows, np.nan)
        self.times = np.full(spec.rows, -1, dtype=np.int64)
        self.head = 0  # next write slot
        self.count = 0
        self._bucket: list[float] = []
        self._bucket_n = 0

    def push(self, timestamp: int, value: float) -> None:
        self._bucket.append(value)
        self._bucket_n += 1
        if self._bucket_n >= self.spec.steps:
            self._commit(timestamp)

    def _commit(self, timestamp: int) -> None:
        bucket = np.asarray(self._bucket)
        cf = self.spec.consolidation
        if cf == "average":
            consolidated = float(bucket.mean())
        elif cf == "max":
            consolidated = float(bucket.max())
        elif cf == "min":
            consolidated = float(bucket.min())
        else:  # last
            consolidated = float(bucket[-1])
        self.values[self.head] = consolidated
        self.times[self.head] = timestamp
        self.head = (self.head + 1) % self.spec.rows
        self.count = min(self.count + 1, self.spec.rows)
        self._bucket.clear()
        self._bucket_n = 0

    def fetch(
        self, start: int | None, end: int | None
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.count == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        # Chronological unroll of the circular buffer.
        if self.count < self.spec.rows:
            order = np.arange(self.count)
        else:
            order = (np.arange(self.spec.rows) + self.head) % self.spec.rows
        t = self.times[order]
        v = self.values[order]
        mask = np.ones(t.shape[0], dtype=bool)
        if start is not None:
            mask &= t >= int(start)
        if end is not None:
            mask &= t <= int(end)
        return t[mask], v[mask]


class RoundRobinDatabase:
    """Multi-source, multi-archive round-robin time series storage.

    Parameters
    ----------
    step:
        Primary sampling interval in seconds (vmkusage: 60).
    sources:
        Names of the data sources (one per performance metric).
    archives:
        The archives kept for *every* source. Defaults to a single raw
        archive of 4096 rows.

    Notes
    -----
    Updates must be supplied for all sources at once (one sampling tick)
    with non-decreasing timestamps aligned to the step; vmkusage works
    the same way — it snapshots every metric of a VM on each tick.
    """

    def __init__(
        self,
        step: int,
        sources,
        archives: list[ArchiveSpec] | None = None,
    ):
        self.step = check_positive_int(step, name="step")
        names = list(sources)
        if not names:
            raise ConfigurationError("an RRD needs at least one data source")
        if len(set(names)) != len(names):
            raise ConfigurationError("data source names must be unique")
        if archives is None:
            archives = [ArchiveSpec("average", 1, 4096)]
        if not archives:
            raise ConfigurationError("an RRD needs at least one archive")
        self.sources = tuple(str(n) for n in names)
        self.archive_specs = tuple(archives)
        self._archives: dict[str, list[_Archive]] = {
            name: [_Archive(spec) for spec in archives] for name in self.sources
        }
        self._last_timestamp: int | None = None
        self._updates = 0

    # -- writes -------------------------------------------------------------

    @property
    def last_timestamp(self) -> int | None:
        """Timestamp of the most recent update, or None before any."""
        return self._last_timestamp

    @property
    def n_updates(self) -> int:
        """Total primary samples accepted per source."""
        return self._updates

    def update(self, timestamp: int, values: dict[str, float]) -> None:
        """Record one sampling tick.

        Parameters
        ----------
        timestamp:
            Seconds; must advance by exactly ``step`` from the previous
            update (the RRD model has no holes — vmkusage ticks are
            clocked).
        values:
            One finite value per data source.
        """
        timestamp = int(timestamp)
        if self._last_timestamp is not None:
            expected = self._last_timestamp + self.step
            if timestamp != expected:
                raise DatabaseError(
                    f"update at {timestamp} but expected {expected} "
                    f"(step={self.step})"
                )
        missing = set(self.sources) - set(values)
        extra = set(values) - set(self.sources)
        if missing or extra:
            raise DatabaseError(
                f"update sources mismatch: missing={sorted(missing)}, "
                f"unknown={sorted(extra)}"
            )
        for name in self.sources:
            v = float(values[name])
            if not np.isfinite(v):
                raise DatabaseError(f"non-finite value for source {name!r}")
            for archive in self._archives[name]:
                archive.push(timestamp, v)
        self._last_timestamp = timestamp
        self._updates += 1

    # -- reads ------------------------------------------------------------------

    def fetch(
        self,
        source: str,
        *,
        archive: int = 0,
        start: int | None = None,
        end: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fetch ``(timestamps, values)`` from one source's archive.

        Parameters
        ----------
        source:
            Data source name.
        archive:
            Index into the archive list supplied at construction.
        start, end:
            Optional inclusive timestamp bounds.
        """
        if source not in self._archives:
            raise DatabaseError(
                f"unknown data source {source!r}; have {list(self.sources)}"
            )
        archives = self._archives[source]
        if not 0 <= archive < len(archives):
            raise DatabaseError(
                f"archive index {archive} out of range "
                f"(have {len(archives)} archives)"
            )
        return archives[archive].fetch(start, end)

    def __repr__(self) -> str:
        return (
            f"RoundRobinDatabase(step={self.step}, "
            f"sources={len(self.sources)}, archives={len(self.archive_specs)}, "
            f"updates={self._updates})"
        )
