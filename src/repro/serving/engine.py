"""The batched fleet tick engine: one tick, a handful of NumPy ops.

:class:`~repro.serving.fleet.PredictionFleet`'s original tick loop ran
every stream through its own Python call chain — per-stream
``prepare_tail``, a single-point k-NN query, a single-frame
``predict_next`` — so a fleet tick cost N interpreter round-trips and
never touched BLAS with more than one row. This engine executes the
same tick *fleet-wide*:

* the trailing windows of all trained streams live in one
  ``(n_streams, window + 1)`` matrix, rolled once per tick;
* per-stream z-score coefficients and PCA bases are stacked
  (:mod:`repro.preprocess.stacked`) so normalization is one broadcast
  and feature projection one 3-D ``matmul``;
* every stream's k-NN memory is mirrored into a padded
  ``(n_streams, capacity, d)`` tensor (ring layout by absolute row
  index) with cached squared norms, so the fleet's N single-point
  queries become one batched distance computation plus one
  deterministic top-k selection (:mod:`repro.learn.topk`);
* classifier-selected predictors are dispatched *grouped by member*
  (:mod:`repro.predictors.stacked`): LAST, AR, and SW_AVG each run once
  over all streams that selected them;
* every stream's QA error window is mirrored into one
  ``(n_streams, audit_window)`` ring, so the per-tick audits run as
  vectorized kernels (one modulo for the audit boundaries, grouped
  row-sums for the window MSEs) instead of S ``record()`` calls.

Gather-free fast path
---------------------
The common tick selects *every* attached row in storage order. Basic
(slice) indexing then replaces the fancy-index gathers, so the kernels
read **views** of the stacked tensors instead of copying the whole
``(S, cap, d)`` memory mirror per tick; per-tick scratch buffers
(frames, features, distances, the audit kernels) are recycled across
ticks instead of reallocated. Partial row subsets fall back to the
fancy-index path bit-identically. Setting :attr:`BatchedTickEngine.
gather_free` to ``False`` disables the fast path *and* the stacked
QA/bookkeeping kernels, restoring the previous engine's per-stream
bookkeeping — the baseline the benchmark gate measures against and a
second parity oracle for the tests.

Bit-exactness contract
----------------------
The engine is an execution strategy, not a model change: for every
stream it must produce bit-identical results to the per-stream loop —
same forecasts, same selected labels, same learned memory, same QA
audit history and telemetry counters. Every kernel above was chosen for
that property (elementwise broadcasts, row-wise reductions, stacked
``matmul`` whose slices hit the same BLAS calls, grouped trailing-slice
row-sums that reproduce ``np.mean``'s summation order, and a shared
lexicographic top-k rule for distance ties); the parity suites in
``tests/test_serving_engine.py`` and
``tests/test_serving_qa_stacked.py`` lock it in.

Eligibility and fallback
------------------------
A trained stream is served by the engine only when its components match
what the stacked kernels cover: the paper pool (LAST/AR/SW_AVG), a
fixed-size (or disabled) PCA, a uniform-weight
:class:`~repro.learn.knn.KNNClassifier` whose backend resolves to
``brute`` (the KD-tree path answers queries through its own traversal
order and is left per-stream), and a plain
:class:`~repro.core.qa.PredictionQualityAssuror` with the fleet's audit
geometry. Everything else transparently falls back to the per-stream
loop, stream by stream. Per-stream QA objects stay the source of truth:
the engine writes every record back, and reloads its mirror whenever a
QA's ``version`` counter shows someone else mutated it (a retrain's
``acknowledge_retraining``, a ``load_state_dict``, a per-stream-loop
tick) — exactly like classifier memory resyncs.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.larpredictor import Forecast
from repro.core.online import OnlineLARPredictor
from repro.core.qa import AuditRecord, PredictionQualityAssuror
from repro.learn.knn import KNNClassifier, bulk_learn_rows
from repro.learn.topk import lexicographic_topk
from repro.learn.voting import majority_vote
from repro.predictors.stacked import (
    StackedARParams,
    ar_predict_stacked,
    is_paper_pool,
    paper_pool_predict_all_stacked,
)

__all__ = ["BatchedTickEngine"]

_POOL_NAMES = ("LAST", "AR", "SW_AVG")
_MIN_ROW_CAPACITY = 4


def _pow2_at_least(n: int) -> int:
    cap = 1
    while cap < n:
        cap *= 2
    return cap


class _Entry:
    """Engine-side bookkeeping for one attached stream."""

    __slots__ = ("name", "predictor", "classifier", "qa", "row", "generation",
                 "synced_appended", "sq_count", "qa_version", "max_memory")

    def __init__(self, name: str, predictor: OnlineLARPredictor, row: int):
        self.name = name
        self.predictor = predictor
        self.classifier = predictor._classifier
        self.qa: PredictionQualityAssuror | None = None
        self.row = row
        self.generation = -1
        self.synced_appended = 0
        self.sq_count = 0
        self.qa_version = -1
        self.max_memory = predictor.max_memory


class BatchedTickEngine:
    """Stacked per-stream state + batched tick kernels for one fleet.

    The engine self-synchronizes: :meth:`sync` diffs the fleet's stream
    table against its registry before every batched operation, attaching
    newly trained streams, refreshing retrained ones (the predictor
    object identity changes), and detaching removed ones. Between
    retrains it keeps its memory mirror up to date incrementally via
    the classifier's ``store_generation`` / ``appended_total_`` /
    ``discarded_total_`` counters — the common case (one appended row
    per stream per tick) is a single vectorized scatter — and its QA
    mirror up to date via the assuror's ``version`` counter.

    Attributes
    ----------
    gather_free:
        ``True`` (default) serves contiguous row selections through
        zero-copy views, recycles scratch buffers across ticks, records
        QA audits through the stacked ring, and appends classifier rows
        through :func:`~repro.learn.knn.bulk_learn_rows`. ``False``
        restores the previous engine's behavior — fancy-index gathers,
        fresh allocations, per-stream ``qa.record`` /
        ``_note_audit`` / ``_append_rows`` calls
        — bit-identical output either way (the benchmark gate times
        one against the other).
    """

    def __init__(self, fleet) -> None:
        self._fleet = fleet
        cfg = fleet.config
        self._window = cfg.lar.window
        self._k = cfg.lar.k
        self._ar_order = cfg.lar.effective_ar_order
        self._smoothing = cfg.label_smoothing
        self._qa_window = cfg.audit_window
        self._qa_interval = cfg.audit_interval
        self._qa_threshold = float(cfg.qa_threshold)
        self.gather_free = True
        # min_variance lets each stream keep a different component
        # count, which cannot be stacked; everything else is uniform.
        self._supported = (
            cfg.lar.min_variance is None and not cfg.lar.extended_pool
        )
        self._n_features = (
            cfg.lar.n_components
            if cfg.lar.n_components is not None
            else self._window
        )
        self._entries: dict[str, _Entry] = {}
        self._rows: list[_Entry] = []
        # Per-tick scratch, keyed by call site; _buf returns the cached
        # array whenever the requested shape still matches, so the
        # steady-state tick allocates nothing.
        self._scratch: dict[str, np.ndarray] = {}
        # The ring tracks the deepest stream's live memory, not the
        # configured cap: distances are computed over every slot (dead
        # ones masked), so padding the ring to max_memory up front would
        # multiply the per-tick work while memories are still shallow.
        # _grow_memory doubles it as streams accumulate rows.
        self._mem_cap = _pow2_at_least(2 * self._k)
        self._alloc(_MIN_ROW_CAPACITY)

    # -- storage ------------------------------------------------------------

    def _alloc(self, row_cap: int) -> None:
        w, d, L = self._window, self._n_features, self._smoothing
        cap = self._mem_cap
        self._tails = np.empty((row_cap, w + 1), dtype=np.float64)
        self._mu = np.empty(row_cap, dtype=np.float64)
        self._sigma = np.empty(row_cap, dtype=np.float64)
        self._pmean = np.empty((row_cap, w), dtype=np.float64)
        self._pcomp = np.empty((row_cap, d, w), dtype=np.float64)
        self._ar_phi = np.empty((row_cap, self._ar_order), dtype=np.float64)
        self._ar_mu = np.empty(row_cap, dtype=np.float64)
        self._sqring = np.zeros((row_cap, L, 3), dtype=np.float64)
        # Stacked QA mirror: each row holds the stream's audit window
        # oldest-first (zero-padded on the left while warming up), plus
        # its live pair count and step counter.
        self._qa_ring = np.zeros((row_cap, self._qa_window), dtype=np.float64)
        self._qa_count = np.zeros(row_cap, dtype=np.int64)
        self._qa_step = np.zeros(row_cap, dtype=np.int64)
        # Dead ring slots flow through the batched distance computation
        # before being masked out, so they must hold finite values.
        self._mem_x = np.zeros((row_cap, cap, d), dtype=np.float64)
        self._mem_y = np.empty((row_cap, cap), dtype=np.int64)
        self._mem_bb = np.zeros((row_cap, cap), dtype=np.float64)
        self._mem_abs = np.full((row_cap, cap), -1, dtype=np.int64)
        self._mem_lo = np.zeros(row_cap, dtype=np.int64)
        self._mem_hi = np.zeros(row_cap, dtype=np.int64)

    def _row_arrays(self) -> tuple:
        return (self._tails, self._mu, self._sigma, self._pmean, self._pcomp,
                self._ar_phi, self._ar_mu, self._sqring, self._qa_ring,
                self._qa_count, self._qa_step, self._mem_x, self._mem_y,
                self._mem_bb, self._mem_abs, self._mem_lo, self._mem_hi)

    def _grow_rows(self) -> None:
        old = self._row_arrays()
        n = len(self._rows)
        self._alloc(2 * self._tails.shape[0])
        for dst, src in zip(self._row_arrays(), old):
            dst[:n] = src[:n]

    def _grow_memory(self, needed: int) -> None:
        """Widen the per-stream memory mirror; rows reload lazily."""
        self._mem_cap = _pow2_at_least(needed)
        row_cap = self._tails.shape[0]
        self._mem_x = np.zeros(
            (row_cap, self._mem_cap, self._n_features), dtype=np.float64
        )
        self._mem_y = np.empty((row_cap, self._mem_cap), dtype=np.int64)
        self._mem_bb = np.zeros((row_cap, self._mem_cap), dtype=np.float64)
        self._mem_abs = np.full((row_cap, self._mem_cap), -1, dtype=np.int64)
        for entry in self._rows:
            entry.generation = -1  # force a full reload on next sync

    def _buf(self, name: str, shape: tuple) -> np.ndarray:
        """A recycled float64 scratch array (fresh when gather_free off)."""
        if not self.gather_free:
            return np.empty(shape, dtype=np.float64)
        buf = self._scratch.get(name)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=np.float64)
            self._scratch[name] = buf
        return buf

    def _buf_bool(self, name: str, shape: tuple) -> np.ndarray:
        if not self.gather_free:
            return np.empty(shape, dtype=bool)
        buf = self._scratch.get(name)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=bool)
            self._scratch[name] = buf
        return buf

    def _selector(self, rows: np.ndarray):
        """A basic-indexing slice when *rows* is consecutive, else *rows*.

        Slices make every gather below a zero-copy view; the returned
        selector is only ever used for reads (scatters keep the fancy
        ``rows`` array, whose pointwise semantics a slice cannot
        express).
        """
        if not self.gather_free:
            return rows
        n = rows.shape[0]
        first = int(rows[0])
        if int(rows[n - 1]) - first == n - 1 and (
            n <= 2 or bool((rows[1:] > rows[:-1]).all())
        ):
            return slice(first, first + n)
        return rows

    @staticmethod
    def _shift_append(arr: np.ndarray, sel, rows: np.ndarray, new) -> None:
        """Roll ``arr[sel]`` one step left along axis 1, appending *new*."""
        if isinstance(sel, slice):
            view = arr[sel]
            view[:, :-1] = view[:, 1:]
            view[:, -1] = new
        else:
            arr[rows, :-1] = arr[rows, 1:]
            arr[rows, -1] = new

    # -- membership ---------------------------------------------------------

    def prepare(self) -> None:
        """Reconcile membership and memory mirrors with the fleet.

        Call once before a batched operation (or a batch of them within
        one tick); :meth:`forecast_batch` calls it itself,
        :meth:`PredictionFleet.ingest` calls it before filtering streams
        through :meth:`serves`.
        """
        self.sync()
        if self._rows:
            self._sync_memory()

    def sync(self) -> None:
        """Reconcile the registry with the fleet's current stream table."""
        if not self._supported:
            return
        states = self._fleet._streams
        stale = [
            e for e in self._rows
            if (s := states.get(e.name)) is None or s.predictor is not e.predictor
        ]
        for entry in stale:
            self._detach(entry)
        for name, state in states.items():
            if state.predictor is not None and name not in self._entries:
                self._try_attach(name, state.predictor)

    def serves(self, name: str) -> bool:
        """Whether *name* is currently served by the batched path."""
        return name in self._entries

    def _try_attach(self, name: str, predictor: OnlineLARPredictor) -> None:
        if not self._eligible(predictor):
            return
        state = self._fleet._streams.get(name)
        qa = state.qa if state is not None else None
        # The stacked QA ring shares one geometry across rows, so a
        # stream whose assuror diverges from the fleet policy (or is a
        # subclass with its own behavior) stays on the per-stream loop.
        if (
            type(qa) is not PredictionQualityAssuror
            or qa.audit_window != self._qa_window
            or qa.audit_interval != self._qa_interval
            or qa.threshold != self._qa_threshold
        ):
            return
        if len(self._rows) == self._tails.shape[0]:
            self._grow_rows()
        entry = _Entry(name, predictor, len(self._rows))
        entry.qa = qa
        self._rows.append(entry)
        self._entries[name] = entry
        row = entry.row
        pipeline = predictor._runner.pipeline
        self._mu[row] = pipeline.normalizer.mean
        self._sigma[row] = pipeline.normalizer.std
        if pipeline.pca is not None:
            self._pmean[row] = pipeline.pca.mean_
            self._pcomp[row] = pipeline.pca.components_
        ar = predictor._runner.pool[1]
        self._ar_phi[row] = ar.coefficients_
        self._ar_mu[row] = ar.mean_
        self._tails[row] = predictor._tail(self._window + 1)
        self._sqring[row] = 0.0
        entry.sq_count = len(predictor._recent_sq)
        if entry.sq_count:
            self._sqring[row, self._smoothing - entry.sq_count :] = np.stack(
                list(predictor._recent_sq), axis=0
            )
        self._reload_qa(entry)
        self._reload_memory(entry)

    def _detach(self, entry: _Entry) -> None:
        last = self._rows[-1]
        if last is not entry:
            # Swap-remove: move the last row's data into the freed slot.
            dst, src = entry.row, last.row
            for arr in self._row_arrays():
                arr[dst] = arr[src]
            last.row = dst
            self._rows[dst] = last
        self._rows.pop()
        del self._entries[entry.name]

    def _eligible(self, predictor: OnlineLARPredictor) -> bool:
        clf = predictor._classifier
        if type(clf) is not KNNClassifier or clf.weights != "uniform":
            return False
        if clf._tree is not None or clf._resolve_backend() != "brute":
            return False
        pool = predictor._runner.pool
        if not is_paper_pool(pool):
            return False
        if pool[1].order != self._ar_order or pool[2].window is not None:
            return False
        pca = predictor._runner.pipeline.pca
        if pca is None:
            return self._n_features == self._window
        return pca.components_.shape == (self._n_features, self._window)

    # -- memory mirror ------------------------------------------------------

    def _reload_memory(self, entry: _Entry) -> None:
        clf = entry.classifier
        lo, hi = clf.discarded_total_, clf.appended_total_
        if hi - lo > self._mem_cap:
            self._grow_memory(hi - lo)
        row = entry.row
        abs_idx = np.arange(lo, hi, dtype=np.int64)
        slots = abs_idx % self._mem_cap
        self._mem_abs[row] = -1
        self._mem_abs[row, slots] = abs_idx
        self._mem_x[row, slots] = clf._X
        self._mem_y[row, slots] = clf._y
        self._mem_bb[row, slots] = np.einsum("ij,ij->i", clf._X, clf._X)
        self._mem_lo[row] = lo
        self._mem_hi[row] = hi
        entry.generation = clf.store_generation
        entry.synced_appended = hi

    def _reload_qa(self, entry: _Entry) -> None:
        """Mirror one stream's QA error window into the stacked ring."""
        qa = entry.qa
        row = entry.row
        w = self._qa_window
        count = len(qa._sq_errors)
        self._qa_ring[row] = 0.0
        if count:
            self._qa_ring[row, w - count :] = qa._sq_errors
        self._qa_count[row] = count
        self._qa_step[row] = qa._step
        entry.qa_version = qa.version

    def _sync_memory(self) -> list[_Entry]:
        """Bring every row's memory and QA mirrors up to date.

        Returns entries that stopped being batchable (e.g. the auto
        backend crossed over to the KD-tree as the memory grew); the
        caller detaches them and serves those streams per-stream.
        """
        demoted: list[_Entry] = []
        qa_live = self.gather_free
        for entry in self._rows:
            clf = entry.classifier
            if clf._tree is not None or clf._resolve_backend() != "brute":
                demoted.append(entry)
                continue
            # The engine's own write-backs leave `version` untouched, so
            # a mismatch means someone else mutated the QA (a retrain's
            # acknowledge_retraining, a per-stream-loop tick, a restore)
            # and this row's window mirror must be rebuilt.
            if qa_live and entry.qa_version != entry.qa.version:
                self._reload_qa(entry)
            if entry.generation != clf.store_generation:
                self._reload_memory(entry)
                continue
            appended = clf.appended_total_
            if appended != entry.synced_appended:
                rows_x, rows_y, first = clf.rows_since(entry.synced_appended)
                if first + rows_x.shape[0] - clf.discarded_total_ > self._mem_cap:
                    self._grow_memory(
                        clf.appended_total_ - clf.discarded_total_
                    )
                    self._reload_memory(entry)
                    continue
                abs_idx = np.arange(
                    first, first + rows_x.shape[0], dtype=np.int64
                )
                slots = abs_idx % self._mem_cap
                row = entry.row
                self._mem_x[row, slots] = rows_x
                self._mem_y[row, slots] = rows_y
                self._mem_abs[row, slots] = abs_idx
                self._mem_bb[row, slots] = np.einsum(
                    "ij,ij->i", rows_x, rows_x
                )
                entry.synced_appended = appended
            self._mem_lo[entry.row] = clf.discarded_total_
        for entry in demoted:
            self._detach(entry)
        return demoted

    # -- batched kernels ----------------------------------------------------

    def _classify(self, sel, feats: np.ndarray) -> np.ndarray:
        """Batched k-NN majority vote: one label per selected row."""
        mem_x = self._mem_x[sel]
        n, cap = feats.shape[0], mem_x.shape[1]
        aa = self._buf("aa", (n,))
        np.einsum("ij,ij->i", feats, feats, out=aa)
        cross3 = self._buf("cross3", (n, 1, cap))
        np.matmul(feats[:, None, :], mem_x.transpose(0, 2, 1), out=cross3)
        cross = cross3[:, 0, :]
        d2 = self._buf("d2", (n, cap))
        np.add(aa[:, None], self._mem_bb[sel], out=d2)
        np.multiply(cross, 2.0, out=cross)
        np.subtract(d2, cross, out=d2)
        np.maximum(d2, 0.0, out=d2)
        mem_abs = self._mem_abs[sel]
        dead = self._buf_bool("dead", (n, cap))
        np.less(mem_abs, self._mem_lo[sel, None], out=dead)
        d2[dead] = np.inf
        _, slots = lexicographic_topk(d2, self._k, tie_keys=mem_abs)
        neighbor_labels = np.take_along_axis(self._mem_y[sel], slots, axis=1)
        return majority_vote(neighbor_labels)

    def _features(self, sel, frames: np.ndarray) -> np.ndarray:
        """Stacked PCA projection (or the frames themselves, PCA off)."""
        if self._n_features == self._window:
            if frames.flags.c_contiguous:
                return frames
            feats = self._buf("feats_copy", frames.shape)
            np.copyto(feats, frames)
            return feats
        n = frames.shape[0]
        centered = self._buf("centered", (n, self._window))
        np.subtract(frames, self._pmean[sel], out=centered)
        comp_t = self._pcomp[sel].transpose(0, 2, 1)
        feats3 = self._buf("feats3", (n, 1, self._n_features))
        np.matmul(centered[:, None, :], comp_t, out=feats3)
        return feats3[:, 0, :]

    def _pool_dispatch(
        self, sel, frames: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Run each selected pool member once over its group of rows."""
        normalized = self._buf("normalized", (frames.shape[0],))
        ar_rows = labels == 2
        if ar_rows.any():
            ar = StackedARParams(
                self._ar_phi[sel][ar_rows], self._ar_mu[sel][ar_rows]
            )
            normalized[ar_rows] = ar_predict_stacked(frames[ar_rows], ar)
        last_rows = labels == 1
        if last_rows.any():
            normalized[last_rows] = frames[last_rows][:, -1]
        sw_rows = labels == 3
        if sw_rows.any():
            normalized[sw_rows] = frames[sw_rows].mean(axis=1)
        return normalized

    def _forecast_rows(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(values, normalized values, labels) for the selected rows."""
        tel = self._fleet._tel
        if tel is not None:
            return self._forecast_rows_traced(rows, tel.tracer)
        sel = self._selector(rows)
        n = rows.shape[0]
        mu = self._mu[sel]
        sigma = self._sigma[sel]
        frames = self._buf("frames", (n, self._window))
        np.subtract(self._tails[sel, 1:], mu[:, None], out=frames)
        np.divide(frames, sigma[:, None], out=frames)
        feats = self._features(sel, frames)
        labels = self._classify(sel, feats)
        normalized = self._pool_dispatch(sel, frames, labels)
        values = self._buf("values", (n,))
        np.multiply(normalized, sigma, out=values)
        np.add(values, mu, out=values)
        return values, normalized, labels

    def _forecast_rows_traced(
        self, rows: np.ndarray, tracer
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`_forecast_rows` with per-phase tracing spans."""
        sel = self._selector(rows)
        n = rows.shape[0]
        mu = self._mu[sel]
        sigma = self._sigma[sel]
        with tracer.span("tick.zscore", batch=n):
            frames = self._buf("frames", (n, self._window))
            np.subtract(self._tails[sel, 1:], mu[:, None], out=frames)
            np.divide(frames, sigma[:, None], out=frames)
        with tracer.span("tick.pca_project", batch=n):
            feats = self._features(sel, frames)
        with tracer.span("tick.knn_query", batch=n):
            labels = self._classify(sel, feats)
        with tracer.span("tick.pool_dispatch", batch=n):
            normalized = self._pool_dispatch(sel, frames, labels)
        values = self._buf("values", (n,))
        np.multiply(normalized, sigma, out=values)
        np.add(values, mu, out=values)
        return values, normalized, labels

    # -- stacked QA ----------------------------------------------------------

    def _record_audits_stacked(
        self,
        items: list,
        entries: list,
        sel,
        rows: np.ndarray,
        pending_norm: np.ndarray,
        observed_norm: np.ndarray,
        pending_name: list,
    ) -> "list[tuple[str, AuditRecord]] | None":
        """Record one (prediction, observation) pair per served stream.

        Bit-identical to calling ``state.qa.record(...)`` per stream —
        the audit boundary is one modulo over the stacked step counters,
        window MSEs are grouped trailing-slice row-sums over the stacked
        ring (the summation order ``np.mean`` uses over the deque), and
        everything is written back to the per-stream QA objects, audits
        list and lifetime counters included, without bumping their
        ``version`` (the mirror advanced in lockstep). Returns the
        ``(stream, audit)`` pairs for the fleet's aggregated telemetry
        note, or ``None`` when telemetry is off.
        """
        fleet = self._fleet
        n = len(items)
        w = self._qa_window
        errs = self._buf("qa_errs", (n,))
        np.subtract(pending_norm, observed_norm, out=errs)
        if not np.isfinite(errs).all():
            # A non-finite pair must raise exactly like the per-stream
            # loop (mid-loop, earlier streams already recorded). The
            # version bumps the records make mark the mirror stale, so
            # the next prepare() reloads whatever was mutated.
            for i, (state, _) in enumerate(items):
                state.qa.record(
                    float(pending_norm[i]), float(observed_norm[i])
                )
            raise AssertionError("finite errors must have raised")  # pragma: no cover
        np.multiply(errs, errs, out=errs)
        sq = errs
        ring = self._qa_ring
        self._shift_append(ring, sel, rows, sq)
        if isinstance(sel, slice):
            counts = self._qa_count[sel]
            counts += 1
            np.minimum(counts, w, out=counts)
            steps = self._qa_step[sel]
            steps += 1
        else:
            counts = np.minimum(self._qa_count[rows] + 1, w)
            self._qa_count[rows] = counts
            steps = self._qa_step[rows] + 1
            self._qa_step[rows] = steps
        audited = np.flatnonzero(steps % self._qa_interval == 0)
        audit_info: dict[int, tuple[float, bool]] = {}
        if audited.size:
            ring_sel = ring[sel]
            mses = np.empty(audited.size, dtype=np.float64)
            acounts = counts[audited]
            for count in np.unique(acounts):
                grp = acounts == count
                # Trailing slices of fancy-selected rows are contiguous
                # copies, so this row-sum reduces each window in the
                # exact order np.mean reduces the per-stream deque.
                mses[grp] = ring_sel[audited[grp], w - int(count) :].sum(
                    axis=1
                ) / int(count)
            breached = mses > self._qa_threshold
            for j, i in enumerate(audited.tolist()):
                audit_info[i] = (float(mses[j]), bool(breached[j]))
        tel = fleet._tel
        audited_events: list[tuple[str, AuditRecord]] | None = (
            [] if tel is not None else None
        )
        sq_list = sq.tolist()
        step_list = steps.tolist()
        for i, (state, _) in enumerate(items):
            qa = entries[i].qa
            v = sq_list[i]
            dq = qa._sq_errors
            if len(dq) == w:
                qa._sq_sum -= dq[0]
            dq.append(v)
            qa._sq_sum += v
            qa._step += 1
            info = audit_info.get(i)
            if info is not None:
                window_mse, breach = info
                record = AuditRecord(
                    step=step_list[i], window_mse=window_mse, breached=breach
                )
                qa.audits.append(record)
                qa.audits_total += 1
                if breach:
                    qa.breaches_total += 1
                    qa._retraining_due = True
                    if qa.on_breach is not None:
                        qa.on_breach(record)
                if audited_events is not None:
                    audited_events.append((state.name, record))
            name = pending_name[i]
            state.selections[name] = state.selections.get(name, 0) + 1
            state.pending = None
        return audited_events

    # -- fleet-facing operations --------------------------------------------

    def forecast_batch(self, names) -> dict[str, Forecast]:
        """Batched :meth:`PredictionFleet.forecast_all` for served streams.

        *names* is the fleet-ordered candidate list; streams not served
        by the engine are skipped (the fleet loops over those).
        """
        self.prepare()
        if not self._rows:
            return {}
        entries = [
            e for name in names if (e := self._entries.get(name)) is not None
        ]
        if not entries:
            return {}
        rows = np.fromiter((e.row for e in entries), dtype=np.intp,
                           count=len(entries))
        values, normalized, labels = self._forecast_rows(rows)
        out: dict[str, Forecast] = {}
        for i, entry in enumerate(entries):
            label = int(labels[i])
            out[entry.name] = Forecast(
                value=float(values[i]),
                normalized_value=float(normalized[i]),
                predictor_label=label,
                predictor_name=_POOL_NAMES[label - 1],
            )
        return out

    def ingest_batch(self, items: list) -> dict[str, int]:
        """Batched trained-stream ingest: audit, learn, schedule retrains.

        *items* is a list of ``(state, value)`` pairs for streams the
        engine serves. Returns the learned label per stream. Mirrors
        the per-stream loop in :meth:`PredictionFleet.ingest` exactly —
        every per-stream state object (QA, selections, predictor
        history, classifier memory) ends up in the identical state.
        """
        if not items:
            return {}
        fleet = self._fleet
        tracer = fleet._tel.tracer if fleet._tel is not None else None
        t0 = perf_counter() if tracer is not None else 0.0
        entries = [self._entries[state.name] for state, _ in items]
        n = len(items)
        rows = np.fromiter((e.row for e in entries), dtype=np.intp, count=n)
        sel = self._selector(rows)
        values = np.fromiter((v for _, v in items), dtype=np.float64, count=n)
        mu = self._mu[sel]
        sigma = self._sigma[sel]

        # 1. Audit the forecast that predicted this tick. Streams whose
        # pending forecast is stale (or absent) get it recomputed in one
        # batched pass, exactly like the loop's inline predictor.forecast().
        pending_norm = self._buf("pending", (n,))
        pending_name: list[str | None] = [None] * n
        stale: list[int] = []
        for i, (state, _) in enumerate(items):
            if (
                state.pending is not None
                and state.pending_at == entries[i].predictor.history_length
            ):
                pending_norm[i] = state.pending.normalized_value
                pending_name[i] = state.pending.predictor_name
            else:
                stale.append(i)
        if stale:
            stale_idx = np.asarray(stale, dtype=np.intp)
            _, stale_norm, stale_labels = self._forecast_rows(rows[stale_idx])
            pending_norm[stale_idx] = stale_norm
            for j, i in enumerate(stale):
                pending_name[i] = _POOL_NAMES[int(stale_labels[j]) - 1]
        observed_norm = self._buf("observed", (n,))
        np.subtract(values, mu, out=observed_norm)
        np.divide(observed_norm, sigma, out=observed_norm)
        if self.gather_free:
            audited_events = self._record_audits_stacked(
                items, entries, sel, rows, pending_norm, observed_norm,
                pending_name,
            )
            if audited_events is not None:
                fleet._note_audits_batch(audited_events)
        else:
            for i, (state, _) in enumerate(items):
                audit = state.qa.record(
                    float(pending_norm[i]), float(observed_norm[i])
                )
                fleet._note_audit(state.name, audit)
                name = pending_name[i]
                state.selections[name] = state.selections.get(name, 0) + 1
                state.pending = None
        if tracer is not None:
            t1 = perf_counter()
            tracer.record("tick.audit", t1 - t0, batch=n, start=t0)

        # 2. Advance histories and the stacked tail mirror.
        values_list = values.tolist()
        for i, entry in enumerate(entries):
            entry.predictor._history.append(values_list[i])
        self._shift_append(self._tails, sel, rows, values)
        if tracer is not None:
            t2 = perf_counter()
            tracer.record("tick.window_stack", t2 - t1, batch=n, start=t1)

        # 3. Label the completed windows: stacked pool errors, trailing
        # smoothed MSE argmin (chronological ring slices keep the
        # summation order of the per-stream deque stack).
        w = self._window
        z = self._buf("z", (n, w + 1))
        np.subtract(self._tails[sel], mu[:, None], out=z)
        np.divide(z, sigma[:, None], out=z)
        frames, targets = z[:, :w], z[:, w]
        ar = StackedARParams(self._ar_phi[sel], self._ar_mu[sel])
        # `sq` stays freshly allocated (not scratch): per-stream
        # `_recent_sq` deques hold views of its rows across ticks.
        errors = paper_pool_predict_all_stacked(frames, ar) - targets[:, None]
        np.multiply(errors, errors, out=errors)
        sq = errors
        L = self._smoothing
        ring = self._sqring
        self._shift_append(ring, sel, rows, sq)
        counts = np.empty(n, dtype=np.int64)
        for i, entry in enumerate(entries):
            entry.predictor._recent_sq.append(sq[i])
            entry.sq_count = min(entry.sq_count + 1, L)
            counts[i] = entry.sq_count
        sums = self._buf("sums", (n, 3))
        ring_sel = ring[sel]
        for count in np.unique(counts):
            grp = counts == count
            sums[grp] = ring_sel[grp, L - count :, :].sum(axis=1)
        labels = np.argmin(sums, axis=1).astype(np.int64) + 1
        if tracer is not None:
            t3 = perf_counter()
            tracer.record("tick.label_pool", t3 - t2, batch=n, start=t2)

        # 4. Learn: append the (feature, label) pair to each classifier
        # and mirror it into the stacked memory with one scatter.
        feats = self._features(sel, frames)
        hi = self._mem_hi[rows]
        if int((hi + 1 - self._mem_lo[rows]).max()) > self._mem_cap:
            self._grow_memory(int((hi + 1 - self._mem_lo[rows]).max()))
        slots = hi % self._mem_cap
        self._mem_x[rows, slots] = feats
        self._mem_y[rows, slots] = labels
        self._mem_abs[rows, slots] = hi
        self._mem_bb[rows, slots] = np.einsum("ij,ij->i", feats, feats)
        self._mem_hi[rows] = hi + 1
        if self.gather_free:
            bulk_learn_rows(
                [e.classifier for e in entries], feats, labels,
                [e.max_memory for e in entries],
            )
        else:
            for i, entry in enumerate(entries):
                entry.classifier._append_rows(
                    feats[i : i + 1], labels[i : i + 1]
                )
                entry.predictor._evict_if_needed()
        learned: dict[str, int] = {}
        label_list = labels.tolist()
        lo = self._mem_lo
        for i, (state, _) in enumerate(items):
            entry = entries[i]
            clf = entry.classifier
            entry.predictor._windows_learned += 1
            entry.synced_appended = clf._appended
            lo[entry.row] = clf._discarded
            learned[state.name] = label_list[i]
            state.ticks += 1
            if state.qa.retraining_due:
                fleet._schedule(state, initial=False)
        if tracer is not None:
            tracer.record(
                "tick.memory_learn", perf_counter() - t3, batch=n, start=t3
            )
        return learned
