"""The batched fleet tick engine: one tick, a handful of NumPy ops.

:class:`~repro.serving.fleet.PredictionFleet`'s original tick loop ran
every stream through its own Python call chain — per-stream
``prepare_tail``, a single-point k-NN query, a single-frame
``predict_next`` — so a fleet tick cost N interpreter round-trips and
never touched BLAS with more than one row. This engine executes the
same tick *fleet-wide*:

* the trailing windows of all trained streams live in one
  ``(n_streams, window + 1)`` matrix, rolled once per tick;
* per-stream z-score coefficients and PCA bases are stacked
  (:mod:`repro.preprocess.stacked`) so normalization is one broadcast
  and feature projection one 3-D ``matmul``;
* every stream's k-NN memory is mirrored into a padded
  ``(n_streams, capacity, d)`` tensor (ring layout by absolute row
  index) with cached squared norms, so the fleet's N single-point
  queries become one batched distance computation plus one
  deterministic top-k selection (:mod:`repro.learn.topk`);
* classifier-selected predictors are dispatched *grouped by member*
  (:mod:`repro.predictors.stacked`): LAST, AR, and SW_AVG each run once
  over all streams that selected them.

Bit-exactness contract
----------------------
The engine is an execution strategy, not a model change: for every
stream it must produce bit-identical results to the per-stream loop —
same forecasts, same selected labels, same learned memory. Every kernel
above was chosen for that property (elementwise broadcasts, row-wise
reductions, stacked ``matmul`` whose slices hit the same BLAS calls,
and a shared lexicographic top-k rule for distance ties); the parity
suite in ``tests/test_serving_engine.py`` locks it in.

Eligibility and fallback
------------------------
A trained stream is served by the engine only when its components match
what the stacked kernels cover: the paper pool (LAST/AR/SW_AVG), a
fixed-size (or disabled) PCA, and a uniform-weight
:class:`~repro.learn.knn.KNNClassifier` whose backend resolves to
``brute`` (the KD-tree path answers queries through its own traversal
order and is left per-stream). Everything else transparently falls back
to the per-stream loop, stream by stream.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.larpredictor import Forecast
from repro.core.online import OnlineLARPredictor
from repro.learn.knn import KNNClassifier
from repro.learn.topk import lexicographic_topk
from repro.learn.voting import majority_vote
from repro.predictors.stacked import (
    StackedARParams,
    ar_predict_stacked,
    is_paper_pool,
    paper_pool_predict_all_stacked,
)

__all__ = ["BatchedTickEngine"]

_POOL_NAMES = ("LAST", "AR", "SW_AVG")
_MIN_ROW_CAPACITY = 4


def _pow2_at_least(n: int) -> int:
    cap = 1
    while cap < n:
        cap *= 2
    return cap


class _Entry:
    """Engine-side bookkeeping for one attached stream."""

    __slots__ = ("name", "predictor", "classifier", "row", "generation",
                 "synced_appended", "sq_count")

    def __init__(self, name: str, predictor: OnlineLARPredictor, row: int):
        self.name = name
        self.predictor = predictor
        self.classifier = predictor._classifier
        self.row = row
        self.generation = -1
        self.synced_appended = 0
        self.sq_count = 0


class BatchedTickEngine:
    """Stacked per-stream state + batched tick kernels for one fleet.

    The engine self-synchronizes: :meth:`sync` diffs the fleet's stream
    table against its registry before every batched operation, attaching
    newly trained streams, refreshing retrained ones (the predictor
    object identity changes), and detaching removed ones. Between
    retrains it keeps its memory mirror up to date incrementally via
    the classifier's ``store_generation`` / ``appended_total_`` /
    ``discarded_total_`` counters — the common case (one appended row
    per stream per tick) is a single vectorized scatter.
    """

    def __init__(self, fleet) -> None:
        self._fleet = fleet
        cfg = fleet.config
        self._window = cfg.lar.window
        self._k = cfg.lar.k
        self._ar_order = cfg.lar.effective_ar_order
        self._smoothing = cfg.label_smoothing
        # min_variance lets each stream keep a different component
        # count, which cannot be stacked; everything else is uniform.
        self._supported = (
            cfg.lar.min_variance is None and not cfg.lar.extended_pool
        )
        self._n_features = (
            cfg.lar.n_components
            if cfg.lar.n_components is not None
            else self._window
        )
        self._entries: dict[str, _Entry] = {}
        self._rows: list[_Entry] = []
        # The ring tracks the deepest stream's live memory, not the
        # configured cap: distances are computed over every slot (dead
        # ones masked), so padding the ring to max_memory up front would
        # multiply the per-tick work while memories are still shallow.
        # _grow_memory doubles it as streams accumulate rows.
        self._mem_cap = _pow2_at_least(2 * self._k)
        self._alloc(_MIN_ROW_CAPACITY)

    # -- storage ------------------------------------------------------------

    def _alloc(self, row_cap: int) -> None:
        w, d, L = self._window, self._n_features, self._smoothing
        cap = self._mem_cap
        self._tails = np.empty((row_cap, w + 1), dtype=np.float64)
        self._mu = np.empty(row_cap, dtype=np.float64)
        self._sigma = np.empty(row_cap, dtype=np.float64)
        self._pmean = np.empty((row_cap, w), dtype=np.float64)
        self._pcomp = np.empty((row_cap, d, w), dtype=np.float64)
        self._ar_phi = np.empty((row_cap, self._ar_order), dtype=np.float64)
        self._ar_mu = np.empty(row_cap, dtype=np.float64)
        self._sqring = np.zeros((row_cap, L, 3), dtype=np.float64)
        # Dead ring slots flow through the batched distance computation
        # before being masked out, so they must hold finite values.
        self._mem_x = np.zeros((row_cap, cap, d), dtype=np.float64)
        self._mem_y = np.empty((row_cap, cap), dtype=np.int64)
        self._mem_bb = np.zeros((row_cap, cap), dtype=np.float64)
        self._mem_abs = np.full((row_cap, cap), -1, dtype=np.int64)
        self._mem_lo = np.zeros(row_cap, dtype=np.int64)
        self._mem_hi = np.zeros(row_cap, dtype=np.int64)

    def _grow_rows(self) -> None:
        old = (self._tails, self._mu, self._sigma, self._pmean, self._pcomp,
               self._ar_phi, self._ar_mu, self._sqring, self._mem_x,
               self._mem_y, self._mem_bb, self._mem_abs, self._mem_lo,
               self._mem_hi)
        n = len(self._rows)
        self._alloc(2 * self._tails.shape[0])
        new = (self._tails, self._mu, self._sigma, self._pmean, self._pcomp,
               self._ar_phi, self._ar_mu, self._sqring, self._mem_x,
               self._mem_y, self._mem_bb, self._mem_abs, self._mem_lo,
               self._mem_hi)
        for dst, src in zip(new, old):
            dst[:n] = src[:n]

    def _grow_memory(self, needed: int) -> None:
        """Widen the per-stream memory mirror; rows reload lazily."""
        self._mem_cap = _pow2_at_least(needed)
        row_cap = self._tails.shape[0]
        self._mem_x = np.zeros(
            (row_cap, self._mem_cap, self._n_features), dtype=np.float64
        )
        self._mem_y = np.empty((row_cap, self._mem_cap), dtype=np.int64)
        self._mem_bb = np.zeros((row_cap, self._mem_cap), dtype=np.float64)
        self._mem_abs = np.full((row_cap, self._mem_cap), -1, dtype=np.int64)
        for entry in self._rows:
            entry.generation = -1  # force a full reload on next sync

    # -- membership ---------------------------------------------------------

    def prepare(self) -> None:
        """Reconcile membership and memory mirrors with the fleet.

        Call once before a batched operation (or a batch of them within
        one tick); :meth:`forecast_batch` calls it itself,
        :meth:`PredictionFleet.ingest` calls it before filtering streams
        through :meth:`serves`.
        """
        self.sync()
        if self._rows:
            self._sync_memory()

    def sync(self) -> None:
        """Reconcile the registry with the fleet's current stream table."""
        if not self._supported:
            return
        states = self._fleet._streams
        stale = [
            e for e in self._rows
            if (s := states.get(e.name)) is None or s.predictor is not e.predictor
        ]
        for entry in stale:
            self._detach(entry)
        for name, state in states.items():
            if state.predictor is not None and name not in self._entries:
                self._try_attach(name, state.predictor)

    def serves(self, name: str) -> bool:
        """Whether *name* is currently served by the batched path."""
        return name in self._entries

    def _try_attach(self, name: str, predictor: OnlineLARPredictor) -> None:
        if not self._eligible(predictor):
            return
        if len(self._rows) == self._tails.shape[0]:
            self._grow_rows()
        entry = _Entry(name, predictor, len(self._rows))
        self._rows.append(entry)
        self._entries[name] = entry
        row = entry.row
        pipeline = predictor._runner.pipeline
        self._mu[row] = pipeline.normalizer.mean
        self._sigma[row] = pipeline.normalizer.std
        if pipeline.pca is not None:
            self._pmean[row] = pipeline.pca.mean_
            self._pcomp[row] = pipeline.pca.components_
        ar = predictor._runner.pool[1]
        self._ar_phi[row] = ar.coefficients_
        self._ar_mu[row] = ar.mean_
        self._tails[row] = predictor._tail(self._window + 1)
        self._sqring[row] = 0.0
        entry.sq_count = len(predictor._recent_sq)
        if entry.sq_count:
            self._sqring[row, self._smoothing - entry.sq_count :] = np.stack(
                list(predictor._recent_sq), axis=0
            )
        self._reload_memory(entry)

    def _detach(self, entry: _Entry) -> None:
        last = self._rows[-1]
        if last is not entry:
            # Swap-remove: move the last row's data into the freed slot.
            dst, src = entry.row, last.row
            for arr in (self._tails, self._mu, self._sigma, self._pmean,
                        self._pcomp, self._ar_phi, self._ar_mu, self._sqring,
                        self._mem_x, self._mem_y, self._mem_bb, self._mem_abs,
                        self._mem_lo, self._mem_hi):
                arr[dst] = arr[src]
            last.row = dst
            self._rows[dst] = last
        self._rows.pop()
        del self._entries[entry.name]

    def _eligible(self, predictor: OnlineLARPredictor) -> bool:
        clf = predictor._classifier
        if type(clf) is not KNNClassifier or clf.weights != "uniform":
            return False
        if clf._tree is not None or clf._resolve_backend() != "brute":
            return False
        pool = predictor._runner.pool
        if not is_paper_pool(pool):
            return False
        if pool[1].order != self._ar_order or pool[2].window is not None:
            return False
        pca = predictor._runner.pipeline.pca
        if pca is None:
            return self._n_features == self._window
        return pca.components_.shape == (self._n_features, self._window)

    # -- memory mirror ------------------------------------------------------

    def _reload_memory(self, entry: _Entry) -> None:
        clf = entry.classifier
        lo, hi = clf.discarded_total_, clf.appended_total_
        if hi - lo > self._mem_cap:
            self._grow_memory(hi - lo)
        row = entry.row
        abs_idx = np.arange(lo, hi, dtype=np.int64)
        slots = abs_idx % self._mem_cap
        self._mem_abs[row] = -1
        self._mem_abs[row, slots] = abs_idx
        self._mem_x[row, slots] = clf._X
        self._mem_y[row, slots] = clf._y
        self._mem_bb[row, slots] = np.einsum("ij,ij->i", clf._X, clf._X)
        self._mem_lo[row] = lo
        self._mem_hi[row] = hi
        entry.generation = clf.store_generation
        entry.synced_appended = hi

    def _sync_memory(self) -> list[_Entry]:
        """Bring every row's memory mirror up to date.

        Returns entries that stopped being batchable (e.g. the auto
        backend crossed over to the KD-tree as the memory grew); the
        caller detaches them and serves those streams per-stream.
        """
        demoted: list[_Entry] = []
        for entry in self._rows:
            clf = entry.classifier
            if clf._tree is not None or clf._resolve_backend() != "brute":
                demoted.append(entry)
                continue
            if entry.generation != clf.store_generation:
                self._reload_memory(entry)
                continue
            appended = clf.appended_total_
            if appended != entry.synced_appended:
                rows_x, rows_y, first = clf.rows_since(entry.synced_appended)
                if first + rows_x.shape[0] - clf.discarded_total_ > self._mem_cap:
                    self._grow_memory(
                        clf.appended_total_ - clf.discarded_total_
                    )
                    self._reload_memory(entry)
                    continue
                abs_idx = np.arange(
                    first, first + rows_x.shape[0], dtype=np.int64
                )
                slots = abs_idx % self._mem_cap
                row = entry.row
                self._mem_x[row, slots] = rows_x
                self._mem_y[row, slots] = rows_y
                self._mem_abs[row, slots] = abs_idx
                self._mem_bb[row, slots] = np.einsum(
                    "ij,ij->i", rows_x, rows_x
                )
                entry.synced_appended = appended
            self._mem_lo[entry.row] = clf.discarded_total_
        for entry in demoted:
            self._detach(entry)
        return demoted

    # -- batched kernels ----------------------------------------------------

    def _classify(self, rows: np.ndarray, feats: np.ndarray) -> np.ndarray:
        """Batched k-NN majority vote: one label per selected row."""
        mem_x = self._mem_x[rows]
        aa = np.einsum("ij,ij->i", feats, feats)[:, None]
        cross = np.matmul(feats[:, None, :], mem_x.transpose(0, 2, 1))[:, 0, :]
        d2 = aa + self._mem_bb[rows] - 2.0 * cross
        np.maximum(d2, 0.0, out=d2)
        mem_abs = self._mem_abs[rows]
        d2[mem_abs < self._mem_lo[rows, None]] = np.inf
        _, slots = lexicographic_topk(d2, self._k, tie_keys=mem_abs)
        neighbor_labels = np.take_along_axis(self._mem_y[rows], slots, axis=1)
        return majority_vote(neighbor_labels)

    def _features(self, rows: np.ndarray, frames: np.ndarray) -> np.ndarray:
        """Stacked PCA projection (or the frames themselves, PCA off)."""
        if self._n_features == self._window:
            return np.ascontiguousarray(frames)
        centered = frames - self._pmean[rows]
        comp_t = self._pcomp[rows].transpose(0, 2, 1)
        return np.matmul(centered[:, None, :], comp_t)[:, 0, :]

    def _pool_dispatch(
        self, rows: np.ndarray, frames: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Run each selected pool member once over its group of rows."""
        normalized = np.empty(rows.shape[0], dtype=np.float64)
        ar_rows = labels == 2
        if ar_rows.any():
            ar = StackedARParams(
                self._ar_phi[rows][ar_rows], self._ar_mu[rows][ar_rows]
            )
            normalized[ar_rows] = ar_predict_stacked(frames[ar_rows], ar)
        last_rows = labels == 1
        if last_rows.any():
            normalized[last_rows] = frames[last_rows][:, -1]
        sw_rows = labels == 3
        if sw_rows.any():
            normalized[sw_rows] = frames[sw_rows].mean(axis=1)
        return normalized

    def _forecast_rows(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(values, normalized values, labels) for the selected rows."""
        tel = self._fleet._tel
        if tel is not None:
            return self._forecast_rows_traced(rows, tel.tracer)
        mu = self._mu[rows]
        sigma = self._sigma[rows]
        frames = (self._tails[rows, 1:] - mu[:, None]) / sigma[:, None]
        feats = self._features(rows, frames)
        labels = self._classify(rows, feats)
        normalized = self._pool_dispatch(rows, frames, labels)
        values = normalized * sigma + mu
        return values, normalized, labels

    def _forecast_rows_traced(
        self, rows: np.ndarray, tracer
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`_forecast_rows` with per-phase tracing spans."""
        n = rows.shape[0]
        mu = self._mu[rows]
        sigma = self._sigma[rows]
        with tracer.span("tick.zscore", batch=n):
            frames = (self._tails[rows, 1:] - mu[:, None]) / sigma[:, None]
        with tracer.span("tick.pca_project", batch=n):
            feats = self._features(rows, frames)
        with tracer.span("tick.knn_query", batch=n):
            labels = self._classify(rows, feats)
        with tracer.span("tick.pool_dispatch", batch=n):
            normalized = self._pool_dispatch(rows, frames, labels)
        values = normalized * sigma + mu
        return values, normalized, labels

    # -- fleet-facing operations --------------------------------------------

    def forecast_batch(self, names) -> dict[str, Forecast]:
        """Batched :meth:`PredictionFleet.forecast_all` for served streams.

        *names* is the fleet-ordered candidate list; streams not served
        by the engine are skipped (the fleet loops over those).
        """
        self.prepare()
        if not self._rows:
            return {}
        entries = [
            e for name in names if (e := self._entries.get(name)) is not None
        ]
        if not entries:
            return {}
        rows = np.fromiter((e.row for e in entries), dtype=np.intp,
                           count=len(entries))
        values, normalized, labels = self._forecast_rows(rows)
        out: dict[str, Forecast] = {}
        for i, entry in enumerate(entries):
            label = int(labels[i])
            out[entry.name] = Forecast(
                value=float(values[i]),
                normalized_value=float(normalized[i]),
                predictor_label=label,
                predictor_name=_POOL_NAMES[label - 1],
            )
        return out

    def ingest_batch(self, items: list) -> dict[str, int]:
        """Batched trained-stream ingest: audit, learn, schedule retrains.

        *items* is a list of ``(state, value)`` pairs for streams the
        engine serves. Returns the learned label per stream. Mirrors
        the per-stream loop in :meth:`PredictionFleet.ingest` exactly —
        every per-stream state object (QA, selections, predictor
        history, classifier memory) ends up in the identical state.
        """
        if not items:
            return {}
        fleet = self._fleet
        tracer = fleet._tel.tracer if fleet._tel is not None else None
        t0 = perf_counter() if tracer is not None else 0.0
        entries = [self._entries[state.name] for state, _ in items]
        rows = np.fromiter((e.row for e in entries), dtype=np.intp,
                           count=len(entries))
        values = np.fromiter((v for _, v in items), dtype=np.float64,
                             count=len(items))
        mu = self._mu[rows]
        sigma = self._sigma[rows]

        # 1. Audit the forecast that predicted this tick. Streams whose
        # pending forecast is stale (or absent) get it recomputed in one
        # batched pass, exactly like the loop's inline predictor.forecast().
        pending_norm = np.empty(len(items), dtype=np.float64)
        pending_name: list[str | None] = [None] * len(items)
        stale: list[int] = []
        for i, (state, _) in enumerate(items):
            if (
                state.pending is not None
                and state.pending_at == entries[i].predictor.history_length
            ):
                pending_norm[i] = state.pending.normalized_value
                pending_name[i] = state.pending.predictor_name
            else:
                stale.append(i)
        if stale:
            stale_idx = np.asarray(stale, dtype=np.intp)
            _, normalized, labels = self._forecast_rows(rows[stale_idx])
            pending_norm[stale_idx] = normalized
            for j, i in enumerate(stale):
                pending_name[i] = _POOL_NAMES[int(labels[j]) - 1]
        observed_norm = (values - mu) / sigma
        for i, (state, _) in enumerate(items):
            audit = state.qa.record(
                float(pending_norm[i]), float(observed_norm[i])
            )
            fleet._note_audit(state.name, audit)
            name = pending_name[i]
            state.selections[name] = state.selections.get(name, 0) + 1
            fleet._note_selection(state.name, name)
            state.pending = None
        if tracer is not None:
            t1 = perf_counter()
            tracer.record("tick.audit", t1 - t0, batch=len(items))

        # 2. Advance histories and the stacked tail mirror.
        for i, entry in enumerate(entries):
            entry.predictor._history.append(float(values[i]))
        tails = self._tails
        tails[rows, :-1] = tails[rows, 1:]
        tails[rows, -1] = values
        if tracer is not None:
            t2 = perf_counter()
            tracer.record("tick.window_stack", t2 - t1, batch=len(items))

        # 3. Label the completed windows: stacked pool errors, trailing
        # smoothed MSE argmin (chronological ring slices keep the
        # summation order of the per-stream deque stack).
        w = self._window
        z = (tails[rows] - mu[:, None]) / sigma[:, None]
        frames, targets = z[:, :w], z[:, w]
        ar = StackedARParams(self._ar_phi[rows], self._ar_mu[rows])
        errors = paper_pool_predict_all_stacked(frames, ar) - targets[:, None]
        sq = errors * errors
        L = self._smoothing
        ring = self._sqring
        ring[rows, :-1] = ring[rows, 1:]
        ring[rows, -1] = sq
        counts = np.empty(len(entries), dtype=np.int64)
        for i, entry in enumerate(entries):
            entry.predictor._recent_sq.append(sq[i])
            entry.sq_count = min(entry.sq_count + 1, L)
            counts[i] = entry.sq_count
        sums = np.empty((len(entries), 3), dtype=np.float64)
        for count in np.unique(counts):
            sel = counts == count
            sums[sel] = ring[rows[sel], L - count :, :].sum(axis=1)
        labels = np.argmin(sums, axis=1).astype(np.int64) + 1
        if tracer is not None:
            t3 = perf_counter()
            tracer.record("tick.label_pool", t3 - t2, batch=len(items))

        # 4. Learn: append the (feature, label) pair to each classifier
        # and mirror it into the stacked memory with one scatter.
        feats = self._features(rows, frames)
        hi = self._mem_hi[rows]
        if int((hi + 1 - self._mem_lo[rows]).max()) > self._mem_cap:
            self._grow_memory(int((hi + 1 - self._mem_lo[rows]).max()))
        slots = hi % self._mem_cap
        self._mem_x[rows, slots] = feats
        self._mem_y[rows, slots] = labels
        self._mem_abs[rows, slots] = hi
        self._mem_bb[rows, slots] = np.einsum("ij,ij->i", feats, feats)
        self._mem_hi[rows] = hi + 1
        learned: dict[str, int] = {}
        lo = self._mem_lo
        for i, (state, _) in enumerate(items):
            entry = entries[i]
            predictor = entry.predictor
            clf = entry.classifier
            clf._append_rows(feats[i : i + 1], labels[i : i + 1])
            predictor._windows_learned += 1
            predictor._evict_if_needed()
            entry.synced_appended = clf.appended_total_
            lo[entry.row] = clf.discarded_total_
            learned[state.name] = int(labels[i])
            state.ticks += 1
            if state.qa.retraining_due:
                fleet._schedule(state, initial=False)
        if tracer is not None:
            tracer.record(
                "tick.memory_learn", perf_counter() - t3, batch=len(items)
            )
        return learned
