"""Multi-stream prediction fleet: concurrent online serving.

The paper evaluates the LARPredictor one trace at a time; a production
deployment (an NWS-style monitoring service, a VM farm, a network of
devices) serves *many* resource streams at once, each with its own
lightweight model. :class:`PredictionFleet` composes the per-stream
pieces the repo already has — one
:class:`~repro.core.online.OnlineLARPredictor` plus one
:class:`~repro.core.qa.PredictionQualityAssuror` per stream — into that
serving layer:

* **Batched APIs** — :meth:`PredictionFleet.ingest` takes one
  ``{stream: value}`` dict per tick and :meth:`PredictionFleet.forecast_all`
  returns every stream's next-value forecast, so callers make one call
  per tick instead of N.
* **Lazy training** — a new stream buffers raw values until
  ``min_train`` of them exist, then trains on first use; before that it
  simply has no forecast yet.
* **QA-driven retraining, out of band** — every ingested observation is
  audited against the forecast that predicted it; streams whose audit
  window breaches the threshold are *scheduled* and retrained together.
  Eligible configurations run the whole burst through the
  :class:`~repro.serving.trainer.BatchedTrainEngine` (one stacked
  training computation for all due streams, bit-identical to the
  per-stream path); others fall back to a
  :func:`repro.parallel.parallel_map` burst across cores.
* **Retrain budgeting** — ``max_retrains_per_tick`` caps how many
  scheduled (re)trains any single :meth:`ingest` call pays for; the
  rest stay queued oldest-breach-first and keep serving their current
  model, so a fleet-wide drift storm never stalls one tick.
* **Metrics** — :meth:`PredictionFleet.metrics` snapshots per-stream
  rolling MSE, the selected-predictor histogram, retrain counts, and
  memory sizes.
* **Telemetry** — construct with ``telemetry=True`` (or a
  :class:`~repro.obs.Telemetry` instance) and the serving stack
  reports itself: fleet-level counters/gauges, phase-level tracing
  spans through both batched engines and the per-stream fallbacks, and
  a bounded structured event log of QA audits, breaches, retrain
  orders/completions/deferrals, and stream lifecycle. Disabled (the
  default), every hook sits behind one attribute check.
* **Persistence** — :meth:`PredictionFleet.save` /
  :meth:`PredictionFleet.load` round-trip the whole fleet (see
  :mod:`repro.serving.persistence`), so a restored service resumes with
  the exact forecasts the original would have produced.
"""

from __future__ import annotations

import functools
from collections import deque
from collections.abc import Iterable, Mapping
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.core.config import LARConfig
from repro.core.larpredictor import Forecast
from repro.core.online import OnlineLARPredictor, RelabelResult
from repro.core.qa import AuditRecord, PredictionQualityAssuror
from repro.exceptions import ConfigurationError, NotFittedError
from repro.experiments.report import format_table
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.parallel.pool_exec import ParallelConfig, parallel_map
from repro.serving.engine import BatchedTickEngine
from repro.serving.label_cache import (
    LabelCache,
    config_fingerprint,
    params_fingerprint,
)
from repro.serving.trainer import DEFAULT_MIN_SHARD_STREAMS, BatchedTrainEngine

__all__ = ["FleetConfig", "PredictionFleet", "FleetMetrics", "StreamMetrics"]


@dataclass(frozen=True)
class FleetConfig:
    """Policy shared by every stream of a :class:`PredictionFleet`.

    Attributes
    ----------
    lar:
        Per-stream pipeline configuration (paper defaults).
    min_train:
        Raw values a stream buffers before its model is trained; must be
        at least ``lar.window + max(lar.k, 2)`` so training yields enough
        (frame, label) pairs to fit the k-NN selector.
    label_smoothing:
        Trailing window of the online labelling rule.
    max_memory:
        Per-stream cap on stored k-NN windows (``None`` = unbounded).
        Serving many long-running streams, a cap keeps both memory and
        query cost flat.
    history_limit:
        Per-stream cap on stored raw values (``None`` = unbounded).
    qa_threshold:
        Normalized-MSE retraining threshold (1.0 == mean predictor).
    audit_window / audit_interval:
        The QA's audit geometry (see
        :class:`~repro.core.qa.PredictionQualityAssuror`).
    retrain_window:
        History tail a QA-ordered retrain refits on (``None`` = all
        stored history).
    min_relabel_overlap:
        QA-ordered retrains whose new window overlaps the window the
        stream's parameters were fitted on by at least this fraction
        run as *incremental relabels*: the normalizer, AR fit, and PCA
        basis stay frozen (the same freeze contract
        :meth:`~repro.core.online.OnlineLARPredictor.observe` relies
        on between retrains) and only the window products — labels and
        classifier memory — are rebuilt. Below the threshold (the
        window has drifted too far from the fit) the retrain is a full
        cold refit. ``None`` disables incremental relabelling entirely:
        every retrain refits everything, the pre-1.4 behavior.
    label_cache:
        Keep each stream's labelling products between incremental
        relabels so an overlapping window only computes the new suffix
        and the smoothing boundary (see
        :mod:`repro.serving.label_cache`). A pure execution
        accelerator: spliced relabels are bit-identical to full ones,
        so disabling it (``repro fleet --no-label-cache``) changes
        speed, never output.
    auto_retrain:
        Run scheduled (re)trains at the end of each :meth:`ingest` call.
        ``False`` leaves them pending until
        :meth:`PredictionFleet.run_pending_retrains` — the mode for
        callers that want to control when training cost is paid.
    retrain_mode:
        ``"sync"`` (the default) runs each retrain burst to completion
        inside :meth:`PredictionFleet.run_pending_retrains` — the tick
        that triggers a drift storm pays for the whole burst.
        ``"async"`` dispatches bursts to the persistent worker pool as
        futures and returns immediately; each subsequent tick boundary
        integrates whatever finished, replaying the in-flight ticks so
        the swapped-in model is bit-identical to one trained
        synchronously at the submission tick and served since (see
        :mod:`repro.serving.async_trainer`).
    max_inflight_retrains:
        Cap on streams concurrently training in flight in ``"async"``
        mode (``None`` = unlimited). Streams over the cap simply stay
        queued — unlike the ``max_retrains_per_tick`` budget they are
        not counted or narrated as deferrals, because nothing was
        skipped: they are next in line as slots free up.
    max_integrations_per_tick:
        Cap on how many landed bursts a single ``"async"`` tick
        boundary assembles and integrates (``None`` = all of them).
        Bounds the worst-case drain cost when a storm's futures finish
        together; deferred bursts stay queued and integrate on later
        ticks — their streams just replay a few more values, and the
        result is still bit-identical. Flush paths
        (:meth:`PredictionFleet.drain_retrains` with ``wait=True``,
        :meth:`PredictionFleet.save`) ignore the cap.
    max_retrains_per_tick:
        Budget on how many scheduled (re)trains a single
        :meth:`PredictionFleet.run_pending_retrains` call processes
        (``None`` = unlimited). Due streams are served
        oldest-breach-first; streams over budget stay queued with their
        current model still serving, so one ingest call is never blocked
        on more than the budgeted trainings.
    parallel:
        Execution policy for the ``parallel_map`` fallback of the
        out-of-band training burst (eligible configurations train
        batched in-process instead; see
        :class:`~repro.serving.trainer.BatchedTrainEngine`).
    train_shards:
        Worker-process cap for row-sharded training bursts (``None``,
        the default, keeps every burst single-process). Big drift
        storms split each equal-length group across a persistent pool
        through shared-memory arenas — bit-identical output, see the
        sharding section of :mod:`repro.serving.trainer`.
    shard_min_streams:
        Burst groups below this many streams stay single-process even
        with ``train_shards`` set — the fork-dispatch and arena
        round-trip only pay for themselves on big bursts.
    """

    lar: LARConfig = field(default_factory=LARConfig)
    min_train: int = 64
    label_smoothing: int = 10
    max_memory: int | None = 512
    history_limit: int | None = 1024
    qa_threshold: float = 2.0
    audit_window: int = 32
    audit_interval: int = 8
    retrain_window: int | None = 256
    min_relabel_overlap: float | None = 0.5
    label_cache: bool = True
    auto_retrain: bool = True
    retrain_mode: str = "sync"
    max_inflight_retrains: int | None = None
    max_integrations_per_tick: int | None = None
    max_retrains_per_tick: int | None = None
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    train_shards: int | None = None
    shard_min_streams: int = DEFAULT_MIN_SHARD_STREAMS

    def __post_init__(self) -> None:
        # A series of length L yields L - window training pairs, and the
        # k-NN selector needs at least k of them to fit.
        floor = self.lar.window + max(self.lar.k, 2)
        if not isinstance(self.min_train, int) or self.min_train < floor:
            raise ConfigurationError(
                f"min_train must be an integer >= window + max(k, 2) "
                f"({floor}), got {self.min_train!r}"
            )
        if self.history_limit is not None and self.history_limit < self.min_train:
            raise ConfigurationError(
                f"history_limit ({self.history_limit}) must be >= "
                f"min_train ({self.min_train}); streams could never train"
            )
        if self.retrain_window is not None and self.retrain_window < floor:
            raise ConfigurationError(
                f"retrain_window must be >= window + max(k, 2) ({floor}), "
                f"got {self.retrain_window}"
            )
        if self.min_relabel_overlap is not None and not (
            0.0 < self.min_relabel_overlap <= 1.0
        ):
            raise ConfigurationError(
                f"min_relabel_overlap must be in (0, 1] or None, "
                f"got {self.min_relabel_overlap!r}"
            )
        if self.qa_threshold <= 0.0:
            raise ConfigurationError(
                f"qa_threshold must be positive, got {self.qa_threshold}"
            )
        if self.max_retrains_per_tick is not None and (
            not isinstance(self.max_retrains_per_tick, int)
            or self.max_retrains_per_tick < 1
        ):
            raise ConfigurationError(
                f"max_retrains_per_tick must be a positive integer or None, "
                f"got {self.max_retrains_per_tick!r}"
            )
        if self.retrain_mode not in ("sync", "async"):
            raise ConfigurationError(
                f"retrain_mode must be 'sync' or 'async', "
                f"got {self.retrain_mode!r}"
            )
        if self.max_inflight_retrains is not None and (
            not isinstance(self.max_inflight_retrains, int)
            or self.max_inflight_retrains < 1
        ):
            raise ConfigurationError(
                f"max_inflight_retrains must be a positive integer or None, "
                f"got {self.max_inflight_retrains!r}"
            )
        if self.max_integrations_per_tick is not None and (
            not isinstance(self.max_integrations_per_tick, int)
            or self.max_integrations_per_tick < 1
        ):
            raise ConfigurationError(
                f"max_integrations_per_tick must be a positive integer or "
                f"None, got {self.max_integrations_per_tick!r}"
            )
        if self.train_shards is not None and (
            not isinstance(self.train_shards, int) or self.train_shards < 1
        ):
            raise ConfigurationError(
                f"train_shards must be a positive integer or None, "
                f"got {self.train_shards!r}"
            )
        if not isinstance(self.shard_min_streams, int) or self.shard_min_streams < 1:
            raise ConfigurationError(
                f"shard_min_streams must be a positive integer, "
                f"got {self.shard_min_streams!r}"
            )


@dataclass(frozen=True)
class StreamMetrics:
    """Snapshot of one stream's serving state."""

    name: str
    ticks: int
    trained: bool
    history_length: int
    memory_size: int
    windows_learned: int
    retrain_count: int
    rolling_mse: float
    audits: int
    breaches: int
    selections: dict[str, int]


@dataclass(frozen=True)
class FleetMetrics:
    """Fleet-level snapshot: per-stream rows plus aggregates.

    ``deferred_retrains`` counts the budget scheduler's deferral
    decisions over the fleet's lifetime (every time a due stream was
    passed over by a budgeted retrain round) — distinct from
    ``pending_retrains``, the streams currently queued. ``telemetry``
    embeds the registry aggregates when the fleet runs with telemetry
    enabled (``None`` otherwise).
    """

    streams: tuple[StreamMetrics, ...]
    n_streams: int
    n_trained: int
    total_ticks: int
    total_retrains: int
    pending_retrains: int
    deferred_retrains: int
    selections: dict[str, int]
    telemetry: dict | None = None
    inflight_retrains: int = 0

    def render(self, *, max_rows: int = 20) -> str:
        """Fixed-width text report (truncated to *max_rows* streams)."""
        rows = [
            [
                m.name,
                m.ticks,
                "yes" if m.trained else "no",
                m.memory_size,
                m.retrain_count,
                m.audits,
                m.breaches,
                m.rolling_mse,
                "/".join(f"{k}:{v}" for k, v in sorted(m.selections.items()))
                or "-",
            ]
            for m in self.streams[:max_rows]
        ]
        table = format_table(
            ["stream", "ticks", "trained", "memory", "retrains",
             "audits", "breaches", "rolling MSE", "selections"],
            rows,
            title=(
                f"Fleet: {self.n_streams} streams, {self.n_trained} trained, "
                f"{self.total_retrains} retrains, "
                f"{self.pending_retrains} pending, "
                f"{self.deferred_retrains} deferred, "
                f"{self.inflight_retrains} in flight"
            ),
        )
        if len(self.streams) > max_rows:
            table += f"\n... ({len(self.streams) - max_rows} more streams)"
        return table

    def as_dict(self) -> dict:
        """JSON-safe dump (the ``--stats-out`` document body)."""
        return {
            "n_streams": self.n_streams,
            "n_trained": self.n_trained,
            "total_ticks": self.total_ticks,
            "total_retrains": self.total_retrains,
            "pending_retrains": self.pending_retrains,
            "deferred_retrains": self.deferred_retrains,
            "inflight_retrains": self.inflight_retrains,
            "selections": dict(self.selections),
            "streams": [
                {
                    "name": m.name,
                    "ticks": m.ticks,
                    "trained": m.trained,
                    "history_length": m.history_length,
                    "memory_size": m.memory_size,
                    "windows_learned": m.windows_learned,
                    "retrain_count": m.retrain_count,
                    "rolling_mse": m.rolling_mse,
                    "audits": m.audits,
                    "breaches": m.breaches,
                    "selections": dict(m.selections),
                }
                for m in self.streams
            ],
            "telemetry": self.telemetry,
        }


class _StreamState:
    """Mutable per-stream serving state (internal)."""

    __slots__ = (
        "name", "buffer", "predictor", "qa", "pending", "pending_at",
        "ticks", "retrain_count", "selections", "train_due", "retrain_due",
        "due_at", "params_window", "epoch",
    )

    def __init__(self, name: str, config: FleetConfig):
        self.name = name
        self.buffer: deque[float] = deque(maxlen=config.history_limit)
        self.predictor: OnlineLARPredictor | None = None
        self.qa = PredictionQualityAssuror(
            config.qa_threshold,
            audit_window=config.audit_window,
            audit_interval=config.audit_interval,
        )
        self.pending: Forecast | None = None
        self.pending_at = -1
        self.ticks = 0
        self.retrain_count = 0
        self.selections: dict[str, int] = {}
        self.train_due = False
        self.retrain_due = False
        # Ingest-tick sequence number at which this stream first became
        # due; orders the retrain queue oldest-breach-first.
        self.due_at = 0
        # (absolute start, length) of the history window the current
        # predictor's parameters were cold-fitted on — the reference
        # the incremental-relabel overlap policy measures against.
        # None until the first cold fit (and for fleets restored from
        # pre-1.4 manifests, which therefore always refit cold).
        self.params_window: tuple[int, int] | None = None
        # Fleet-unique model generation stamp, advanced on every
        # predictor swap (and at registration, so a removed-then-readded
        # name never matches). An asynchronous burst records it at
        # submission; a drained result whose stream moved on — swapped
        # models or was replaced under the same name — is stale and
        # dropped instead of integrated.
        self.epoch = 0


def _train_stream(shared, history) -> OnlineLARPredictor:
    """Train one stream's model from its history (process-pool worker).

    *shared* is the fleet-wide ``(lar, label_smoothing, max_memory,
    history_limit)`` tuple; bound once with :func:`functools.partial` it
    is pickled once per burst instead of once per due stream.
    """
    config, label_smoothing, max_memory, history_limit = shared
    return OnlineLARPredictor(
        config,
        label_smoothing=label_smoothing,
        max_memory=max_memory,
        history_limit=history_limit,
    ).train(history)


class _BurstPlan(NamedTuple):
    """One retrain round's partitioned work (see ``_partition_due``).

    Self-contained: histories and cache tails are snapshotted, so the
    plan outlives the tick that built it — the property the
    asynchronous pipeline rests on.
    """

    cold_names: list
    cold_histories: list
    inc_names: list
    inc_tasks: list
    windows: dict
    miss_reasons: dict
    params_fps: dict


class _FleetInstruments:
    """Fleet-level instruments, bound once so hooks skip registry lookups."""

    __slots__ = (
        "ticks", "observations", "forecasts", "audits", "breaches",
        "trains", "retrains", "deferrals", "streams", "trained", "pending",
        "inflight", "cache_hits", "cache_misses", "cache_spliced",
    )

    def __init__(self, registry):
        self.ticks = registry.counter(
            "repro_fleet_ticks_total", "Ingest calls processed."
        )
        self.observations = registry.counter(
            "repro_fleet_observations_total", "Stream values ingested."
        )
        self.forecasts = registry.counter(
            "repro_fleet_forecasts_total", "Per-stream forecasts served."
        )
        self.audits = registry.counter(
            "repro_fleet_qa_audits_total", "QA audits run across the fleet."
        )
        self.breaches = registry.counter(
            "repro_fleet_qa_breaches_total",
            "QA audits that breached the retraining threshold.",
        )
        self.trains = registry.counter(
            "repro_fleet_trains_total", "Initial trainings completed."
        )
        self.retrains = registry.counter(
            "repro_fleet_retrains_total", "QA-ordered retrainings completed."
        )
        self.deferrals = registry.counter(
            "repro_fleet_retrain_deferrals_total",
            "Times the retrain budget passed over a due stream.",
        )
        self.cache_hits = registry.counter(
            "repro_fleet_label_cache_hits_total",
            "Incremental relabels that spliced cached label rows.",
        )
        self.cache_misses = registry.counter(
            "repro_fleet_label_cache_misses_total",
            "Incremental relabels that relabelled their full window.",
        )
        self.cache_spliced = registry.counter(
            "repro_fleet_label_cache_spliced_frames_total",
            "Cached pool-error frame rows spliced into relabels.",
        )
        self.streams = registry.gauge(
            "repro_fleet_streams", "Registered streams."
        )
        self.trained = registry.gauge(
            "repro_fleet_trained_streams", "Streams past warm-up."
        )
        self.pending = registry.gauge(
            "repro_fleet_pending_retrains",
            "Streams currently scheduled for (re)training.",
        )
        self.inflight = registry.gauge(
            "repro_fleet_retrains_inflight",
            "Streams whose retrain burst is currently running in flight.",
        )


class PredictionFleet:
    """N named streams, one lightweight adaptive predictor each.

    Parameters
    ----------
    config:
        Shared per-stream policy; default :class:`FleetConfig`.
    streams:
        Stream names to register immediately (more can be added and
        removed at any time).
    telemetry:
        ``True`` builds a fresh :class:`~repro.obs.Telemetry`; a
        :class:`~repro.obs.Telemetry` instance is used as given (pass
        one to share a registry across fleets, or
        ``Telemetry.disabled()`` to exercise the null implementation);
        ``None``/``False`` (the default) turns instrumentation off —
        the hot loops then skip every hook behind one attribute check.
    flight_dir:
        Directory for anomaly flight dumps. Setting it implies
        telemetry (a fresh :class:`~repro.obs.Telemetry` is built if
        none was given), attaches a flight recorder to the tracer, and
        arms an :class:`~repro.obs.AnomalyTrigger` that snapshots the
        recorder there on QA-breach storms, phase-latency spikes, and
        broken worker pools (see :attr:`anomaly_trigger`).

    Usage
    -----
    >>> fleet = PredictionFleet(streams=["vm1.cpu", "vm1.net"])  # doctest: +SKIP
    >>> for tick in feed:                                        # doctest: +SKIP
    ...     forecasts = fleet.forecast_all()
    ...     fleet.ingest(tick)   # audits forecasts, learns, schedules retrains
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        *,
        streams: Iterable[str] = (),
        telemetry: "Telemetry | bool | None" = None,
        flight_dir=None,
    ):
        self.config = config if config is not None else FleetConfig()
        self._streams: dict[str, _StreamState] = {}
        # Created lazily so persistence round-trips and pickling never
        # depend on the engine's internal tensors.
        self._engine: "BatchedTickEngine | None" = None
        self._train_engine: "BatchedTrainEngine | None" = None
        # Per-stream labelling tails for incremental relabels, plus the
        # labelling-config fingerprint every lookup is keyed under.
        self._label_cache = LabelCache()
        self._config_fp = config_fingerprint(self.config)
        # Monotonic ingest-tick counter; stamps when streams become due.
        self._due_seq = 0
        # Live count of due streams, so the per-tick retrain check
        # costs one comparison instead of an O(S) scan + sort when
        # nothing is due (the overwhelmingly common tick).
        self._due_count = 0
        # Model generation clock for _StreamState.epoch stamps.
        self._epoch_seq = 0
        # The asynchronous retrain pipeline, created lazily on the
        # first async-mode run_pending_retrains call.
        self._async = None
        # Lifetime count of budget deferrals (kept telemetry or not —
        # FleetMetrics reports it either way).
        self._deferred_total = 0
        # Selection counters are settled lazily: the tick paths bump
        # plain dicts (``state.selections``) and a registry collector
        # (:meth:`_flush_selections`) derives labelled-counter deltas
        # whenever the registry is read. ``_sel_counters`` caches the
        # counter children, ``_sel_flushed`` the per-key high-water
        # count already pushed into them.
        self._sel_counters: dict[tuple[str, str], object] = {}
        self._sel_flushed: dict[tuple[str, str], int] = {}
        # None when telemetry is off: hooks are `if self._tel is not
        # None` so the disabled cost is one attribute load and a branch.
        if telemetry is None or telemetry is False:
            self._tel = None
        elif telemetry is True:
            self._tel = Telemetry()
        else:
            self._tel = telemetry
        # QA breaches seen during the current ingest tick — the anomaly
        # trigger's storm signal (only counted with telemetry on).
        self._breaches_this_tick = 0
        self._trigger = None
        if flight_dir is not None:
            if self._tel is None:
                self._tel = Telemetry()
            self._tel.enable_flight()
            from repro.obs import AnomalyTrigger

            self._trigger = AnomalyTrigger(flight_dir, self._tel)
        self._m = (
            _FleetInstruments(self._tel.registry)
            if self._tel is not None
            else None
        )
        if self._tel is not None:
            self._tel.registry.add_collector(self._flush_selections)
        for name in streams:
            self.add_stream(name)

    @property
    def anomaly_trigger(self):
        """The armed :class:`~repro.obs.AnomalyTrigger`, or ``None``."""
        return self._trigger

    def close(self) -> None:
        """Disarm the anomaly trigger, if one was armed (idempotent)."""
        if self._trigger is not None:
            self._trigger.close()

    # -- stream lifecycle ---------------------------------------------------

    @property
    def telemetry(self) -> Telemetry:
        """The fleet's telemetry (the shared null object when disabled)."""
        return self._tel if self._tel is not None else NULL_TELEMETRY

    @property
    def stream_names(self) -> tuple[str, ...]:
        """Registered stream names in insertion order."""
        return tuple(self._streams)

    def __len__(self) -> int:
        return len(self._streams)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def add_stream(self, name: str) -> "PredictionFleet":
        """Register a new (cold) stream."""
        if not isinstance(name, str) or not name:
            raise ConfigurationError(
                f"stream name must be a non-empty string, got {name!r}"
            )
        if name in self._streams:
            raise ConfigurationError(f"stream {name!r} already exists")
        state = _StreamState(name, self.config)
        state.epoch = self._next_epoch()
        self._streams[name] = state
        if self._tel is not None:
            self._m.streams.set(len(self._streams))
            self._tel.events.emit(
                "stream_add", tick=self._due_seq, stream=name
            )
        return self

    def remove_stream(self, name: str) -> "PredictionFleet":
        """Drop a stream and its model.

        A retrain in flight for the stream keeps running — its result is
        recognized as stale and dropped at the next drain.
        """
        state = self._require_stream(name)
        self._clear_due(state)
        # Settle any unflushed selections while the state still exists.
        # The registry keeps the stream's selection series (scrapes stay
        # monotone); only the local caches are pruned.
        self._flush_selections()
        del self._streams[name]
        self._label_cache.drop(name)
        for key in [k for k in self._sel_counters if k[0] == name]:
            del self._sel_counters[key]
            self._sel_flushed.pop(key, None)
        if self._tel is not None:
            self._m.streams.set(len(self._streams))
            self._tel.events.emit(
                "stream_remove", tick=self._due_seq, stream=name
            )
        return self

    def is_trained(self, name: str) -> bool:
        """Whether *name*'s model exists (its warm-up has completed)."""
        return self._require_stream(name).predictor is not None

    # -- batched serving ----------------------------------------------------

    def ingest(
        self, values: Mapping[str, float], *, batched: bool = True
    ) -> dict[str, int | None]:
        """Ingest one tick of measurements — the fleet's write path.

        For each ``(stream, value)``: audit the forecast that predicted
        this value with the stream's QA (computing it on the spot if the
        caller skipped :meth:`forecast_all`), learn from the completed
        window, and schedule a retrain if the QA latched a breach.
        Streams still warming up just buffer the value, training lazily
        once ``min_train`` values exist.

        With ``batched=True`` (the default), trained streams served by
        the :class:`~repro.serving.engine.BatchedTickEngine` are
        processed fleet-wide in a handful of NumPy ops; the result is
        bit-identical to the per-stream loop (``batched=False``), which
        remains both the fallback for ineligible streams and the parity
        reference.

        Returns the online label learned per stream (``None`` while a
        stream is warming up). The whole batch is validated before any
        stream is touched.
        """
        clean: dict[str, float] = {}
        for name, value in values.items():
            self._require_stream(name)
            value = float(value)
            if not np.isfinite(value):
                raise ConfigurationError(
                    f"value for stream {name!r} must be finite, got {value}"
                )
            clean[name] = value

        # One tick of the due-stamp clock per ingest call: every stream
        # that first becomes due during this call shares the same stamp,
        # so batched and per-stream processing order the queue alike.
        self._due_seq += 1
        tel = self._tel
        if tel is not None:
            self._m.ticks.inc()
            self._m.observations.inc(len(clean))
            if tel.flight is not None:
                tel.flight.set_tick(self._due_seq)
            self._breaches_this_tick = 0

        batch_learned: dict[str, int] = {}
        if batched:
            engine = self._get_engine()
            engine.prepare()
            batch_items = [
                (self._streams[name], value)
                for name, value in clean.items()
                if self._streams[name].predictor is not None
                and engine.serves(name)
            ]
            batch_learned = engine.ingest_batch(batch_items)

        loop_n = len(clean) - len(batch_learned)
        if tel is not None and loop_n:
            with tel.tracer.span("tick.per_stream_loop", batch=loop_n):
                learned = self._ingest_per_stream(clean, batch_learned)
        else:
            learned = self._ingest_per_stream(clean, batch_learned)

        if self._trigger is not None and self._breaches_this_tick:
            self._trigger.note_breaches(
                self._breaches_this_tick, tick=self._due_seq
            )

        # Streams with a retrain in flight served this tick on their old
        # model; record the value so the drained model replays it —
        # before any drain below, which must see this tick's values.
        if self._async is not None and self._async.inflight:
            self._async.note_values(clean)

        if self.config.auto_retrain:
            self.run_pending_retrains(batched=batched)
        return learned

    def _ingest_per_stream(
        self, clean: dict[str, float], batch_learned: dict[str, int]
    ) -> dict[str, int | None]:
        """The per-stream tick loop: warm-up buffering plus the fallback
        serve path for streams the batched engine does not cover."""
        learned: dict[str, int | None] = {}
        for name, value in clean.items():
            if name in batch_learned:
                learned[name] = batch_learned[name]
                continue
            state = self._streams[name]
            if state.predictor is None:
                state.buffer.append(value)
                state.ticks += 1
                if len(state.buffer) >= self.config.min_train:
                    self._schedule(state, initial=True)
                learned[name] = None
                continue
            predictor = state.predictor
            if (
                state.pending is not None
                and state.pending_at == predictor.history_length
            ):
                fc = state.pending
            else:
                fc = predictor.forecast()
            normalizer = predictor._runner.pipeline.normalizer
            audit = state.qa.record(
                fc.normalized_value, normalizer.transform_value(value)
            )
            self._note_audit(name, audit)
            state.selections[fc.predictor_name] = (
                state.selections.get(fc.predictor_name, 0) + 1
            )
            state.pending = None
            learned[name] = predictor.observe(value)
            state.ticks += 1
            if state.qa.retraining_due:
                self._schedule(state, initial=False)
        return learned

    def forecast_all(
        self, names: Iterable[str] | None = None, *, batched: bool = True
    ) -> dict[str, Forecast]:
        """Next-value forecasts for every trained stream — the read path.

        Streams still warming up are silently omitted (they have no
        model yet); pass *names* to restrict to a subset. Each forecast
        is remembered so the matching :meth:`ingest` audits it instead
        of recomputing.

        With ``batched=True`` (the default), eligible streams are
        forecast fleet-wide by the
        :class:`~repro.serving.engine.BatchedTickEngine` — bit-identical
        to the per-stream loop (``batched=False``), just a handful of
        NumPy ops instead of N Python call chains.
        """
        targets = self.stream_names if names is None else tuple(names)
        for name in targets:
            self._require_stream(name)
        batch: dict[str, Forecast] = {}
        if batched:
            batch = self._get_engine().forecast_batch(targets)
        tel = self._tel
        span = None
        if tel is not None:
            loop_n = sum(
                1
                for name in targets
                if name not in batch
                and self._streams[name].predictor is not None
            )
            if loop_n:
                span = tel.tracer.span("read.per_stream_loop", batch=loop_n)
                span.__enter__()
        out: dict[str, Forecast] = {}
        for name in targets:
            state = self._streams[name]
            if state.predictor is None:
                continue
            fc = batch.get(name)
            if fc is None:
                fc = state.predictor.forecast()
            state.pending = fc
            state.pending_at = state.predictor.history_length
            out[name] = fc
        if span is not None:
            span.__exit__(None, None, None)
        if tel is not None:
            self._m.forecasts.inc(len(out))
        return out

    def forecast(self, name: str) -> Forecast:
        """Next-value forecast for one stream (must be past warm-up)."""
        state = self._require_stream(name)
        if state.predictor is None:
            raise NotFittedError(
                f"stream {name!r} is still warming up "
                f"({len(state.buffer)}/{self.config.min_train} values)"
            )
        fc = state.predictor.forecast()
        state.pending = fc
        state.pending_at = state.predictor.history_length
        if self._tel is not None:
            self._m.forecasts.inc()
        return fc

    # -- training / retraining ----------------------------------------------

    @property
    def pending_retrains(self) -> tuple[str, ...]:
        """Streams scheduled for (re)training but not yet processed.

        Ordered oldest-breach-first (by the ingest tick at which each
        stream became due, then by registration order) — the order in
        which a budgeted :meth:`run_pending_retrains` serves them.
        """
        if not self._due_count:
            return ()
        due = [
            (state.due_at, index, name)
            for index, (name, state) in enumerate(self._streams.items())
            if state.train_due or state.retrain_due
        ]
        due.sort()
        return tuple(name for _, _, name in due)

    def run_pending_retrains(
        self, *, budget: int | None = None, batched: bool = True
    ) -> tuple[str, ...]:
        """Run scheduled initial trains and QA-ordered retrains.

        The out-of-band path that keeps training cost off the ingest
        hot loop. With ``batched=True`` (the default) and an eligible
        configuration, the whole burst runs as one stacked computation
        through the :class:`~repro.serving.trainer.BatchedTrainEngine`,
        bit-identical to training each stream alone; otherwise the
        burst spreads over cores via
        :func:`~repro.parallel.pool_exec.parallel_map`.

        *budget* caps how many due streams this call processes
        (defaulting to ``config.max_retrains_per_tick``); the queue is
        served oldest-breach-first and deferred streams stay scheduled,
        serving their current model until a later call reaches them.

        Returns the names actually (re)trained, in processing order.

        With ``config.retrain_mode="async"`` the call instead drains
        whatever bursts *finished* (integrating their models, see
        :meth:`drain_retrains`), then dispatches the budgeted due
        streams to the worker pool and returns without waiting — the
        returned names are the streams integrated this call, and
        submitted streams keep serving their current model until a
        later call integrates them.
        """
        if budget is None:
            budget = self.config.max_retrains_per_tick
        elif budget < 0:
            raise ConfigurationError(
                f"budget must be >= 0 or None, got {budget}"
            )
        if self.config.retrain_mode == "async":
            return self._run_retrains_async(budget, batched)
        due = self._take_due(budget)
        if not due:
            return ()
        return self._execute_retrains(due, batched=batched)

    def drain_retrains(self, *, wait: bool = False) -> tuple[str, ...]:
        """Integrate finished asynchronous retrains, out of band.

        The tick-boundary half of async mode, exposed for callers that
        need a flush point: ``wait=True`` blocks until every in-flight
        burst lands (``train.async_wait`` span) and integrates them all
        — :meth:`save` flushes this way so a persisted fleet never has
        work in flight. Returns the integrated stream names; an empty
        tuple in sync mode or when nothing is in flight.
        """
        if self._async is None or not self._async.inflight:
            return ()
        return self._drain_async(wait=wait)

    def _take_due(self, budget: int | None) -> tuple[str, ...]:
        """Pop the budgeted head of the due queue, narrating deferrals."""
        tel = self._tel
        due = self.pending_retrains
        if budget is not None and len(due) > budget:
            deferred = due[budget:]
            due = due[:budget]
            self._deferred_total += len(deferred)
            if tel is not None:
                self._m.deferrals.inc(len(deferred))
                for name in deferred:
                    tel.events.emit(
                        "retrain_deferred", tick=self._due_seq, stream=name
                    )
        return due

    def _partition_due(self, due: tuple[str, ...]) -> "_BurstPlan":
        """Partition one retrain round into cold refits and relabels.

        Streams whose new window still overlaps their parameters' fit
        window enough run as incremental relabels (frozen parameters,
        labels/memory rebuilt); the rest — initial trains, drifted-away
        streams, policy off — refit cold. Each side runs as its own
        stacked burst. Histories are snapshotted here, so the plan is
        self-contained: the synchronous path executes it immediately,
        the asynchronous pipeline ships it to the pool.
        """
        cfg = self.config
        cold_names: list[str] = []
        cold_histories: list[np.ndarray] = []
        inc_names: list[str] = []
        inc_tasks: list[tuple] = []
        windows: dict[str, tuple[int, int]] = {}
        miss_reasons: dict[str, str | None] = {}
        params_fps: dict[str, str] = {}
        for name in due:
            state = self._streams[name]
            if state.predictor is None:
                history = np.asarray(state.buffer, dtype=np.float64)
            else:
                limit = cfg.retrain_window or state.predictor.history_length
                history = state.predictor.recent_history(limit)
            # Every ingested value bumped state.ticks, so the window's
            # first value sits at this absolute lifetime index.
            start = state.ticks - history.shape[0]
            windows[name] = (start, history.shape[0])
            if state.predictor is not None and self._relabel_eligible(
                state, start, history.shape[0]
            ):
                cached = reason = None
                if cfg.label_cache:
                    fp = params_fingerprint(state.predictor)
                    params_fps[name] = fp
                    cached, reason = self._label_cache.lookup(
                        name, self._config_fp, fp
                    )
                inc_names.append(name)
                inc_tasks.append((state.predictor, history, start, cached))
                miss_reasons[name] = reason
            else:
                cold_names.append(name)
                cold_histories.append(history)
        return _BurstPlan(
            cold_names=cold_names,
            cold_histories=cold_histories,
            inc_names=inc_names,
            inc_tasks=inc_tasks,
            windows=windows,
            miss_reasons=miss_reasons,
            params_fps=params_fps,
        )

    def _execute_retrains(
        self, due: tuple[str, ...], *, batched: bool
    ) -> tuple[str, ...]:
        """Run one retrain round to completion, synchronously."""
        tel = self._tel
        cfg = self.config
        plan = self._partition_due(due)
        engine = self._get_train_engine()
        new_predictors: dict[str, OnlineLARPredictor] = {}
        relabels: dict[str, RelabelResult] = {}
        if plan.cold_histories:
            if batched and engine.supported:
                trained = engine.train_many(plan.cold_histories)
            else:
                shared = (
                    cfg.lar, cfg.label_smoothing, cfg.max_memory,
                    cfg.history_limit,
                )
                if tel is not None:
                    with tel.tracer.span(
                        "train.parallel_map", batch=len(plan.cold_histories)
                    ):
                        trained = parallel_map(
                            functools.partial(_train_stream, shared),
                            plan.cold_histories,
                            config=cfg.parallel,
                        )
                else:
                    trained = parallel_map(
                        functools.partial(_train_stream, shared),
                        plan.cold_histories,
                        config=cfg.parallel,
                    )
            new_predictors.update(zip(plan.cold_names, trained))
        if plan.inc_tasks:
            span = (
                tel.tracer.span("train.label_cache", batch=len(plan.inc_tasks))
                if tel is not None
                else nullcontext()
            )
            with span:
                if batched and engine.relabel_supported:
                    results = engine.relabel_many(plan.inc_tasks)
                else:
                    results = [
                        predictor.relabel(history, start=start, cached=cached)
                        for predictor, history, start, cached in plan.inc_tasks
                    ]
            for name, result in zip(plan.inc_names, results):
                relabels[name] = result
                new_predictors[name] = result.predictor
        for name in due:
            state = self._streams[name]
            was_retrain = self._integrate_stream(
                state,
                new_predictors[name],
                relabels.get(name),
                plan.windows[name],
                plan.miss_reasons.get(name),
                plan.params_fps.get(name),
            )
            if tel is not None:
                tel.events.emit(
                    "retrain_complete" if was_retrain else "train_complete",
                    tick=self._due_seq,
                    stream=name,
                )
        return due

    def _integrate_stream(
        self, state, predictor, result, window, miss_reason, params_fp
    ) -> bool:
        """Swap *predictor* in with full retrain bookkeeping.

        The one place a (re)trained model becomes the serving model —
        the synchronous round and the asynchronous drain both land
        here, so cache bookkeeping, QA acknowledgement, and counters
        cannot diverge between the modes. Returns whether the swap was
        a retrain (vs. an initial train).
        """
        was_retrain = state.predictor is not None
        if was_retrain:
            state.retrain_count += 1
        if result is None:
            # Cold fit: fresh parameters, so the fit window becomes
            # the new overlap reference and any cached tail (labels
            # under the old parameters) can never splice again.
            state.params_window = window
            self._label_cache.drop(state.name)
        elif self.config.label_cache:
            self._note_label_cache(state.name, result, miss_reason)
            # The relabel kept the frozen parameters, so the tail it
            # produced is stored under the same fingerprint it was
            # looked up with.
            self._label_cache.store(
                state.name,
                window[0],
                result.sq,
                result.labels,
                self._config_fp,
                params_fp,
            )
        state.predictor = predictor
        state.epoch = self._next_epoch()
        state.buffer.clear()
        state.pending = None
        state.pending_at = -1
        state.qa.acknowledge_retraining()
        self._clear_due(state)
        if self._tel is not None:
            (self._m.retrains if was_retrain else self._m.trains).inc()
        return was_retrain

    def _run_retrains_async(self, budget, batched) -> tuple[str, ...]:
        """One async-mode round: drain what finished, submit what's due.

        Draining first means a burst submitted at tick T is eligible
        for integration at the T+1 boundary, and a stream that drained
        and immediately re-breached can be resubmitted within the same
        call on its fresh model.
        """
        pipe = self._get_async()
        tel = self._tel
        integrated = self._drain_async(wait=False, batched=batched) \
            if pipe.inflight else ()
        if not self._due_count:
            return integrated
        due = self._take_due(budget)
        cap = self.config.max_inflight_retrains
        if cap is not None:
            # Over-cap streams simply stay due (not a deferral: nothing
            # was skipped, they are next in line as slots free up).
            due = due[: max(cap - pipe.inflight, 0)]
        if not due:
            return integrated
        pipe.submit(due, self._partition_due(due), batched=batched)
        for name in due:
            self._clear_due(self._streams[name])
            if tel is not None:
                tel.events.emit(
                    "retrain_submitted", tick=self._due_seq, stream=name
                )
        if tel is not None:
            self._m.inflight.set(pipe.inflight)
        return integrated

    def _drain_async(
        self, *, wait: bool, batched: bool = True
    ) -> tuple[str, ...]:
        """Collect landed bursts and integrate their models."""
        pipe = self._async
        tel = self._tel
        if wait and tel is not None and pipe.inflight:
            with tel.tracer.span("train.async_wait", batch=pipe.inflight):
                ready, failed = pipe.drain(wait=True)
        else:
            ready, failed = pipe.drain(
                wait=wait, limit=self.config.max_integrations_per_tick
            )
        integrated: list[str] = []
        if ready:
            span = (
                tel.tracer.span("train.integrate", batch=len(ready))
                if tel is not None
                else nullcontext()
            )
            with span:
                for rec, predictor, result in ready:
                    if self._integrate_async(rec, predictor, result):
                        integrated.append(rec.name)
        if tel is not None:
            self._m.inflight.set(pipe.inflight)
        if failed:
            integrated.extend(self._requeue_failed(failed, batched))
        return tuple(integrated)

    def _integrate_async(self, rec, predictor, result) -> bool:
        """Integrate one drained burst result (or drop it as stale)."""
        tel = self._tel
        state = self._streams.get(rec.name)
        reason = None
        if state is None:
            reason = "removed"
        elif state.epoch != rec.epoch:
            reason = "stale"
        elif rec.config_fp != self._config_fp:
            reason = "config"
        if reason is not None:
            if tel is not None:
                tel.events.emit(
                    "retrain_dropped",
                    tick=self._due_seq,
                    stream=rec.name,
                    reason=reason,
                )
            return False
        # Replay the ticks that arrived while the burst ran: the old
        # model served them, the new model learns them, and the result
        # is bit-identical to a model trained synchronously at the
        # submission tick and served since — observe() is the
        # deterministic primitive both histories share.
        predictor.observe_many(rec.replay)
        was_retrain = self._integrate_stream(
            state, predictor, result, rec.window, rec.miss_reason,
            rec.params_fp,
        )
        if tel is not None:
            tel.events.emit(
                "retrain_integrated",
                tick=self._due_seq,
                stream=rec.name,
                replayed=len(rec.replay),
                retrain=was_retrain,
            )
        return True

    def _requeue_failed(self, failed, batched: bool) -> tuple[str, ...]:
        """Pool died mid-flight: fall back to the synchronous path.

        The affected streams go back on the due queue with their
        original due stamps and are retrained immediately, in-process —
        the burst they lost ran on histories that are still prefixes of
        the live ones, so a fresh synchronous round on current state is
        always correct (just not overlapped).
        """
        tel = self._tel
        if tel is not None:
            tel.events.emit(
                "pool_failure", tick=self._due_seq, streams=len(failed)
            )
        requeued: list[tuple[int, str]] = []
        for rec in failed:
            state = self._streams.get(rec.name)
            if state is None or state.epoch != rec.epoch:
                if tel is not None:
                    tel.events.emit(
                        "retrain_dropped",
                        tick=self._due_seq,
                        stream=rec.name,
                        reason="removed" if state is None else "stale",
                    )
                continue
            if not (state.train_due or state.retrain_due):
                self._due_count += 1
            state.due_at = rec.due_at
            state.train_due = not rec.was_retrain
            state.retrain_due = rec.was_retrain
            requeued.append((rec.due_at, rec.name))
        if not requeued:
            return ()
        requeued.sort()
        return self._execute_retrains(
            tuple(name for _, name in requeued), batched=batched
        )

    # -- observability -------------------------------------------------------

    def metrics(self) -> FleetMetrics:
        """Point-in-time snapshot of the whole fleet."""
        rows = []
        merged: dict[str, int] = {}
        total_ticks = 0
        total_retrains = 0
        n_trained = 0
        for name, state in self._streams.items():
            trained = state.predictor is not None
            n_trained += trained
            total_ticks += state.ticks
            total_retrains += state.retrain_count
            for key, count in state.selections.items():
                merged[key] = merged.get(key, 0) + count
            rows.append(
                StreamMetrics(
                    name=name,
                    ticks=state.ticks,
                    trained=trained,
                    history_length=(
                        state.predictor.history_length
                        if trained
                        else len(state.buffer)
                    ),
                    memory_size=state.predictor.memory_size if trained else 0,
                    windows_learned=(
                        state.predictor.windows_learned_online if trained else 0
                    ),
                    retrain_count=state.retrain_count,
                    rolling_mse=state.qa.rolling_mse,
                    audits=state.qa.audits_total,
                    breaches=state.qa.breaches_total,
                    selections=dict(state.selections),
                )
            )
        pending = len(self.pending_retrains)
        inflight = self._async.inflight if self._async is not None else 0
        telemetry = None
        if self._tel is not None:
            self._m.trained.set(n_trained)
            self._m.pending.set(pending)
            self._m.inflight.set(inflight)
            telemetry = self._tel.registry.snapshot()
        return FleetMetrics(
            streams=tuple(rows),
            n_streams=len(self._streams),
            n_trained=n_trained,
            total_ticks=total_ticks,
            total_retrains=total_retrains,
            pending_retrains=pending,
            deferred_retrains=self._deferred_total,
            selections=merged,
            telemetry=telemetry,
            inflight_retrains=inflight,
        )

    # -- persistence ----------------------------------------------------------

    def save(self, directory) -> None:
        """Write the whole fleet under *directory* (see
        :func:`repro.serving.persistence.save_fleet`)."""
        from repro.serving.persistence import save_fleet

        save_fleet(self, directory)

    @classmethod
    def load(cls, directory, *, telemetry=None) -> "PredictionFleet":
        """Restore a fleet saved by :meth:`save`.

        *telemetry* is forwarded to the constructor, so a restored
        fleet can come back with observation wired in (telemetry state
        itself is process-local and never persisted).
        """
        from repro.serving.persistence import load_fleet

        return load_fleet(directory, telemetry=telemetry)

    # -- internals -------------------------------------------------------------

    def _get_engine(self) -> BatchedTickEngine:
        if self._engine is None:
            self._engine = BatchedTickEngine(self)
        return self._engine

    def _get_train_engine(self) -> BatchedTrainEngine:
        if self._train_engine is None:
            self._train_engine = BatchedTrainEngine(
                self.config,
                telemetry=self._tel,
                shards=self.config.train_shards,
                min_shard_streams=self.config.shard_min_streams,
            )
        return self._train_engine

    def _get_async(self):
        if self._async is None:
            from repro.serving.async_trainer import AsyncRetrainPipeline

            self._async = AsyncRetrainPipeline(self)
        return self._async

    def _next_epoch(self) -> int:
        self._epoch_seq += 1
        return self._epoch_seq

    def _clear_due(self, state: _StreamState) -> None:
        """Take *state* off the due queue (idempotent)."""
        if state.train_due or state.retrain_due:
            self._due_count -= 1
            state.train_due = False
            state.retrain_due = False

    def _schedule(self, state: _StreamState, *, initial: bool) -> None:
        """Mark *state* due for (re)training.

        Stamps the due clock and emits the order event only on the
        not-due -> due transition, preserving the oldest breach for
        queue ordering (re-breaching while queued is not a new order).
        A stream whose retrain is already in flight is never re-marked:
        its QA stays latched until the integration acknowledges it, and
        double-submitting the same stream would race its own result.
        """
        if self._async is not None and self._async.blocks(
            state.name, state.epoch
        ):
            return
        newly = not (state.train_due or state.retrain_due)
        if newly:
            state.due_at = self._due_seq
            self._due_count += 1
        if initial:
            state.train_due = True
        else:
            state.retrain_due = True
        if newly and self._tel is not None:
            self._tel.events.emit(
                "train_order" if initial else "retrain_order",
                tick=self._due_seq,
                stream=state.name,
            )

    def _relabel_eligible(
        self, state: _StreamState, start: int, length: int
    ) -> bool:
        """Whether this retrain may keep frozen parameters and relabel.

        True when the policy is on, the pool is relabellable (extended
        pools carry members that must be refitted per window), the
        stream has a known parameter fit window, and the new window
        still overlaps that fit window by at least
        ``min_relabel_overlap`` of its length.
        """
        cfg = self.config
        if cfg.min_relabel_overlap is None or cfg.lar.extended_pool:
            return False
        if state.params_window is None:
            return False
        p_start, p_len = state.params_window
        shared = min(p_start + p_len, start + length) - max(p_start, start)
        return shared / length >= cfg.min_relabel_overlap

    def _note_label_cache(
        self, name: str, result: RelabelResult, reason: str | None
    ) -> None:
        """Record one cache consultation with the telemetry, if any.

        Both relabel paths — the stacked burst and the per-stream loop
        — funnel through here with path-independent inputs, so the
        counters and events are identical whichever executed the burst
        (the obs parity suite pins this). A looked-up tail that shares
        no frames with the new window counts as a ``"disjoint"`` miss.
        """
        tel = self._tel
        if tel is None:
            return
        if result.reused > 0:
            self._m.cache_hits.inc()
            self._m.cache_spliced.inc(result.reused)
            tel.events.emit(
                "label_cache_hit",
                tick=self._due_seq,
                stream=name,
                reused=result.reused,
                labels_reused=result.labels_reused,
            )
        else:
            self._m.cache_misses.inc()
            tel.events.emit(
                "label_cache_miss",
                tick=self._due_seq,
                stream=name,
                reason=reason if reason is not None else "disjoint",
            )

    def _flush_selections(self) -> None:
        """Settle ``state.selections`` into labelled registry counters.

        Registered as a registry collector, so it runs before every
        registry read (snapshot, exposition, scrape). Both tick paths —
        the per-stream loop and the batched engine — already maintain
        ``state.selections`` as plain dict bumps, so the per-stream
        label distribution
        (``repro_fleet_selections_total{stream=...,predictor=...}``) is
        identical whichever executed the tick, and the tick hot loop
        never touches a counter at all. Deltas against the per-key
        high-water mark keep repeated flushes idempotent and keep a
        re-added stream's registry series monotone.
        """
        tel = self._tel
        if tel is None:
            return
        counters = self._sel_counters
        flushed = self._sel_flushed
        for name, state in list(self._streams.items()):
            for predictor_name, count in list(state.selections.items()):
                key = (name, predictor_name)
                done = flushed.get(key, 0)
                if count <= done:
                    continue
                counter = counters.get(key)
                if counter is None:
                    counter = tel.registry.counter(
                        "repro_fleet_selections_total",
                        "Pool-member selections, labelled by stream "
                        "and predictor.",
                        stream=name,
                        predictor=predictor_name,
                    )
                    counters[key] = counter
                counter.inc(count - done)
                flushed[key] = count

    def _note_audit(self, name: str, audit: "AuditRecord | None") -> None:
        """Record one QA audit (and breach) with the telemetry, if any.

        Both tick paths — the per-stream loop and the batched engine —
        funnel through here, so counter and event streams are identical
        whichever executed the tick. Routine (non-breaching) audits
        fold into the ``repro_fleet_qa_audits_total`` counter only; the
        event log narrates breaches, which are the rare, interesting
        moments — one event per audited stream per audit tick would
        dominate the telemetry budget and evict everything else from
        the ring.
        """
        tel = self._tel
        if tel is None or audit is None:
            return
        self._m.audits.inc()
        if audit.breached:
            self._m.breaches.inc()
            self._breaches_this_tick += 1
            tel.events.emit(
                "qa_breach",
                tick=self._due_seq,
                stream=name,
                window_mse=audit.window_mse,
            )

    def _note_audits_batch(
        self, audited: "list[tuple[str, AuditRecord]]"
    ) -> None:
        """One tick's QA audits, counters aggregated across streams.

        Same final counter values and the same breach event stream as
        calling :meth:`_note_audit` once per stream — the engine's
        stacked QA path hands over only the rows that actually audited,
        so the aggregate increments replace S calls with two. Only
        called with telemetry enabled.
        """
        if not audited:
            return
        tel = self._tel
        self._m.audits.inc(len(audited))
        breaches = 0
        for name, audit in audited:
            if audit.breached:
                breaches += 1
                tel.events.emit(
                    "qa_breach",
                    tick=self._due_seq,
                    stream=name,
                    window_mse=audit.window_mse,
                )
        if breaches:
            self._m.breaches.inc(breaches)
            self._breaches_this_tick += breaches

    def _require_stream(self, name: str) -> _StreamState:
        try:
            return self._streams[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown stream {name!r}; registered: "
                f"{sorted(self._streams) or 'none'}"
            ) from None

    def __repr__(self) -> str:
        n_trained = sum(
            1 for s in self._streams.values() if s.predictor is not None
        )
        return (
            f"PredictionFleet(streams={len(self._streams)}, "
            f"trained={n_trained}, "
            f"pending_retrains={len(self.pending_retrains)})"
        )
