"""Multi-stream serving layer: the prediction fleet."""

from repro.serving.async_trainer import AsyncRetrainPipeline
from repro.serving.engine import BatchedTickEngine
from repro.serving.fleet import (
    FleetConfig,
    FleetMetrics,
    PredictionFleet,
    StreamMetrics,
)
from repro.serving.label_cache import (
    CacheTail,
    LabelCache,
    config_fingerprint,
    params_fingerprint,
)
from repro.serving.persistence import load_fleet, save_fleet
from repro.serving.trainer import BatchedTrainEngine, ShardedTrainEngine

__all__ = [
    "AsyncRetrainPipeline",
    "BatchedTickEngine",
    "BatchedTrainEngine",
    "ShardedTrainEngine",
    "CacheTail",
    "FleetConfig",
    "FleetMetrics",
    "LabelCache",
    "PredictionFleet",
    "StreamMetrics",
    "config_fingerprint",
    "params_fingerprint",
    "save_fleet",
    "load_fleet",
]
