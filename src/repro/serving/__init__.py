"""Multi-stream serving layer: the prediction fleet."""

from repro.serving.engine import BatchedTickEngine
from repro.serving.fleet import (
    FleetConfig,
    FleetMetrics,
    PredictionFleet,
    StreamMetrics,
)
from repro.serving.persistence import load_fleet, save_fleet

__all__ = [
    "BatchedTickEngine",
    "FleetConfig",
    "FleetMetrics",
    "PredictionFleet",
    "StreamMetrics",
    "save_fleet",
    "load_fleet",
]
