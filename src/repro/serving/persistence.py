"""Save and restore a whole :class:`~repro.serving.fleet.PredictionFleet`.

Layout: one directory per fleet —

* ``fleet.json`` — the manifest: fleet configuration, per-stream
  bookkeeping (ticks, retrain counts, selection histogram, QA state,
  warm-up buffer), and the archive name of each trained stream.
* ``streams/stream_NNNN.npz`` — one
  :func:`~repro.core.persistence.save_online_larpredictor` archive per
  trained stream (stream names can contain characters that are not
  filename-safe, so archives are numbered and mapped in the manifest).
* ``streams/cache_NNNN.npz`` — the stream's label-cache tail (squared
  pool errors + smoothed labels), when one exists: a restored fleet
  must make the same splice-vs-relabel decisions the original would
  have, so the tails travel with it (fingerprints live in the
  manifest).

Everything is JSON + ``.npz`` — no pickle — so a fleet directory is
safe to load from untrusted sources, and a restored fleet resumes with
exactly the forecasts the original would have produced (the pending
forecast cache is not persisted; it is recomputed, deterministically,
on the next read).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.config import LARConfig
from repro.core.persistence import (
    load_online_larpredictor,
    save_online_larpredictor,
)
from repro.exceptions import DataError
from repro.parallel.pool_exec import ParallelConfig

__all__ = ["save_fleet", "load_fleet", "FLEET_FORMAT_VERSION"]

#: Bump on any incompatible change to the directory layout.
FLEET_FORMAT_VERSION = 1

_MANIFEST = "fleet.json"
_STREAM_DIR = "streams"


def _fleet_config_meta(config) -> dict:
    return {
        "lar": {
            "window": config.lar.window,
            "n_components": config.lar.n_components,
            "min_variance": config.lar.min_variance,
            "k": config.lar.k,
            "ar_order": config.lar.ar_order,
            "extended_pool": config.lar.extended_pool,
        },
        "min_train": config.min_train,
        "label_smoothing": config.label_smoothing,
        "max_memory": config.max_memory,
        "history_limit": config.history_limit,
        "qa_threshold": config.qa_threshold,
        "audit_window": config.audit_window,
        "audit_interval": config.audit_interval,
        "retrain_window": config.retrain_window,
        "min_relabel_overlap": config.min_relabel_overlap,
        "label_cache": config.label_cache,
        "auto_retrain": config.auto_retrain,
        "retrain_mode": config.retrain_mode,
        "max_inflight_retrains": config.max_inflight_retrains,
        "max_integrations_per_tick": config.max_integrations_per_tick,
        "max_retrains_per_tick": config.max_retrains_per_tick,
        "parallel": {
            "max_workers": config.parallel.max_workers,
            "min_items_per_worker": config.parallel.min_items_per_worker,
            "chunksize": config.parallel.chunksize,
        },
    }


def _fleet_config_from_meta(meta: dict):
    from repro.serving.fleet import FleetConfig

    try:
        return FleetConfig(
            lar=LARConfig(**meta["lar"]),
            min_train=int(meta["min_train"]),
            label_smoothing=int(meta["label_smoothing"]),
            max_memory=(
                None if meta["max_memory"] is None else int(meta["max_memory"])
            ),
            history_limit=(
                None
                if meta["history_limit"] is None
                else int(meta["history_limit"])
            ),
            qa_threshold=float(meta["qa_threshold"]),
            audit_window=int(meta["audit_window"]),
            audit_interval=int(meta["audit_interval"]),
            retrain_window=(
                None
                if meta["retrain_window"] is None
                else int(meta["retrain_window"])
            ),
            # .get(): manifests written before incremental relabelling
            # existed load with the policy off — every retrain refits
            # cold, exactly what they ran with.
            min_relabel_overlap=(
                None
                if meta.get("min_relabel_overlap") is None
                else float(meta["min_relabel_overlap"])
            ),
            label_cache=bool(meta.get("label_cache", True)),
            auto_retrain=bool(meta["auto_retrain"]),
            # .get(): manifests written before the retrain budget existed
            # load as unlimited, which is what they ran with.
            max_retrains_per_tick=(
                None
                if meta.get("max_retrains_per_tick") is None
                else int(meta["max_retrains_per_tick"])
            ),
            # .get(): manifests written before asynchronous retraining
            # existed load in sync mode, which is what they ran with.
            retrain_mode=str(meta.get("retrain_mode", "sync")),
            max_inflight_retrains=(
                None
                if meta.get("max_inflight_retrains") is None
                else int(meta["max_inflight_retrains"])
            ),
            max_integrations_per_tick=(
                None
                if meta.get("max_integrations_per_tick") is None
                else int(meta["max_integrations_per_tick"])
            ),
            parallel=ParallelConfig(**meta["parallel"]),
        )
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed fleet config in manifest: {exc}") from exc


def save_fleet(fleet, directory) -> None:
    """Write *fleet* under *directory* (created if missing).

    Retrains in flight are flushed first (trained, integrated, and
    replayed to the current tick), so the directory always captures a
    fleet with no outstanding work — the manifest has no notion of an
    in-flight burst, and the restored fleet must forecast exactly as
    the original would have.
    """
    fleet.drain_retrains(wait=True)
    directory = Path(directory)
    stream_dir = directory / _STREAM_DIR
    stream_dir.mkdir(parents=True, exist_ok=True)

    streams = []
    for index, (name, state) in enumerate(fleet._streams.items()):
        entry = {
            "name": name,
            "ticks": state.ticks,
            "retrain_count": state.retrain_count,
            "selections": state.selections,
            "train_due": state.train_due,
            "retrain_due": state.retrain_due,
            "due_at": state.due_at,
            "qa": state.qa.state_dict(),
            "buffer": [float(v) for v in state.buffer],
            "params_window": (
                None
                if state.params_window is None
                else list(state.params_window)
            ),
            "archive": None,
            "label_cache": None,
        }
        if state.predictor is not None:
            archive = f"{_STREAM_DIR}/stream_{index:04d}.npz"
            save_online_larpredictor(state.predictor, directory / archive)
            entry["archive"] = archive
        tail = fleet._label_cache.tail(name)
        if tail is not None:
            cache_archive = f"{_STREAM_DIR}/cache_{index:04d}.npz"
            np.savez_compressed(
                directory / cache_archive, sq=tail.sq, labels=tail.labels
            )
            # The fingerprints are stored as written, not recomputed at
            # load: a manifest edited to a different labelling config
            # then correctly misses instead of splicing stale rows.
            entry["label_cache"] = {
                "archive": cache_archive,
                "start": tail.start,
                "config_fp": tail.config_fp,
                "params_fp": tail.params_fp,
            }
        streams.append(entry)

    manifest = {
        "format_version": FLEET_FORMAT_VERSION,
        "config": _fleet_config_meta(fleet.config),
        "deferred_retrains": fleet._deferred_total,
        "streams": streams,
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))


def load_fleet(directory, *, telemetry=None):
    """Restore a fleet saved by :func:`save_fleet`.

    Parameters
    ----------
    directory:
        Fleet directory written by :func:`save_fleet`.
    telemetry:
        Forwarded to the :class:`~repro.serving.fleet.PredictionFleet`
        constructor — ``True`` builds a fresh
        :class:`~repro.obs.Telemetry`, an instance is used as-is,
        ``None`` restores without telemetry. Telemetry state itself
        (metrics, spans, events) is process-local and never persisted;
        only the fleet-level ``deferred_retrains`` aggregate travels
        with the manifest.
    """
    from repro.serving.fleet import PredictionFleet

    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise DataError(f"{directory} is not a fleet directory (no {_MANIFEST})")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise DataError(f"corrupt fleet manifest {manifest_path}: {exc}") from exc
    if manifest.get("format_version") != FLEET_FORMAT_VERSION:
        raise DataError(
            f"fleet format {manifest.get('format_version')} not supported "
            f"(expected {FLEET_FORMAT_VERSION})"
        )

    fleet = PredictionFleet(
        _fleet_config_from_meta(manifest["config"]), telemetry=telemetry
    )
    # .get(): manifests written before the deferral aggregate existed
    # resume with a zero count, the only value they could have reported.
    fleet._deferred_total = int(manifest.get("deferred_retrains", 0))
    for entry in manifest.get("streams", []):
        try:
            name = entry["name"]
            fleet.add_stream(name)
            state = fleet._streams[name]
            state.ticks = int(entry["ticks"])
            state.retrain_count = int(entry["retrain_count"])
            state.selections = {
                str(k): int(v) for k, v in entry["selections"].items()
            }
            state.train_due = bool(entry["train_due"])
            state.retrain_due = bool(entry["retrain_due"])
            state.due_at = int(entry.get("due_at", 0))
            state.qa.load_state_dict(entry["qa"])
            state.buffer.extend(float(v) for v in entry["buffer"])
            # .get(): pre-1.4 manifests have no fit window on record, so
            # the restored stream refits cold on its next retrain (the
            # only behavior those fleets had).
            window_meta = entry.get("params_window")
            if window_meta is not None:
                state.params_window = (
                    int(window_meta[0]),
                    int(window_meta[1]),
                )
            archive = entry["archive"]
            cache_meta = entry.get("label_cache")
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise DataError(f"malformed stream entry in manifest: {exc}") from exc
        if archive is not None:
            state.predictor = load_online_larpredictor(directory / archive)
        if cache_meta is not None:
            try:
                with np.load(directory / cache_meta["archive"]) as arrays:
                    fleet._label_cache.store(
                        name,
                        int(cache_meta["start"]),
                        arrays["sq"],
                        np.ascontiguousarray(
                            arrays["labels"], dtype=np.int64
                        ),
                        str(cache_meta["config_fp"]),
                        str(cache_meta["params_fp"]),
                    )
            except (KeyError, TypeError, ValueError, OSError) as exc:
                raise DataError(
                    f"malformed label-cache entry for stream {name!r}: {exc}"
                ) from exc
    # Resume the due-stamp clock past every persisted stamp: streams
    # that become due after the restore sort strictly behind everything
    # already queued, exactly as they would have in the original fleet.
    fleet._due_seq = max(
        (s.due_at for s in fleet._streams.values()), default=0
    )
    # The due flags above were set directly, bypassing the scheduler
    # that normally maintains the fast-path counter.
    fleet._due_count = sum(
        1
        for s in fleet._streams.values()
        if s.train_due or s.retrain_due
    )
    return fleet
