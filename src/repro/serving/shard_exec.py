"""Worker-side kernels for shared-memory sharded training bursts.

Everything in this module runs inside the persistent worker pool. The
parent (:meth:`BatchedTrainEngine._train_group_sharded` /
``_relabel_group_sharded``) pickles only the tiny task records below —
a frozen config, :class:`~repro.parallel.shm.ArraySpec` descriptors,
and row bounds. Workers attach to the arenas, run the same in-process
kernel chain (:meth:`BatchedTrainEngine._compute_train_group` /
``_compute_relabel_group``) on their row slice, and memcpy the fitted
tensors into the matching rows of the output arena, so the result path
carries no pickles either.

Each worker keeps one :class:`BatchedTrainEngine` alive between tasks
(keyed by config equality): the engine's recycled scratch tensors are
exactly as valuable across a storm's bursts in a worker as they are in
the parent. Workers never shard recursively — their engines are built
with sharding off.

The returned value of each task is the worker-measured wall seconds,
which the parent records as a ``train.shard`` span (measuring in the
parent would fold queue wait into the span on an oversubscribed pool).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.core.relabel import SplicePlan
from repro.parallel import shm
from repro.parallel.shm import ArraySpec
from repro.serving.trainer import BatchedTrainEngine

__all__ = [
    "WorkerConfig",
    "TrainShardTask",
    "RelabelShardTask",
    "train_shard",
    "relabel_shard",
]


@dataclass(frozen=True)
class WorkerConfig:
    """The slice of a fleet config the compute kernels actually read.

    ``max_memory`` / ``history_limit`` stay behind in the parent — they
    only matter when predictors are assembled, which never happens in a
    worker.
    """

    lar: object
    label_smoothing: int


@dataclass(frozen=True)
class TrainShardTask:
    config: WorkerConfig
    inputs: dict[str, ArraySpec]
    outputs: dict[str, ArraySpec]
    lo: int
    hi: int


@dataclass(frozen=True)
class RelabelShardTask:
    config: WorkerConfig
    inputs: dict[str, ArraySpec]
    outputs: dict[str, ArraySpec]
    lo: int
    hi: int
    plan: SplicePlan | None
    sw_window: int


_cached_engine: tuple[WorkerConfig, BatchedTrainEngine] | None = None


def _engine(config: WorkerConfig) -> BatchedTrainEngine:
    """This worker's engine for *config* (rebuilt only when it changes)."""
    global _cached_engine
    if _cached_engine is not None and _cached_engine[0] == config:
        return _cached_engine[1]
    engine = BatchedTrainEngine(config)
    _cached_engine = (config, engine)
    return engine


def train_shard(task: TrainShardTask) -> float:
    """Train rows ``[lo, hi)`` of a stacked group in place."""
    started = perf_counter()
    engine = _engine(task.config)
    rows = slice(task.lo, task.hi)
    with shm.attach() as attachment:
        histories = attachment.array(task.inputs["histories"])[rows]
        fit = engine._compute_train_group(histories)
        for key in (
            "norm_means",
            "norm_stds",
            "ar_means",
            "ar_phi",
            "ar_noise",
            "frames",
            "targets",
            "labels",
            "counts",
        ):
            attachment.array(task.outputs[key])[rows] = getattr(fit, key)
        if "features" in task.outputs:
            for key in (
                "features",
                "pca_means",
                "pca_components",
                "pca_explained_variance",
                "pca_explained_variance_ratio",
            ):
                attachment.array(task.outputs[key])[rows] = getattr(fit, key)
    return perf_counter() - started


def relabel_shard(task: RelabelShardTask) -> float:
    """Relabel rows ``[lo, hi)`` of a grouped splice burst in place."""
    started = perf_counter()
    engine = _engine(task.config)
    rows = slice(task.lo, task.hi)
    with shm.attach() as attachment:

        def arr(key: str):
            return attachment.array(task.inputs[key])[rows]

        pca_means = pca_components = None
        if "pca_means" in task.inputs:
            pca_means = arr("pca_means")
            pca_components = arr("pca_components")
        cached_sq = cached_labels = None
        if task.plan is not None:
            # relabel_group takes per-stream rows; views into the
            # stacked cache slices carry the same values the parent
            # sliced out of each stream's CachedLabels tail.
            cached_sq = list(arr("cached_sq"))
            cached_labels = list(arr("cached_labels"))
        frames, targets, sq, labels, counts, features = (
            engine._compute_relabel_group(
                arr("histories"),
                arr("norm_means"),
                arr("norm_stds"),
                arr("ar_phi"),
                arr("ar_means"),
                task.plan,
                cached_sq,
                cached_labels,
                task.sw_window,
                pca_means,
                pca_components,
            )
        )
        attachment.array(task.outputs["frames"])[rows] = frames
        attachment.array(task.outputs["targets"])[rows] = targets
        attachment.array(task.outputs["sq"])[rows] = sq
        attachment.array(task.outputs["labels"])[rows] = labels
        attachment.array(task.outputs["counts"])[rows] = counts
        if features is not None:
            attachment.array(task.outputs["features"])[rows] = features
    return perf_counter() - started
