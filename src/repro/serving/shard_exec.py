"""Worker-side kernels for shared-memory sharded training bursts.

Everything in this module runs inside the persistent worker pool. The
parent (:meth:`BatchedTrainEngine._train_group_sharded` /
``_relabel_group_sharded``) pickles only the tiny task records below —
a frozen config, :class:`~repro.parallel.shm.ArraySpec` descriptors,
and row bounds. Workers attach to the arenas, run the same in-process
kernel chain (:meth:`BatchedTrainEngine._compute_train_group` /
``_compute_relabel_group``) on their row slice, and memcpy the fitted
tensors into the matching rows of the output arena, so the result path
carries no pickles either.

Each worker keeps one :class:`BatchedTrainEngine` alive between tasks
(keyed by config equality): the engine's recycled scratch tensors are
exactly as valuable across a storm's bursts in a worker as they are in
the parent. Workers never shard recursively — their engines are built
with sharding off.

Each task returns a :class:`ShardResult`: the worker-measured wall
seconds, which the parent records as a ``train.shard`` span (measuring
in the parent would fold queue wait into the span on an oversubscribed
pool), plus the worker's own per-phase span records. Workers time their
kernel phases with a :class:`PhaseCollector` — a tracer-shaped buffer
whose records carry offsets from the task start, so the parent can
re-anchor them onto its own ``perf_counter()`` timebase and merge them
into the registry and flight ring under ``shard=N`` labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import NamedTuple

from repro.core.relabel import SplicePlan
from repro.obs.events import NULL_EVENT_LOG
from repro.obs.registry import NULL_REGISTRY
from repro.parallel import shm
from repro.parallel.shm import ArraySpec
from repro.serving.trainer import BatchedTrainEngine

__all__ = [
    "WorkerConfig",
    "TrainShardTask",
    "RelabelShardTask",
    "ShardResult",
    "PhaseCollector",
    "train_shard",
    "relabel_shard",
    "train_group_async",
    "relabel_group_async",
]


class ShardResult(NamedTuple):
    """What one worker task ships back to the parent.

    ``phases`` rows are ``(name, offset, duration, batch)`` — *offset*
    is seconds from the task start on the worker's clock, so the parent
    places the record at ``task_start_parent + offset`` after anchoring
    the task by its total duration.
    """

    seconds: float
    phases: tuple


class _CollectorSpan:
    """Context manager timing one worker-side phase."""

    __slots__ = ("_collector", "name", "batch", "_t0")

    def __init__(self, collector: "PhaseCollector", name: str, batch):
        self._collector = collector
        self.name = name
        self.batch = batch
        self._t0 = 0.0

    def set_batch(self, batch: int) -> None:
        self.batch = batch

    def __enter__(self) -> "_CollectorSpan":
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        now = perf_counter()
        self._collector.phases.append(
            (
                self.name,
                self._t0 - self._collector.started,
                now - self._t0,
                self.batch,
            )
        )


class PhaseCollector:
    """Tracer-shaped buffer of ``(name, offset, duration, batch)`` rows.

    Quacks enough like :class:`~repro.obs.tracing.Tracer` for the
    engine kernels' ``span()`` / ``record()`` call sites; costs one
    clock read per phase edge and one tuple append per phase.
    """

    __slots__ = ("started", "phases")

    def __init__(self, started: float) -> None:
        self.started = started
        self.phases: list = []

    def span(self, name: str, *, batch=None) -> _CollectorSpan:
        return _CollectorSpan(self, name, batch)

    def record(self, name, seconds, batch=None, *, start=None) -> None:
        offset = (
            (start - self.started)
            if start is not None
            else (perf_counter() - seconds - self.started)
        )
        self.phases.append((name, offset, seconds, batch))


class _WorkerTelemetry:
    """The telemetry shape the engine kernels see inside a worker.

    Only the tracer is live (the collector); registry and events are
    the shared null objects — a worker has no scrape surface, and the
    parent narrates dispatch/completion itself.
    """

    __slots__ = ("tracer",)

    enabled = True
    registry = NULL_REGISTRY
    events = NULL_EVENT_LOG
    flight = None

    def __init__(self, collector: PhaseCollector) -> None:
        self.tracer = collector


@dataclass(frozen=True)
class WorkerConfig:
    """The slice of a fleet config the compute kernels actually read.

    ``max_memory`` / ``history_limit`` stay behind in the parent — they
    only matter when predictors are assembled, which never happens in a
    worker.
    """

    lar: object
    label_smoothing: int


@dataclass(frozen=True)
class TrainShardTask:
    config: WorkerConfig
    inputs: dict[str, ArraySpec]
    outputs: dict[str, ArraySpec]
    lo: int
    hi: int


@dataclass(frozen=True)
class RelabelShardTask:
    config: WorkerConfig
    inputs: dict[str, ArraySpec]
    outputs: dict[str, ArraySpec]
    lo: int
    hi: int
    plan: SplicePlan | None
    sw_window: int


_cached_engine: tuple[WorkerConfig, BatchedTrainEngine] | None = None


def _engine(config: WorkerConfig) -> BatchedTrainEngine:
    """This worker's engine for *config* (rebuilt only when it changes)."""
    global _cached_engine
    if _cached_engine is not None and _cached_engine[0] == config:
        return _cached_engine[1]
    engine = BatchedTrainEngine(config)
    _cached_engine = (config, engine)
    return engine


def train_shard(task: TrainShardTask) -> ShardResult:
    """Train rows ``[lo, hi)`` of a stacked group in place."""
    started = perf_counter()
    engine = _engine(task.config)
    collector = PhaseCollector(started)
    engine._tel = _WorkerTelemetry(collector)
    rows = slice(task.lo, task.hi)
    try:
        return _train_shard_body(task, engine, rows, started, collector)
    finally:
        engine._tel = None


def _train_shard_body(task, engine, rows, started, collector) -> ShardResult:
    with shm.attach() as attachment:
        histories = attachment.array(task.inputs["histories"])[rows]
        fit = engine._compute_train_group(histories)
        for key in (
            "norm_means",
            "norm_stds",
            "ar_means",
            "ar_phi",
            "ar_noise",
            "frames",
            "targets",
            "labels",
            "counts",
        ):
            attachment.array(task.outputs[key])[rows] = getattr(fit, key)
        if "features" in task.outputs:
            for key in (
                "features",
                "pca_means",
                "pca_components",
                "pca_explained_variance",
                "pca_explained_variance_ratio",
            ):
                attachment.array(task.outputs[key])[rows] = getattr(fit, key)
    return ShardResult(perf_counter() - started, tuple(collector.phases))


def train_group_async(config: WorkerConfig, histories) -> object:
    """Train one pickled history stack; the asynchronous burst unit.

    Unlike :func:`train_shard` there is no arena: the asynchronous
    pipeline overlaps training with serving ticks, so the burst's
    inputs/outputs cross the pool boundary as ordinary pickles (the
    returned :class:`~repro.serving.trainer.GroupFit` is pure ndarrays).
    Runs the exact in-process kernel chain, so the fitted tensors carry
    the synchronous burst's bits; scratch-buffer aliasing inside the
    worker is safe because pickling the result copies every tensor.
    """
    return _engine(config)._compute_train_group(histories)


def relabel_group_async(config: WorkerConfig, inputs) -> tuple:
    """Relabel one packed group; the asynchronous splice-burst unit.

    *inputs* is a :class:`~repro.serving.trainer.RelabelGroupInputs`
    snapshot taken at submission time. Returns the raw
    ``(frames, targets, sq, labels, counts, features)`` tuple for the
    parent to assemble into predictors at drain.
    """
    return _engine(config)._compute_relabel_group(
        inputs.histories,
        inputs.norm_means,
        inputs.norm_stds,
        inputs.ar_phi,
        inputs.ar_means,
        inputs.plan,
        inputs.cached_sq,
        inputs.cached_labels,
        inputs.sw_window,
        inputs.pca_means,
        inputs.pca_components,
    )


def relabel_shard(task: RelabelShardTask) -> ShardResult:
    """Relabel rows ``[lo, hi)`` of a grouped splice burst in place."""
    started = perf_counter()
    engine = _engine(task.config)
    collector = PhaseCollector(started)
    engine._tel = _WorkerTelemetry(collector)
    rows = slice(task.lo, task.hi)
    try:
        return _relabel_shard_body(task, engine, rows, started, collector)
    finally:
        engine._tel = None


def _relabel_shard_body(task, engine, rows, started, collector) -> ShardResult:
    with shm.attach() as attachment:

        def arr(key: str):
            return attachment.array(task.inputs[key])[rows]

        pca_means = pca_components = None
        if "pca_means" in task.inputs:
            pca_means = arr("pca_means")
            pca_components = arr("pca_components")
        cached_sq = cached_labels = None
        if task.plan is not None:
            # relabel_group takes per-stream rows; views into the
            # stacked cache slices carry the same values the parent
            # sliced out of each stream's CachedLabels tail.
            cached_sq = list(arr("cached_sq"))
            cached_labels = list(arr("cached_labels"))
        frames, targets, sq, labels, counts, features = (
            engine._compute_relabel_group(
                arr("histories"),
                arr("norm_means"),
                arr("norm_stds"),
                arr("ar_phi"),
                arr("ar_means"),
                task.plan,
                cached_sq,
                cached_labels,
                task.sw_window,
                pca_means,
                pca_components,
            )
        )
        attachment.array(task.outputs["frames"])[rows] = frames
        attachment.array(task.outputs["targets"])[rows] = targets
        attachment.array(task.outputs["sq"])[rows] = sq
        attachment.array(task.outputs["labels"])[rows] = labels
        attachment.array(task.outputs["counts"])[rows] = counts
        if features is not None:
            attachment.array(task.outputs["features"])[rows] = features
    return ShardResult(perf_counter() - started, tuple(collector.phases))
