"""Per-stream label cache for overlapping incremental retrains.

Successive QA-ordered retrains of one stream relabel history windows
that overlap heavily (a drift storm schedules the same stream every few
audit intervals, each time over the trailing ``retrain_window`` values).
:class:`LabelCache` keeps each stream's most recent labelling products —
the ``(n_frames, 3)`` squared pool-error rows and the smoothed labels,
keyed by the window's absolute history offset — so the next incremental
relabel computes only the new suffix and the smoothing boundary and
splices the cached rows in front (see :mod:`repro.core.relabel` for the
bit-exactness argument).

A cached tail is only valid while *nothing that shaped it* has changed.
Two fingerprints guard that:

* :func:`config_fingerprint` — the labelling-relevant configuration:
  frame window, ``k``, label smoothing, pool composition, AR order.
  Any mismatch (a fleet restored under an edited config, say) misses.
* :func:`params_fingerprint` — a digest of the stream's frozen
  normalizer/AR parameters. A cold refit changes them, so tails from
  before the refit miss even if eager invalidation were skipped.

The cache is a pure execution accelerator: a miss costs a full relabel
of the window, never a wrong answer — and the fleet runs identically
(bit for bit) with the cache disabled.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.relabel import CachedLabels

__all__ = [
    "CacheTail",
    "LabelCache",
    "config_fingerprint",
    "params_fingerprint",
]


def config_fingerprint(config) -> str:
    """Digest of the labelling-relevant parts of a fleet config.

    Covers everything that changes which label a frame gets: the frame
    window, the k-NN ``k`` (memory geometry), the smoothing width, the
    pool composition, and the AR member's order. PCA settings are
    deliberately absent — labels are computed from pool errors before
    any projection, and features are always recomputed, never cached.
    """
    lar = config.lar
    pool = "extended" if lar.extended_pool else "LAST,AR,SW_AVG"
    return (
        f"w={lar.window};k={lar.k};smooth={config.label_smoothing};"
        f"pool={pool};ar={lar.effective_ar_order}"
    )


def params_fingerprint(predictor) -> str:
    """Digest of a predictor's frozen labelling parameters.

    The exact float64 bytes of the normalizer coefficients and the AR
    fit — the inputs (besides the raw values) every cached ``sq`` row
    is a function of. A cold refit produces new parameters and thus a
    new digest, so stale tails can never splice silently.
    """
    normalizer = predictor._runner.pipeline.normalizer
    ar = predictor._runner.pool[1]
    digest = hashlib.sha1()
    digest.update(
        np.array(
            [normalizer.mean, normalizer.std, ar.mean_, ar.noise_variance_],
            dtype=np.float64,
        ).tobytes()
    )
    digest.update(
        np.ascontiguousarray(ar.coefficients_, dtype=np.float64).tobytes()
    )
    return digest.hexdigest()


@dataclass(frozen=True)
class CacheTail:
    """One stream's cached labelling tail plus its validity keys."""

    start: int
    sq: np.ndarray
    labels: np.ndarray
    config_fp: str
    params_fp: str

    @property
    def n_frames(self) -> int:
        return int(self.labels.shape[0])


class LabelCache:
    """Stream-name keyed store of :class:`CacheTail` entries.

    The fleet owns one instance for its lifetime; entries follow the
    stream lifecycle (dropped on removal and on cold refits) and the
    fingerprints are re-checked on every lookup, so a stale tail can
    only ever miss.
    """

    def __init__(self) -> None:
        self._tails: dict[str, CacheTail] = {}

    def __len__(self) -> int:
        return len(self._tails)

    def __contains__(self, name: str) -> bool:
        return name in self._tails

    def lookup(
        self, name: str, config_fp: str, params_fp: str
    ) -> tuple[CachedLabels | None, str | None]:
        """The stream's cached rows, or ``(None, reason)`` on a miss.

        Miss reasons (telemetry/event vocabulary): ``"cold"`` — no tail
        stored; ``"config"`` / ``"params"`` — a fingerprint mismatch
        (the mismatching tail is dropped, it can never become valid
        again).
        """
        tail = self._tails.get(name)
        if tail is None:
            return None, "cold"
        if tail.config_fp != config_fp:
            del self._tails[name]
            return None, "config"
        if tail.params_fp != params_fp:
            del self._tails[name]
            return None, "params"
        return CachedLabels(tail.start, tail.sq, tail.labels), None

    def store(
        self,
        name: str,
        start: int,
        sq: np.ndarray,
        labels: np.ndarray,
        config_fp: str,
        params_fp: str,
    ) -> None:
        """Replace the stream's tail with this relabel's products."""
        self._tails[name] = CacheTail(
            start=int(start),
            sq=sq,
            labels=labels,
            config_fp=config_fp,
            params_fp=params_fp,
        )

    def tail(self, name: str) -> CacheTail | None:
        """The raw stored entry (persistence reads these)."""
        return self._tails.get(name)

    def drop(self, name: str) -> None:
        """Forget the stream's tail (removal, eviction, cold refit)."""
        self._tails.pop(name, None)

    def clear(self) -> None:
        self._tails.clear()
