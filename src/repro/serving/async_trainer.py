"""Asynchronous retrain pipeline: training bursts overlap the serving tick.

In synchronous mode the tick that triggers a drift storm pays for the
whole retrain burst before :meth:`~repro.serving.fleet.PredictionFleet.ingest`
returns — 500 breaching streams freeze every stream's serving until the
stacked burst completes. The paper's own semantics don't require that:
a stream ordered to retrain "keeps serving its current model" while the
order is pending (the same split Mantis and friends make between
offline fitting and online prediction). This module makes the pending
window productive: the burst runs on the persistent worker pool while
ticks keep flowing, and worst-case tick latency drops from O(burst
training time) to O(integration).

How a burst flies
-----------------
* **Submission** (``AsyncRetrainPipeline.submit``) — the fleet
  partitions the due streams exactly as the synchronous path does
  (cold refits vs. incremental relabels, windows snapshotted); the
  pipeline packages each stacked group into picklable tensors — raw
  history stacks for cold groups (split row-wise by the engine's shard
  policy), :class:`~repro.serving.trainer.RelabelGroupInputs`
  snapshots for splice groups — and dispatches them as futures via
  :func:`repro.parallel.pool_exec.submit`. Control returns to the tick
  immediately; each submitted stream's due flags clear and its QA stays
  latched until integration.
* **In flight** — the stream serves its *current* model. Every ingested
  value is also appended to the pending record's replay list
  (``note_values``), and the scheduler refuses to re-mark the stream
  due while its burst flies.
* **Drain** (each tick boundary / ``drain_retrains``) — finished
  futures are assembled into predictors (group fits through
  :meth:`~repro.serving.trainer.BatchedTrainEngine._build_group_predictors`
  / ``_finish_relabel_group``, identical to the synchronous assembly),
  the in-flight ticks are replayed through
  :meth:`~repro.core.online.OnlineLARPredictor.observe_many`, and the
  model swaps in. Because training reads only the submission snapshot
  and replay uses the same ``observe()`` path the live model would
  have taken, the integrated model is **bit-identical** to one trained
  synchronously at the submission tick and served since — the parity
  contract ``tests/test_serving_async.py`` pins with hypothesis.

Staleness and failure
---------------------
Results outlive their usefulness in three ways, all guarded at
integration: the stream was removed mid-flight, its model generation
(epoch) advanced under it, or its labelling-config fingerprint no
longer matches. Such results are dropped with a ``retrain_dropped``
event — never integrated. A :class:`BrokenProcessPool` during a burst
degrades gracefully: the pool-failure hooks fire (flight-recorder
dump), the pool is torn down, every in-flight stream is re-queued with
its original due stamp, and the fleet retrains them synchronously on
the spot — correctness never depends on the pool surviving.
"""

from __future__ import annotations

import functools
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.parallel.pool_exec import (
    notify_pool_failure,
    shutdown_persistent_pool,
    submit as pool_submit,
)
from repro.serving.trainer import _shard_bounds

__all__ = ["AsyncRetrainPipeline"]


class _PendingStream:
    """Submission-time snapshot of one in-flight stream (internal)."""

    __slots__ = (
        "name", "epoch", "was_retrain", "window", "miss_reason",
        "params_fp", "config_fp", "due_at", "replay",
    )

    def __init__(self, state, window, miss_reason, params_fp, config_fp):
        self.name = state.name
        self.epoch = state.epoch
        self.was_retrain = state.predictor is not None
        self.window = window
        self.miss_reason = miss_reason
        self.params_fp = params_fp
        self.config_fp = config_fp
        self.due_at = state.due_at
        # Values the stream ingests while the burst flies, in tick
        # order — the integration replays them through observe().
        self.replay: list[float] = []


class _Burst:
    """One future plus everything needed to assemble its result."""

    __slots__ = ("kind", "future", "records", "histories", "items")

    def __init__(self, kind, future, records, histories=None, items=None):
        self.kind = kind
        self.future = future
        self.records = records
        self.histories = histories
        self.items = items


def _relabel_task(predictor, history, start, cached):
    """Per-stream relabel worker for non-stacked asynchronous bursts."""
    return predictor.relabel(history, start=start, cached=cached)


class AsyncRetrainPipeline:
    """In-flight bookkeeping for one fleet's asynchronous retrains.

    Owned by a :class:`~repro.serving.fleet.PredictionFleet` running
    with ``retrain_mode="async"`` (created lazily on the first round).
    The pipeline packages and dispatches bursts and assembles their
    results; all integration bookkeeping — staleness guards, label
    cache, QA acknowledgement, counters — stays in the fleet, shared
    with the synchronous path.
    """

    def __init__(self, fleet) -> None:
        self._fleet = fleet
        self._bursts: list[_Burst] = []
        # name -> live records, for O(1) schedule guards and O(inflight)
        # replay appends (a record can briefly coexist with a stale
        # same-named one after a remove + re-add).
        self._by_name: dict[str, list[_PendingStream]] = {}
        self._count = 0

    @property
    def inflight(self) -> int:
        """Streams currently training in flight."""
        return self._count

    def blocks(self, name: str, epoch: int) -> bool:
        """Whether scheduling *name* must wait for an in-flight result.

        Epoch-matched: a record left over for a removed-and-re-added
        stream (a different generation) never blocks the new stream.
        """
        return any(
            rec.epoch == epoch for rec in self._by_name.get(name, ())
        )

    def note_values(self, values) -> None:
        """Append this tick's values to the matching replay lists."""
        for name, records in self._by_name.items():
            value = values.get(name)
            if value is not None:
                for rec in records:
                    rec.replay.append(value)

    # -- submission ----------------------------------------------------------

    def submit(self, due, plan, *, batched: bool = True) -> None:
        """Dispatch one partitioned retrain round to the worker pool.

        Mirrors the synchronous execution shape exactly — stacked cold
        groups (row-split by the engine's shard policy), stacked
        relabel groups, per-stream fallbacks for configurations the
        stacked kernels don't cover — so every worker runs the same
        kernels on the same inputs and the drained tensors carry the
        synchronous burst's bits.
        """
        fleet = self._fleet
        cfg = fleet.config
        engine = fleet._get_train_engine()
        records = {
            name: _PendingStream(
                fleet._streams[name],
                plan.windows[name],
                plan.miss_reasons.get(name),
                plan.params_fps.get(name),
                fleet._config_fp,
            )
            for name in due
        }
        from repro.serving import shard_exec

        worker_cfg = shard_exec.WorkerConfig(
            lar=cfg.lar, label_smoothing=cfg.label_smoothing
        )
        if plan.cold_histories:
            if batched and engine.supported:
                self._submit_cold_groups(
                    plan, records, engine, worker_cfg, shard_exec
                )
            else:
                shared = (
                    cfg.lar, cfg.label_smoothing, cfg.max_memory,
                    cfg.history_limit,
                )
                fn = functools.partial(_train_stream_ref(), shared)
                for name, history in zip(
                    plan.cold_names, plan.cold_histories
                ):
                    self._track(_Burst(
                        "cold_single",
                        pool_submit(fn, history),
                        [records[name]],
                    ))
        if plan.inc_tasks:
            if batched and engine.relabel_supported:
                self._submit_relabel_groups(
                    plan, records, engine, worker_cfg, shard_exec
                )
            else:
                for name, task in zip(plan.inc_names, plan.inc_tasks):
                    self._track(_Burst(
                        "relabel_single",
                        pool_submit(_relabel_task, *task),
                        [records[name]],
                    ))

    def _submit_cold_groups(
        self, plan, records, engine, worker_cfg, shard_exec
    ) -> None:
        """Stacked cold refits: one future per equal-length row slice."""
        groups: dict[int, list[int]] = {}
        arrays = [
            np.ascontiguousarray(h, dtype=np.float64)
            for h in plan.cold_histories
        ]
        for index, arr in enumerate(arrays):
            groups.setdefault(arr.shape[0], []).append(index)
        for indices in groups.values():
            stack = np.stack([arrays[i] for i in indices], axis=0)
            recs = [records[plan.cold_names[i]] for i in indices]
            shards = engine._shard_count(len(indices))
            for lo, hi in _shard_bounds(len(indices), shards):
                self._track(_Burst(
                    "cold_group",
                    pool_submit(
                        shard_exec.train_group_async,
                        worker_cfg,
                        stack[lo:hi],
                    ),
                    recs[lo:hi],
                    histories=stack[lo:hi],
                ))

    def _submit_relabel_groups(
        self, plan, records, engine, worker_cfg, shard_exec
    ) -> None:
        """Stacked relabels: one future per (length, geometry) group."""
        _, groups = engine._prepare_relabel_groups(plan.inc_tasks)
        for items in groups:
            # Re-index within the group so the drained assembly writes
            # a dense [0, len(group)) output list.
            local = [
                (j, item[1], item[2], item[3], item[4])
                for j, item in enumerate(items)
            ]
            recs = [records[plan.inc_names[item[0]]] for item in items]
            self._track(_Burst(
                "relabel_group",
                pool_submit(
                    shard_exec.relabel_group_async,
                    worker_cfg,
                    engine._pack_relabel_group(local),
                ),
                recs,
                items=local,
            ))

    # -- drain ---------------------------------------------------------------

    def drain(self, *, wait: bool = False, limit: int | None = None):
        """Collect landed bursts; assemble predictors from their tensors.

        Returns ``(ready, failed)``: *ready* rows are
        ``(record, predictor, relabel_result_or_None)`` for the fleet
        to integrate; *failed* records lost their burst to a broken
        pool (hooks already notified, pool already torn down) and need
        re-queueing. With ``wait=False`` only completed futures are
        touched — the cheap tick-boundary call; ``wait=True`` blocks
        until everything lands (the flush path).

        *limit* bounds how many landed bursts a ``wait=False`` call
        assembles, so the tick-boundary drain has a fixed worst-case
        cost no matter how many futures finished at once; deferred
        bursts stay queued and are picked up on later ticks (their
        streams just replay a few more values at integration).  The
        flush path ignores it.
        """
        ready: list[tuple] = []
        failed: list[_PendingStream] = []
        keep: list[_Burst] = []
        broken = None
        assembled = 0
        for burst in self._bursts:
            if broken is not None:
                # The pool just died under an earlier burst; siblings
                # on the same pool are doomed — fail them now rather
                # than letting each one surface the same corpse.
                failed.extend(burst.records)
                continue
            if not wait and not burst.future.done():
                keep.append(burst)
                continue
            if not wait and limit is not None and assembled >= limit:
                keep.append(burst)
                continue
            try:
                value = burst.future.result()
            except BrokenProcessPool as exc:
                broken = exc
                failed.extend(burst.records)
                continue
            ready.extend(self._assemble(burst, value))
            assembled += 1
        self._bursts = keep
        if broken is not None:
            notify_pool_failure(broken)
            shutdown_persistent_pool()
            for burst in keep:
                failed.extend(burst.records)
            self._bursts = []
        for rec, _, _ in ready:
            self._release(rec)
        for rec in failed:
            self._release(rec)
        return ready, failed

    def _assemble(self, burst: _Burst, value) -> list[tuple]:
        """Build predictors from one landed burst's result tensors.

        The same assembly the synchronous path runs — group fits
        through ``_build_group_predictors``, splice tensors through
        ``_finish_relabel_group`` against the (frozen-parameter, still
        serving) submission predictors — so the models carry the
        synchronous bits before a single replay value is observed.
        """
        engine = self._fleet._get_train_engine()
        if burst.kind == "cold_group":
            predictors = engine._build_group_predictors(
                burst.histories, value
            )
            return [
                (rec, predictor, None)
                for rec, predictor in zip(burst.records, predictors)
            ]
        if burst.kind == "cold_single":
            return [(burst.records[0], value, None)]
        if burst.kind == "relabel_single":
            return [(burst.records[0], value.predictor, value)]
        out: list = [None] * len(burst.items)
        engine._finish_relabel_group(burst.items, value, out)
        return [
            (rec, result.predictor, result)
            for rec, result in zip(burst.records, out)
        ]

    def _track(self, burst: _Burst) -> None:
        self._bursts.append(burst)
        for rec in burst.records:
            self._by_name.setdefault(rec.name, []).append(rec)
            self._count += 1

    def _release(self, rec: _PendingStream) -> None:
        records = self._by_name.get(rec.name)
        if records is None:
            return
        try:
            records.remove(rec)
        except ValueError:
            return
        self._count -= 1
        if not records:
            del self._by_name[rec.name]


def _train_stream_ref():
    """The fleet's per-stream cold-train worker, imported lazily.

    Deferred so this module never imports :mod:`repro.serving.fleet` at
    import time (the fleet imports *us* lazily; a top-level back-import
    would be cycle-prone under direct-import orders).
    """
    from repro.serving.fleet import _train_stream

    return _train_stream
