"""The batched fleet retraining engine: one training burst, stacked.

PR 2's tick engine made the fleet's *read* path a handful of NumPy ops,
which moved the cost center to the *write* path: every QA-ordered
retrain re-runs the full per-stream training phase — normalizer fit,
pool fits, per-frame best-predictor labelling, PCA eigendecomposition,
k-NN memory rebuild — one Python call chain (or one pickled
``parallel_map`` payload) per due stream. A drift storm across hundreds
of streams therefore paid hundreds of serialized trainings.

:class:`BatchedTrainEngine` runs the whole burst as one stacked
computation. Due histories are grouped by length into ``(S, T)``
matrices, and per group:

* the z-score fit is one broadcast ``mean``/``std`` over rows
  (:func:`repro.preprocess.stacked.fit_stacked_normalizer`);
* framing is one strided-view copy into a contiguous ``(S, N, m)``
  tensor;
* the pool's labelling pass is one ``(S, N, 3)`` prediction tensor
  (:func:`repro.predictors.stacked.paper_pool_predict_frames_stacked`)
  plus a batched centered-window MSE smoothing and a single argmin;
* the PCA fits are one stacked covariance ``matmul`` plus one
  ``np.linalg.eigh`` gufunc call over ``(S, m, m)``
  (:func:`repro.preprocess.stacked.fit_stacked_pca`);
* each stream's k-NN growth-buffer memory is constructed directly from
  its precomputed feature/label rows
  (:meth:`repro.learn.knn.KNNClassifier.from_rows`).

Only the Yule–Walker solve stays a per-stream loop: its Levinson–Durbin
recursion is O(p^2) on tiny inputs, and reusing
:func:`repro.predictors.ar.yule_walker` verbatim is what guarantees the
coefficients carry the per-stream bits.

Sharded bursts
--------------
Past a stream threshold the burst can additionally be split row-wise
across worker processes (``BatchedTrainEngine(shards=...)``, or the
:class:`ShardedTrainEngine` convenience subclass). Every kernel above is
row-independent — each stream's fit reads only its own row — so a row
partition of the group reproduces the single-process bits exactly. The
histories are written once into a :class:`~repro.parallel.shm.ShmArena`
(one ``multiprocessing.shared_memory`` block per burst) and workers
receive only ``(segment, offset, shape, dtype)`` descriptors plus their
row bounds; fitted tensors come back through a second shared output
arena, so no history or result crosses the process boundary as a
pickle. The worker-side kernels live in
:mod:`repro.serving.shard_exec`; sharding auto-disables below
``min_shard_streams`` so small bursts keep the proven in-process path.

Bit-exactness contract
----------------------
Like the tick engine, this is an execution strategy, not a model
change: for every stream the assembled
:class:`~repro.core.online.OnlineLARPredictor` must be in the identical
state a per-stream ``train(history)`` would produce — same normalizer
coefficients, AR parameters, PCA basis, labels, classifier memory, and
history. Every kernel was chosen for that property (broadcast
elementwise ops, row-wise pairwise reductions, stacked ``matmul`` whose
slices hit the same BLAS calls, one shared LAPACK eigensolver); the
parity suite in ``tests/test_serving_trainer.py`` locks it in. Configs
the stacked kernels do not cover (extended pool, ``min_variance`` PCA —
both imply per-stream shapes) report :attr:`BatchedTrainEngine.supported`
as ``False`` and the fleet falls back to the ``parallel_map`` path.
"""

from __future__ import annotations

import os
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from time import perf_counter
from typing import NamedTuple

import numpy as np

from repro.core.online import FittedParts, OnlineLARPredictor, RelabelResult
from repro.core.relabel import SplicePlan, plan_splice, relabel_group
from repro.exceptions import ConfigurationError, DataError
from repro.parallel.pool_exec import (
    notify_pool_failure,
    persistent_pool,
    shutdown_persistent_pool,
)
from repro.parallel.shm import ShmArena
from repro.predictors.ar import yule_walker

try:
    # The Levinson-Durbin kernel scipy.linalg.solve_toeplitz wraps.
    # Calling it directly skips the wrapper's per-call validation, which
    # dominates a burst of thousands of order-p solves; the kernel gets
    # the exact arrays the wrapper would build, so the bits are the
    # wrapper's bits. Guarded: if a future scipy moves it, the trainer
    # silently falls back to the public per-stream yule_walker.
    from scipy.linalg._solve_toeplitz import levinson as _levinson
except ImportError:  # pragma: no cover - depends on scipy internals
    _levinson = None
from repro.predictors.stacked import (
    StackedARParams,
    paper_pool_predict_frames_stacked,
)
from repro.preprocess.stacked import fit_stacked_normalizer, fit_stacked_pca

__all__ = [
    "BatchedTrainEngine",
    "ShardedTrainEngine",
    "GroupFit",
    "RelabelGroupInputs",
    "DEFAULT_MIN_SHARD_STREAMS",
    "MIN_ROWS_PER_SHARD",
]

#: Shared inert context manager for the untraced path.
_NULL_SPAN = nullcontext()

#: The paper pool is fixed at three members (LAST/AR/SW) on every
#: stacked-eligible config — extended pools fall back before this.
_N_POOL = 3

#: Bursts below this many streams in a group stay single-process: the
#: fork-dispatch and arena round-trip only pay for themselves once the
#: stacked kernels run long enough to amortize them.
DEFAULT_MIN_SHARD_STREAMS = 256

#: Never carve a shard thinner than this many rows — tiny shards spend
#: more time in dispatch than in BLAS.
MIN_ROWS_PER_SHARD = 8


def _count_labels_rows(labels: np.ndarray, n_pool: int) -> np.ndarray:
    """Per-stream label counts over an ``(S, N)`` label matrix.

    One flat ``bincount`` with per-row offsets — integer counting, so
    row *s* is exactly ``[(labels[s] == v).sum() for v in 1..n_pool]``
    without materializing a boolean mask per member. Returns an
    ``(S, n_pool)`` int64 matrix.
    """
    n_streams, n_frames = labels.shape
    width = n_pool + 1
    offsets = labels + (np.arange(n_streams, dtype=np.int64) * width)[:, None]
    flat = np.bincount(offsets.ravel(), minlength=n_streams * width)
    return flat.reshape(n_streams, width)[:, 1:]


def _shard_bounds(n_rows: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal ``[lo, hi)`` row ranges covering *n_rows*."""
    base, extra = divmod(n_rows, shards)
    bounds = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class GroupFit(NamedTuple):
    """Stacked fitted tensors for one equal-length group.

    Everything :meth:`~repro.core.online.OnlineLARPredictor.from_fitted_parts`
    needs, predictor-free — the unit that crosses the shard boundary
    (workers fill row slices of these tensors in the output arena) and
    the unit the shard-parity property tests compare bit-for-bit.
    """

    norm_means: np.ndarray
    norm_stds: np.ndarray
    ar_means: np.ndarray
    ar_phi: np.ndarray
    ar_noise: np.ndarray
    frames: np.ndarray
    targets: np.ndarray
    features: np.ndarray
    labels: np.ndarray
    counts: np.ndarray
    pca_means: np.ndarray | None
    pca_components: np.ndarray | None
    pca_explained_variance: np.ndarray | None
    pca_explained_variance_ratio: np.ndarray | None


class RelabelGroupInputs(NamedTuple):
    """Frozen-parameter tensors for one relabel group, predictor-free.

    Everything :meth:`BatchedTrainEngine._compute_relabel_group` reads,
    packed from live predictors at submission time. Pure ndarrays plus a
    :class:`~repro.core.relabel.SplicePlan`, so the whole record pickles
    — the unit an asynchronous burst ships to the persistent pool
    (:func:`repro.serving.shard_exec.relabel_group_async`) while the
    serving tick keeps running on the old models.
    """

    histories: np.ndarray
    norm_means: np.ndarray
    norm_stds: np.ndarray
    ar_phi: np.ndarray
    ar_means: np.ndarray
    plan: SplicePlan | None
    cached_sq: tuple | None
    cached_labels: tuple | None
    sw_window: int
    pca_means: np.ndarray | None
    pca_components: np.ndarray | None


class BatchedTrainEngine:
    """Stacked training-phase kernels for one fleet configuration.

    The engine carries no per-stream state between bursts — it holds
    the shared policy plus recycled scratch tensors, so one instance
    serves a fleet for its lifetime (and survives config-compatible
    predictor turnover trivially). The scratch cache makes the engine
    **not thread-safe**; a fleet drives it from one thread.

    Parameters
    ----------
    config:
        The fleet's shared :class:`~repro.serving.fleet.FleetConfig`
        (any object with ``lar``, ``label_smoothing``, ``max_memory``
        and ``history_limit`` attributes works).
    telemetry:
        Optional :class:`~repro.obs.Telemetry`; when set, every batched
        burst records per-phase tracing spans (``train.zscore_fit``,
        ``train.ar_fit``, ``train.labelling``, ``train.pca_eigh``,
        ``train.rebuild``) with the group size as the batch. Sharded
        bursts additionally record one ``train.shard`` span per worker
        (worker-measured wall time), a ``repro_train_shm_bytes`` gauge
        while the arenas are mapped, and ``shard_dispatch`` /
        ``shard_complete`` events.
    shards:
        ``None`` (default) keeps every burst single-process. An integer
        caps the worker count for row-sharded bursts; groups below
        ``min_shard_streams`` (or too small to feed two shards of
        :data:`MIN_ROWS_PER_SHARD` rows) stay in-process regardless.
    min_shard_streams:
        Stream threshold below which sharding auto-disables; defaults
        to :data:`DEFAULT_MIN_SHARD_STREAMS`.
    """

    def __init__(
        self,
        config,
        *,
        telemetry=None,
        shards: int | None = None,
        min_shard_streams: int | None = None,
    ) -> None:
        self._config = config
        self._tel = telemetry
        self._lar = config.lar
        if shards is not None and shards < 1:
            raise ConfigurationError(f"shards must be >= 1 or None, got {shards}")
        if min_shard_streams is None:
            min_shard_streams = DEFAULT_MIN_SHARD_STREAMS
        if min_shard_streams < 1:
            raise ConfigurationError(
                f"min_shard_streams must be >= 1, got {min_shard_streams}"
            )
        self._shards = shards
        self._min_shard_streams = min_shard_streams
        # min_variance lets each stream keep a different component
        # count and extended pools carry members without stacked
        # kernels; both fall back to the per-stream path.
        self._supported = (
            self._lar.min_variance is None and not self._lar.extended_pool
        )
        # Recycled burst-local tensors, keyed by role. Only arrays that
        # never escape into the built predictors live here (error/cumsum
        # scratch, AR work arrays, the PCA centering buffer) — anything
        # a predictor keeps a view of (histories, frames, features,
        # labels, ...) is allocated fresh every burst. Reuse matters:
        # these are multi-megabyte blocks that glibc would otherwise
        # hand back to the OS after every burst, so a drift storm of
        # same-sized bursts repays the page faults each time.
        self._scratch: dict[str, np.ndarray] = {}

    def _span(self, name: str, batch: int):
        """A tracing span when telemetry is wired, else the shared no-op."""
        if self._tel is None:
            return _NULL_SPAN
        return self._tel.tracer.span(name, batch=batch)

    def _scratch_buf(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        buf = self._scratch.get(key)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=np.float64)
            self._scratch[key] = buf
        return buf

    @property
    def supported(self) -> bool:
        """Whether this config's training phase can run stacked."""
        return self._supported

    @property
    def shards(self) -> int | None:
        """Configured shard cap (``None`` = sharding off)."""
        return self._shards

    def _shard_count(self, n_rows: int) -> int:
        """Worker count for an *n_rows* group (1 = stay in-process).

        Sharding needs the stacked kernels (``min_variance`` and
        extended pools already fell back), a group at least
        ``min_shard_streams`` tall, and enough rows that every shard
        gets :data:`MIN_ROWS_PER_SHARD` of them.
        """
        if self._shards is None or not self._supported:
            return 1
        if n_rows < self._min_shard_streams:
            return 1
        count = min(self._shards, n_rows // MIN_ROWS_PER_SHARD)
        return count if count >= 2 else 1

    @property
    def relabel_supported(self) -> bool:
        """Whether incremental relabels can run stacked.

        Broader than :attr:`supported`: ``min_variance`` PCA only breaks
        the stacked *fit* (per-stream component counts), but a relabel
        keeps each stream's frozen basis and projects features
        per-stream, so ragged components are fine. Extended pools stay
        out — their members must be refitted per window, which is a
        full retrain by definition.
        """
        return not self._lar.extended_pool

    # -- the batched burst ----------------------------------------------------

    def train_many(self, histories) -> list[OnlineLARPredictor]:
        """Train one predictor per history, batched.

        Histories are grouped by exact length and each group trained as
        one stacked computation; ragged tails (streams mid-warm-up,
        short history limits) simply form smaller groups. Padding mixed
        lengths into one matrix was rejected: the normalizer and AR fits
        reduce over the whole history, so padded rows could not stay
        bit-identical to their per-stream fits.

        Returns predictors in input order, each indistinguishable from
        ``OnlineLARPredictor(config.lar, ...).train(history)``.
        """
        if not self._supported:
            raise ConfigurationError(
                "this configuration cannot be trained batched "
                "(extended pool or min_variance PCA); use the per-stream path"
            )
        arrays = [np.ascontiguousarray(h, dtype=np.float64) for h in histories]
        groups: dict[int, list[int]] = {}
        for index, arr in enumerate(arrays):
            if arr.ndim != 1:
                raise DataError(
                    f"history must be 1-D, got shape {arr.shape}"
                )
            groups.setdefault(arr.shape[0], []).append(index)
        out: list[OnlineLARPredictor | None] = [None] * len(arrays)
        for length in groups:
            indices = groups[length]
            stacked = np.stack([arrays[i] for i in indices], axis=0)
            for position, predictor in zip(
                indices, self._train_group(stacked)
            ):
                out[position] = predictor
        return out  # type: ignore[return-value]

    def relabel_many(self, tasks) -> list[RelabelResult]:
        """Incremental relabels for one burst, batched.

        Each task is ``(predictor, history, start, cached)``: the
        stream's current (frozen-parameter) predictor, its new raw
        window, the absolute lifetime index of ``history[0]``, and the
        stream's :class:`~repro.core.relabel.CachedLabels` tail (or
        ``None`` for a full relabel). Tasks are grouped by window length
        *and* splice geometry — streams whose caches reuse the same row
        ranges stack into one :func:`~repro.core.relabel.relabel_group`
        call; cache misses form their own full-relabel groups.

        Returns :class:`~repro.core.online.RelabelResult` rows in input
        order, each bit-identical to the per-stream
        :meth:`~repro.core.online.OnlineLARPredictor.relabel` — the
        contract the label-cache parity suite pins for both paths.
        """
        if not self.relabel_supported:
            raise ConfigurationError(
                "this configuration cannot be relabelled "
                "(extended pool); use the full retrain path"
            )
        n_tasks, groups = self._prepare_relabel_groups(tasks)
        out: list[RelabelResult | None] = [None] * n_tasks
        for items in groups:
            self._relabel_group_tasks(items, out)
        return out  # type: ignore[return-value]

    # -- internals -------------------------------------------------------------

    def _prepare_relabel_groups(self, tasks):
        """Validate tasks and bucket them by (length, splice geometry).

        Returns ``(n_tasks, groups)`` where each group is a list of
        ``(index, predictor, history, plan, cached)`` items sharing one
        window length and cache-reuse shape — the unit both the
        synchronous burst and the asynchronous pipeline dispatch.
        """
        lar = self._lar
        w = lar.window
        smooth = self._config.label_smoothing
        prepared = []
        for index, (predictor, history, start, cached) in enumerate(tasks):
            arr = np.ascontiguousarray(history, dtype=np.float64)
            if arr.ndim != 1:
                raise DataError(f"history must be 1-D, got shape {arr.shape}")
            if arr.shape[0] < w + 2:
                raise DataError(
                    f"history has {arr.shape[0]} values but at least "
                    f"{w + 2} are required"
                )
            plan = None
            if cached is not None:
                plan = plan_splice(
                    cached.start,
                    cached.labels.shape[0],
                    int(start),
                    arr.shape[0] - w,
                    smooth,
                )
            prepared.append((index, predictor, arr, plan, cached))
        groups: dict[tuple, list] = {}
        for item in prepared:
            plan = item[3]
            geometry = (
                None
                if plan is None
                else (plan.reuse, plan.label_lo, plan.label_hi)
            )
            groups.setdefault((item[2].shape[0], geometry), []).append(item)
        return len(prepared), list(groups.values())

    def _pack_relabel_group(self, items) -> RelabelGroupInputs:
        """Snapshot one group's frozen parameters into pure tensors.

        Reads every live predictor exactly once, so the result is a
        self-contained (and picklable) compute input: an asynchronous
        burst packs at submission and the predictors are free to keep
        serving — later observations never touch frozen parameters.
        """
        lar = self._lar
        histories = np.stack([item[2] for item in items], axis=0)
        predictors = [item[1] for item in items]
        plan = items[0][3]
        cached_sq = cached_labels = None
        if plan is not None:
            # Per-stream deltas differ; the reuse/label bounds are the
            # group key, so the sliced views share a shape and
            # relabel_group copies them straight into its output
            # tensors (no intermediate stack).
            cached_sq = tuple(
                item[4].sq[p.delta : p.delta + p.reuse]
                for item in items
                for p in (item[3],)
            )
            cached_labels = tuple(
                item[4].labels[p.delta + p.label_lo : p.delta + p.label_hi]
                for item in items
                for p in (item[3],)
            )
        runners = [p._runner for p in predictors]
        norm_means = np.array(
            [r.pipeline.normalizer.mean for r in runners], dtype=np.float64
        )
        norm_stds = np.array(
            [r.pipeline.normalizer.std for r in runners], dtype=np.float64
        )
        ar_members = [r.pool[1] for r in runners]
        ar_phi = np.stack(
            [np.ascontiguousarray(m.coefficients_) for m in ar_members]
        )
        ar_means = np.array([m.mean_ for m in ar_members], dtype=np.float64)
        sw_window = runners[0].pool[2].window
        # Fixed component counts: stack the frozen bases so the group
        # projects every stream's features in one stacked matmul — the
        # same per-slice gemm the per-stream ``pca.transform`` issues.
        # Ragged bases (min_variance) keep the per-stream loop below.
        pca_means = pca_components = None
        if lar.n_components is not None and lar.min_variance is None:
            pca_means = np.stack([r.pipeline.pca.mean_ for r in runners])
            pca_components = np.stack(
                [r.pipeline.pca.components_ for r in runners]
            )
        return RelabelGroupInputs(
            histories=histories,
            norm_means=norm_means,
            norm_stds=norm_stds,
            ar_phi=ar_phi,
            ar_means=ar_means,
            plan=plan,
            cached_sq=cached_sq,
            cached_labels=cached_labels,
            sw_window=sw_window,
            pca_means=pca_means,
            pca_components=pca_components,
        )

    def _run_relabel_group(self, inputs: RelabelGroupInputs):
        """Compute one packed group, sharded when the policy says so."""
        shards = self._shard_count(inputs.histories.shape[0])
        if shards > 1:
            return self._relabel_group_sharded(
                inputs.histories, inputs.norm_means, inputs.norm_stds,
                inputs.ar_phi, inputs.ar_means, inputs.plan,
                inputs.cached_sq, inputs.cached_labels, inputs.sw_window,
                inputs.pca_means, inputs.pca_components, shards,
            )
        return self._compute_relabel_group(
            inputs.histories, inputs.norm_means, inputs.norm_stds,
            inputs.ar_phi, inputs.ar_means, inputs.plan,
            inputs.cached_sq, inputs.cached_labels, inputs.sw_window,
            inputs.pca_means, inputs.pca_components,
        )

    def _relabel_group_tasks(self, items, out) -> None:
        """Relabel one equal-(length, splice-geometry) group of tasks."""
        computed = self._run_relabel_group(self._pack_relabel_group(items))
        self._finish_relabel_group(items, computed, out)

    def _finish_relabel_group(self, items, computed, out) -> None:
        """Assemble one group's computed tensors into RelabelResults."""
        lar = self._lar
        cfg = self._config
        smooth = cfg.label_smoothing
        frames, targets, sq, labels, counts, features_stack = computed
        counts_rows = counts.tolist()
        for s, (index, predictor, arr, task_plan, _cached) in enumerate(items):
            pipeline = predictor._runner.pipeline
            normalizer = pipeline.normalizer
            ar = predictor._runner.pool[1]
            pca = pipeline.pca
            if features_stack is not None:
                features = features_stack[s]
            elif pca is not None:
                features = pca.transform(frames[s])
            else:
                features = frames[s]
            parts = FittedParts(
                history=arr,
                norm_mean=normalizer.mean,
                norm_std=normalizer.std,
                ar_mean=ar.mean_,
                ar_coefficients=ar.coefficients_,
                ar_noise_variance=ar.noise_variance_,
                frames=frames[s],
                targets=targets[s],
                features=features,
                labels=labels[s],
                pca_mean=None if pca is None else pca.mean_,
                pca_components=None if pca is None else pca.components_,
                pca_explained_variance=(
                    None if pca is None else pca.explained_variance_
                ),
                pca_explained_variance_ratio=(
                    None if pca is None else pca.explained_variance_ratio_
                ),
                label_counts={
                    v: c
                    for v, c in enumerate(counts_rows[s], start=1)
                    if c
                },
            )
            out[index] = RelabelResult(
                predictor=OnlineLARPredictor.from_fitted_parts(
                    lar,
                    parts,
                    label_smoothing=smooth,
                    max_memory=cfg.max_memory,
                    history_limit=cfg.history_limit,
                ),
                sq=sq[s],
                labels=labels[s],
                reused=0 if task_plan is None else task_plan.reuse,
                labels_reused=(
                    0
                    if task_plan is None
                    else task_plan.label_hi - task_plan.label_lo
                ),
            )

    def _compute_relabel_group(
        self,
        histories: np.ndarray,
        norm_means: np.ndarray,
        norm_stds: np.ndarray,
        ar_phi: np.ndarray,
        ar_means: np.ndarray,
        plan,
        cached_sq,
        cached_labels,
        sw_window: int,
        pca_means,
        pca_components,
    ):
        """The in-process relabel kernels for one grouped burst.

        Pure stacked computation on frozen parameters — no predictor
        objects, so this is the unit workers run on their row slice
        (and the unit the shard-parity property tests partition).
        Returns ``(frames, targets, sq, labels, counts, features)``
        where ``features`` is ``None`` unless a stacked projection
        applies (fixed component counts).
        """
        lar = self._lar
        n_streams = histories.shape[0]
        with self._span("train.relabel", n_streams):
            frames, targets, sq, labels = relabel_group(
                histories,
                norm_means,
                norm_stds,
                ar_phi,
                ar_means,
                window=lar.window,
                smooth=self._config.label_smoothing,
                sw_window=sw_window,
                plan=plan,
                cached_sq=cached_sq,
                cached_labels=cached_labels,
                sums_out=self._scratch_buf(
                    "relabel_sums",
                    (n_streams, histories.shape[1] - lar.window, 3),
                ),
            )
            counts = _count_labels_rows(labels, sq.shape[2])
        features = None
        if pca_means is not None:
            with self._span("train.relabel_project", n_streams):
                centered = np.subtract(
                    frames,
                    pca_means[:, None, :],
                    out=self._scratch_buf("relabel_centered", frames.shape),
                )
                features = np.matmul(
                    centered, pca_components.transpose(0, 2, 1)
                )
        return frames, targets, sq, labels, counts, features

    def _relabel_group_sharded(
        self,
        histories: np.ndarray,
        norm_means: np.ndarray,
        norm_stds: np.ndarray,
        ar_phi: np.ndarray,
        ar_means: np.ndarray,
        plan,
        cached_sq,
        cached_labels,
        sw_window: int,
        pca_means,
        pca_components,
        shards: int,
    ):
        """Row-sharded :meth:`_compute_relabel_group` over worker processes.

        Frozen parameters (and the stacked label-cache slices, when the
        group splices) go into one input arena; workers write their row
        slices of every output tensor into the output arena. Outputs
        are copied to the heap before both arenas are released — the
        returned tensors never reference shared memory.
        """
        from repro.serving import shard_exec

        lar = self._lar
        w = lar.window
        n_streams, length = histories.shape
        n_frames = length - w
        f8, i8 = np.float64, np.int64
        in_layout = {
            "histories": ((n_streams, length), f8),
            "norm_means": ((n_streams,), f8),
            "norm_stds": ((n_streams,), f8),
            "ar_phi": (ar_phi.shape, f8),
            "ar_means": ((n_streams,), f8),
        }
        if pca_means is not None:
            in_layout["pca_means"] = (pca_means.shape, f8)
            in_layout["pca_components"] = (pca_components.shape, f8)
        if plan is not None:
            in_layout["cached_sq"] = ((n_streams, plan.reuse, _N_POOL), f8)
            in_layout["cached_labels"] = (
                (n_streams, plan.label_hi - plan.label_lo),
                i8,
            )
        out_layout = {
            "frames": ((n_streams, n_frames, w), f8),
            "targets": ((n_streams, n_frames), f8),
            "sq": ((n_streams, n_frames, _N_POOL), f8),
            "labels": ((n_streams, n_frames), i8),
            "counts": ((n_streams, _N_POOL), i8),
        }
        if pca_means is not None:
            out_layout["features"] = (
                (n_streams, n_frames, pca_components.shape[1]),
                f8,
            )
        in_arena = ShmArena(in_layout)
        out_arena = None
        try:
            np.copyto(in_arena.array("histories"), histories)
            np.copyto(in_arena.array("norm_means"), norm_means)
            np.copyto(in_arena.array("norm_stds"), norm_stds)
            np.copyto(in_arena.array("ar_phi"), ar_phi)
            np.copyto(in_arena.array("ar_means"), ar_means)
            if pca_means is not None:
                np.copyto(in_arena.array("pca_means"), pca_means)
                np.copyto(in_arena.array("pca_components"), pca_components)
            if plan is not None:
                sq_stack = in_arena.array("cached_sq")
                label_stack = in_arena.array("cached_labels")
                for s in range(n_streams):
                    np.copyto(sq_stack[s], cached_sq[s])
                    np.copyto(label_stack[s], cached_labels[s])
            out_arena = ShmArena(out_layout)
            self._set_shm_bytes(in_arena.nbytes + out_arena.nbytes)
            inputs = {key: in_arena.spec(key) for key in in_layout}
            outputs = {key: out_arena.spec(key) for key in out_layout}
            worker_cfg = shard_exec.WorkerConfig(
                lar=lar, label_smoothing=self._config.label_smoothing
            )
            self._run_shards(
                shard_exec.relabel_shard,
                lambda lo, hi: shard_exec.RelabelShardTask(
                    config=worker_cfg,
                    inputs=inputs,
                    outputs=outputs,
                    lo=lo,
                    hi=hi,
                    plan=plan,
                    sw_window=sw_window,
                ),
                n_streams,
                shards,
                "relabel",
            )
            frames = out_arena.array("frames").copy()
            targets = out_arena.array("targets").copy()
            sq = out_arena.array("sq").copy()
            labels = out_arena.array("labels").copy()
            counts = out_arena.array("counts").copy()
            features = (
                out_arena.array("features").copy()
                if pca_means is not None
                else None
            )
        finally:
            in_arena.release()
            if out_arena is not None:
                out_arena.release()
            self._set_shm_bytes(0)
        return frames, targets, sq, labels, counts, features

    def _set_shm_bytes(self, value: int) -> None:
        if self._tel is not None:
            self._tel.registry.gauge(
                "repro_train_shm_bytes",
                "Shared-memory arena bytes mapped by the current training burst",
            ).set(value)

    def _run_shards(self, fn, make_task, n_rows, shards, kind) -> None:
        """Dispatch row shards to the persistent pool and await them.

        Workers return :class:`~repro.serving.shard_exec.ShardResult`
        rows: their measured wall seconds, which the parent records as
        ``train.shard`` spans (the span must not include queue wait,
        which would double-count on an oversubscribed pool), plus their
        own per-phase records, which the parent re-anchors onto its
        clock — the task ended "now" and ran ``seconds``, so worker
        offsets land at ``now - seconds + offset`` — and merges into
        the tracer under ``shard=N`` labels. A worker crash notifies
        the pool-failure hooks (flight dump) before tearing the pool
        down.
        """
        pool = persistent_pool(shards)
        bounds = _shard_bounds(n_rows, shards)
        futures = []
        for index, (lo, hi) in enumerate(bounds):
            if self._tel is not None:
                self._tel.events.emit(
                    "shard_dispatch", burst=kind, shard=index, rows=hi - lo
                )
            futures.append(pool.submit(fn, make_task(lo, hi)))
        for index, ((lo, hi), future) in enumerate(zip(bounds, futures)):
            try:
                result = future.result()
            except BrokenProcessPool as exc:
                notify_pool_failure(exc)
                shutdown_persistent_pool()
                raise
            if self._tel is not None:
                end = perf_counter()
                tracer = self._tel.tracer
                tracer.record(
                    "train.shard",
                    result.seconds,
                    batch=hi - lo,
                    start=end - result.seconds,
                )
                shard_start = end - result.seconds
                for name, offset, duration, batch in result.phases:
                    tracer.record_shard(
                        name,
                        duration,
                        batch=batch,
                        shard=index,
                        start=shard_start + offset,
                    )
                self._tel.events.emit(
                    "shard_complete",
                    burst=kind,
                    shard=index,
                    rows=hi - lo,
                    seconds=result.seconds,
                )

    def _train_group(self, histories: np.ndarray) -> list[OnlineLARPredictor]:
        """Run the full training phase for one ``(S, T)`` equal-length group."""
        shards = self._shard_count(histories.shape[0])
        if shards > 1:
            fit = self._train_group_sharded(histories, shards)
        else:
            fit = self._compute_train_group(histories)
        return self._build_group_predictors(histories, fit)

    def _train_group_sharded(self, histories: np.ndarray, shards: int) -> GroupFit:
        """Row-sharded :meth:`_compute_train_group` over worker processes.

        The equal-length history stack is written once into an input
        arena; each worker attaches, runs the full in-process kernel
        chain on its row slice, and writes every fitted tensor into the
        matching rows of the output arena. The parent copies the
        tensors to the heap and releases both arenas before building
        predictors, so nothing downstream ever references shared
        memory.
        """
        from repro.serving import shard_exec

        lar = self._lar
        w = lar.window
        p = lar.effective_ar_order
        n_streams, length = histories.shape
        if length < w + 2:
            raise DataError(
                f"history has {length} values but at least {w + 2} are required"
            )
        if not np.isfinite(histories).all():
            raise DataError("histories contain non-finite value(s)")
        n_frames = length - w
        n_components = lar.n_components
        f8, i8 = np.float64, np.int64
        out_layout = {
            "norm_means": ((n_streams,), f8),
            "norm_stds": ((n_streams,), f8),
            "ar_means": ((n_streams,), f8),
            "ar_phi": ((n_streams, p), f8),
            "ar_noise": ((n_streams,), f8),
            "frames": ((n_streams, n_frames, w), f8),
            "targets": ((n_streams, n_frames), f8),
            "labels": ((n_streams, n_frames), i8),
            "counts": ((n_streams, _N_POOL), i8),
        }
        if n_components is not None:
            out_layout["features"] = ((n_streams, n_frames, n_components), f8)
            out_layout["pca_means"] = ((n_streams, w), f8)
            out_layout["pca_components"] = ((n_streams, n_components, w), f8)
            out_layout["pca_explained_variance"] = ((n_streams, n_components), f8)
            out_layout["pca_explained_variance_ratio"] = (
                (n_streams, n_components),
                f8,
            )
        in_arena = ShmArena({"histories": ((n_streams, length), f8)})
        out_arena = None
        try:
            np.copyto(in_arena.array("histories"), histories)
            out_arena = ShmArena(out_layout)
            self._set_shm_bytes(in_arena.nbytes + out_arena.nbytes)
            inputs = {"histories": in_arena.spec("histories")}
            outputs = {key: out_arena.spec(key) for key in out_layout}
            worker_cfg = shard_exec.WorkerConfig(
                lar=lar, label_smoothing=self._config.label_smoothing
            )
            self._run_shards(
                shard_exec.train_shard,
                lambda lo, hi: shard_exec.TrainShardTask(
                    config=worker_cfg, inputs=inputs, outputs=outputs, lo=lo, hi=hi
                ),
                n_streams,
                shards,
                "train",
            )

            def take(key: str) -> np.ndarray:
                return out_arena.array(key).copy()

            frames = take("frames")
            has_pca = n_components is not None
            fit = GroupFit(
                norm_means=take("norm_means"),
                norm_stds=take("norm_stds"),
                ar_means=take("ar_means"),
                ar_phi=take("ar_phi"),
                ar_noise=take("ar_noise"),
                frames=frames,
                targets=take("targets"),
                features=take("features") if has_pca else frames,
                labels=take("labels"),
                counts=take("counts"),
                pca_means=take("pca_means") if has_pca else None,
                pca_components=take("pca_components") if has_pca else None,
                pca_explained_variance=(
                    take("pca_explained_variance") if has_pca else None
                ),
                pca_explained_variance_ratio=(
                    take("pca_explained_variance_ratio") if has_pca else None
                ),
            )
        finally:
            in_arena.release()
            if out_arena is not None:
                out_arena.release()
            self._set_shm_bytes(0)
        return fit

    def _compute_train_group(self, histories: np.ndarray) -> GroupFit:
        """The in-process training kernels for one ``(S, T)`` group.

        Every kernel here reads only its own row of the stack, which is
        the property that makes row sharding bit-safe — workers call
        exactly this method on their slice.
        """
        lar = self._lar
        w = lar.window
        p = lar.effective_ar_order
        n_streams, length = histories.shape
        if length < w + 2:
            raise DataError(
                f"history has {length} values but at least {w + 2} are required"
            )
        if not np.isfinite(histories).all():
            raise DataError("histories contain non-finite value(s)")

        # Broadcast z-score fit + transform (one reduction, one divide).
        with self._span("train.zscore_fit", n_streams):
            norm = fit_stacked_normalizer(histories)
            z = norm.transform(histories)

            # Stacked framing: stream s's frames are exactly
            # sliding_window_view(z[s, :-1], w); the contiguous copy
            # gives each slice the same layout the per-stream kernels
            # receive.
            frames = np.ascontiguousarray(
                np.lib.stride_tricks.sliding_window_view(z[:, :-1], w, axis=1)
            )
            targets = z[:, w:]

        # AR fits: batched means and autocovariances, then one tiny
        # Levinson-Durbin solve per stream.
        with self._span("train.ar_fit", n_streams):
            ar_means = z.mean(axis=1)
            ar_phi, ar_noise = self._fit_ar_batched(z, ar_means, p)

        # The labelling pass: one (S, N, 3) pool-prediction tensor, one
        # error tensor, one batched centered-window smoothing, one
        # argmin. The error math runs in place on the prediction tensor
        # (abs/square are elementwise, so the bits don't care).
        with self._span("train.labelling", n_streams):
            ar_params = StackedARParams(ar_phi, ar_means)
            sq = paper_pool_predict_frames_stacked(
                frames,
                ar_params,
                out=self._scratch_buf("pool_sq", frames.shape[:2] + (3,)),
            )
            np.subtract(sq, targets[:, :, None], out=sq)
            np.abs(sq, out=sq)
            np.multiply(sq, sq, out=sq)
            n_pool = sq.shape[2]
            labels = self._smoothed_argmin_labels(sq)
            # Count every stream's label alphabet in one vectorized pass
            # (labels are 1..n_pool by construction); each classifier
            # then skips its own counting reduction.
            counts = _count_labels_rows(labels, n_pool)

        # Batched PCA fits + the stacked feature projection. The fit
        # already centered the frames for its covariances; projecting
        # that same tensor skips recomputing ``frames - means``.
        with self._span("train.pca_eigh", n_streams):
            if lar.n_components is not None:
                pca = fit_stacked_pca(
                    frames,
                    lar.n_components,
                    keep_centered=True,
                    centered_out=self._scratch_buf(
                        "pca_centered", frames.shape
                    ),
                )
                features = np.matmul(
                    pca.centered, pca.components.transpose(0, 2, 1)
                )
            else:
                pca = None
                features = frames

        return GroupFit(
            norm_means=norm.means,
            norm_stds=norm.stds,
            ar_means=ar_means,
            ar_phi=ar_phi,
            ar_noise=ar_noise,
            frames=frames,
            targets=targets,
            features=features,
            labels=labels,
            counts=counts,
            pca_means=None if pca is None else pca.means,
            pca_components=None if pca is None else pca.components,
            pca_explained_variance=(
                None if pca is None else pca.explained_variance
            ),
            pca_explained_variance_ratio=(
                None if pca is None else pca.explained_variance_ratio
            ),
        )

    def _build_group_predictors(
        self, histories: np.ndarray, fit: GroupFit
    ) -> list[OnlineLARPredictor]:
        """Assemble one predictor per row of a :class:`GroupFit`."""
        lar = self._lar
        cfg = self._config
        n_streams = histories.shape[0]
        with self._span("train.rebuild", n_streams):
            # Per-stream scalars as plain floats in one pass each
            # (indexing a Python list beats boxing a NumPy scalar 500
            # times over).
            norm_means = fit.norm_means.tolist()
            norm_stds = fit.norm_stds.tolist()
            ar_means_list = fit.ar_means.tolist()
            ar_noise_list = fit.ar_noise.tolist()
            counts_rows = fit.counts.tolist()
            has_pca = fit.pca_means is not None

            predictors = []
            for s in range(n_streams):
                parts = FittedParts(
                    history=histories[s],
                    norm_mean=norm_means[s],
                    norm_std=norm_stds[s],
                    ar_mean=ar_means_list[s],
                    ar_coefficients=fit.ar_phi[s],
                    ar_noise_variance=ar_noise_list[s],
                    frames=fit.frames[s],
                    targets=fit.targets[s],
                    features=fit.features[s],
                    labels=fit.labels[s],
                    pca_mean=fit.pca_means[s] if has_pca else None,
                    pca_components=fit.pca_components[s] if has_pca else None,
                    pca_explained_variance=(
                        fit.pca_explained_variance[s] if has_pca else None
                    ),
                    pca_explained_variance_ratio=(
                        fit.pca_explained_variance_ratio[s] if has_pca else None
                    ),
                    label_counts={
                        v: c
                        for v, c in enumerate(counts_rows[s], start=1)
                        if c
                    },
                )
                predictors.append(
                    OnlineLARPredictor.from_fitted_parts(
                        lar,
                        parts,
                        label_smoothing=cfg.label_smoothing,
                        max_memory=cfg.max_memory,
                        history_limit=cfg.history_limit,
                    )
                )
        return predictors

    def _fit_ar_batched(
        self, z: np.ndarray, ar_means: np.ndarray, p: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :func:`~repro.predictors.ar.yule_walker` over the rows
        of *z*: the autocovariances run as stacked row-wise ``matmul``
        dot products (same BLAS dot per slice as the per-stream ``@``),
        and each order-*p* Toeplitz solve calls the Levinson kernel
        directly on the arrays ``solve_toeplitz`` would hand it. Every
        stream's ``(coefficients, noise_variance)`` carries the exact
        bits ``yule_walker(z[s] - mean, p)`` returns — the degenerate
        paths (zero lag-0 autocovariance, singular systems, the kernel
        being unavailable) simply delegate to it.
        """
        n_streams, length = z.shape
        # The per-stream path centers twice: yule_walker receives the
        # mean-subtracted series, and autocovariance() re-centers it
        # (the residual mean is ~1e-17, not exactly zero). Both passes
        # run in one recycled buffer (elementwise, so bits don't care).
        centered = np.subtract(
            z, ar_means[:, None], out=self._scratch_buf("ar_work", z.shape)
        )
        xc = np.subtract(centered, centered.mean(axis=1)[:, None], out=centered)
        acov = np.empty((n_streams, p + 1), dtype=np.float64)
        for lag in range(p + 1):
            acov[:, lag] = (
                np.matmul(xc[:, None, : length - lag], xc[:, lag:, None])[:, 0, 0]
                / length
            )
        phi = np.zeros((n_streams, p), dtype=np.float64)
        # Streams whose noise variance yule_walker already produced
        # (degenerate paths); everything else gets the batched dot below.
        manual_noise: dict[int, float] = {}
        nonpos = (acov[:, 0] <= 0.0).tolist()
        # Every stream's Levinson operands, built in two stacked ops:
        # row s of vals/rhs is exactly what solve_toeplitz would pass.
        vals = np.ascontiguousarray(
            np.concatenate((acov[:, p - 1 : 0 : -1], acov[:, :p]), axis=1)
        )
        rhs = np.ascontiguousarray(acov[:, 1:])
        for s in range(n_streams):
            if nonpos[s]:
                continue  # constant stream: zero coefficients, zero noise
            if _levinson is None:
                mean = float(ar_means[s])
                phi[s], manual_noise[s] = yule_walker(
                    z[s] - mean if mean != 0.0 else z[s], p
                )
                continue
            try:
                phi[s] = _levinson(vals[s], rhs[s])[0]
            except np.linalg.LinAlgError:
                # Singular Toeplitz system: yule_walker's ridge fallback
                # (it recomputes the same autocovariances, so the result
                # is the one the per-stream path produces).
                mean = float(ar_means[s])
                phi[s], manual_noise[s] = yule_walker(
                    z[s] - mean if mean != 0.0 else z[s], p
                )
        if not np.all(np.isfinite(phi)):
            raise DataError("Yule-Walker produced non-finite AR coefficients")
        # Innovation variances for the whole batch in one stacked dot:
        # the row-wise matmul carries the same bits as each stream's
        # 1-D ``phi[s] @ rhs[s]``, and ``where(diff >= 0)`` clamps like
        # the scalar ``max(..., 0.0)`` (keeping an exactly-zero
        # residual's sign). Zero-coefficient rows reduce to the skipped
        # streams' 0.0.
        diff = acov[:, 0] - np.matmul(phi[:, None, :], rhs[:, :, None])[:, 0, 0]
        noise = np.where(diff >= 0.0, diff, 0.0)
        for s, value in manual_noise.items():
            noise[s] = value
        return phi, noise

    def _smoothed_argmin_labels(self, sq: np.ndarray) -> np.ndarray:
        """Batched :meth:`PredictorPool.best_labels` over ``(S, N, 3)``
        squared errors: the centered cumulative-sum window smoothing,
        run once along axis 1 (cumsum and the fancy-indexed differences
        are per-(stream, member) sequential, so each slice reproduces
        the per-stream summation order), then one argmin."""
        smooth = self._config.label_smoothing
        if smooth > 1:
            n_streams, n_frames, n_pool = sq.shape
            half = smooth // 2
            cum = self._scratch_buf(
                "smooth_cum", (n_streams, n_frames + 1, n_pool)
            )
            cum[:, 0] = 0.0
            np.cumsum(sq, axis=1, out=cum[:, 1:])
            if n_frames > smooth:
                # Only the first `half` and last `smooth - half` frames
                # clip their window; everything between is a plain
                # difference of two shifted slices (same elements as the
                # per-stream fancy-indexed gather, no gather cost).
                out = self._scratch_buf("smooth_out", sq.shape)
                interior_end = n_frames - smooth + half + 1
                out[:, half:interior_end] = (
                    cum[:, smooth:] - cum[:, : n_frames - smooth + 1]
                )
                for edge in (
                    np.arange(0, half),
                    np.arange(interior_end, n_frames),
                ):
                    lo = np.maximum(edge - half, 0)
                    hi = np.minimum(edge + (smooth - half), n_frames)
                    out[:, edge] = cum[:, hi] - cum[:, lo]
                sq = out
            else:
                lo = np.maximum(np.arange(n_frames) - half, 0)
                hi = np.minimum(np.arange(n_frames) + (smooth - half), n_frames)
                sq = cum[:, hi] - cum[:, lo]
        labels = np.argmin(sq, axis=2)
        labels += 1
        return labels


class ShardedTrainEngine(BatchedTrainEngine):
    """A :class:`BatchedTrainEngine` that shards every eligible burst.

    Convenience front-end for callers who already know their bursts are
    big: ``shards`` defaults to the machine's core count and the stream
    threshold drops to the smallest group that can feed two shards, so
    any burst with at least ``2 * MIN_ROWS_PER_SHARD`` rows fans out.
    Unsupported configs (extended pool, ``min_variance`` PCA) and tiny
    groups still take the single-process path — sharding is an
    execution strategy, never a behavior change.
    """

    def __init__(
        self,
        config,
        *,
        telemetry=None,
        shards: int | None = None,
        min_shard_streams: int | None = None,
    ) -> None:
        super().__init__(
            config,
            telemetry=telemetry,
            shards=(os.cpu_count() or 1) if shards is None else shards,
            min_shard_streams=(
                2 * MIN_ROWS_PER_SHARD
                if min_shard_streams is None
                else min_shard_streams
            ),
        )
