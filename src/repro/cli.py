"""Command-line interface: regenerate paper artifacts and analyze traces.

    python -m repro headline                # §1/§7 headline statistics
    python -m repro table2 [--vm VM1]       # Table 2
    python -m repro table3                  # Table 3
    python -m repro fig4 | fig5             # selection-over-time figures
    python -m repro fig6 [--vm VM4]         # Figure 6
    python -m repro ablation <knob>         # window|k|pca|classifier|pool
    python -m repro report DIR              # export all artifacts (txt/csv/json)
    python -m repro generate-traces DIR     # write the trace set as CSVs
    python -m repro assess FILE.csv         # §8 applicability assessment
    python -m repro frontier FILE.csv       # §8 cost/performance frontier
    python -m repro fleet [--streams N]     # multi-stream serving simulation
    python -m repro obs [--format FMT]      # telemetry demo (drift storm)

All artifact commands accept ``--seed`` and ``--folds``.
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for doc generation and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "LARPredictor reproduction (Zhang & Figueiredo, IPPS 2007): "
            "regenerate the paper's tables and figures, or analyze traces."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def artifact(name: str, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=None,
                       help="trace-set seed (default: paper seed)")
        p.add_argument("--folds", type=int, default=10,
                       help="cross-validation folds (default 10)")
        return p

    artifact("headline", "the paper's headline statistics")
    artifact("table2", "Table 2: normalized MSE per resource").add_argument(
        "--vm", default="VM1", help="which VM's table (default VM1)"
    )
    artifact("table3", "Table 3: best single predictor grid")
    artifact("fig4", "Figure 4: selection over time, VM2 CPU")
    artifact("fig5", "Figure 5: selection over time, VM2 packets-in")
    artifact("fig6", "Figure 6: LAR vs cumulative-MSE selectors").add_argument(
        "--vm", default="VM4", help="which VM's comparison (default VM4)"
    )

    ablation = artifact("ablation", "one design-choice sweep")
    ablation.add_argument(
        "knob", choices=["window", "k", "pca", "classifier", "pool"],
        help="which knob to sweep",
    )

    report = artifact("report", "export every artifact to a directory")
    report.add_argument("directory", help="output directory")

    gen = sub.add_parser(
        "generate-traces", help="simulate the testbed and save CSV traces"
    )
    gen.add_argument("directory", help="output directory")
    gen.add_argument("--seed", type=int, default=None)

    assess = sub.add_parser(
        "assess", help="applicability assessment of a CSV trace (paper §8)"
    )
    assess.add_argument("trace", help="CSV written by repro's trace I/O")
    assess.add_argument("--window", type=int, default=5)

    frontier = sub.add_parser(
        "frontier", help="cost/performance frontier of a CSV trace (paper §8)"
    )
    frontier.add_argument("trace", help="CSV written by repro's trace I/O")

    fleet = sub.add_parser(
        "fleet",
        help="simulate a multi-stream prediction fleet (serving layer demo)",
    )
    fleet.add_argument("--streams", type=int, default=20,
                       help="concurrent streams to serve (default 20)")
    fleet.add_argument("--ticks", type=int, default=240,
                       help="measurement ticks to simulate (default 240)")
    fleet.add_argument("--seed", type=int, default=None,
                       help="stream-generator seed (default: paper seed)")
    fleet.add_argument("--workers", type=int, default=None,
                       help="retrain worker processes (default: cpu count)")
    fleet.add_argument("--retrain-mode", choices=["sync", "async"],
                       default="sync",
                       help="run retrain bursts inline with the tick "
                            "(sync, the default) or overlapped on the "
                            "worker pool with replay at integration "
                            "(async)")
    fleet.add_argument("--no-label-cache", action="store_true",
                       help="disable the incremental label cache on the "
                            "retrain path (same output, relabels pay "
                            "their full window)")
    fleet.add_argument("--max-rows", type=int, default=10,
                       help="per-stream rows to print (default 10)")
    fleet.add_argument("--telemetry", action="store_true",
                       help="enable telemetry and print the phase-span "
                            "table and recent events after the run")
    fleet.add_argument("--stats-out", metavar="PATH", default=None,
                       help="write a JSON telemetry snapshot (metrics, "
                            "spans, events, fleet metrics) to PATH; "
                            "implies --telemetry")
    fleet.add_argument("--prom-out", metavar="PATH", default=None,
                       help="write Prometheus text exposition to PATH; "
                            "implies --telemetry")
    fleet.add_argument("--prom-port", type=int, metavar="PORT", default=None,
                       help="serve live Prometheus exposition on "
                            "127.0.0.1:PORT for the duration of the run "
                            "(0 = ephemeral); implies --telemetry")
    fleet.add_argument("--train-shards", type=int, metavar="N", default=None,
                       help="shard big retrain bursts across N worker "
                            "processes via shared memory (default: "
                            "single-process)")
    fleet.add_argument("--shard-min-streams", type=int, metavar="S",
                       default=None,
                       help="minimum burst-group size before sharding "
                            "kicks in (default 256)")
    fleet.add_argument("--flight-dir", metavar="DIR", default=None,
                       help="arm the flight recorder and write anomaly "
                            "dumps (span ring, events, metrics, Chrome "
                            "trace) under DIR; implies --telemetry")

    obs = sub.add_parser(
        "obs",
        help="observability demo: drift-storm fleet run with full telemetry",
    )
    obs.add_argument("--streams", type=int, default=12,
                     help="concurrent streams to serve (default 12)")
    obs.add_argument("--ticks", type=int, default=200,
                     help="measurement ticks to simulate (default 200)")
    obs.add_argument("--seed", type=int, default=None,
                     help="stream-generator seed (default: paper seed)")
    obs.add_argument("--retrain-mode", choices=["sync", "async"],
                     default="sync",
                     help="retrain inline (sync) or overlapped on the "
                          "worker pool (async)")
    obs.add_argument("--format", choices=["summary", "prom", "json"],
                     default="summary",
                     help="output format (default summary)")
    obs.add_argument("--events", type=int, default=12,
                     help="recent events to print in summary (default 12)")
    obs.add_argument("--quantiles", action="store_true",
                     help="print the streaming p50/p95/p99 phase-latency "
                          "table after the summary")
    obs.add_argument("--trace-out", metavar="PATH", default=None,
                     help="record every span occurrence in flight and "
                          "write a Chrome trace-event JSON (Perfetto/"
                          "chrome://tracing loadable) to PATH")
    return parser


def _seed(args) -> int:
    from repro.traces.generate import DEFAULT_SEED

    return DEFAULT_SEED if args.seed is None else args.seed


def _evaluation(args):
    from repro.experiments.common import run_full_evaluation

    return run_full_evaluation(n_folds=args.folds, seed=_seed(args))


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "headline":
        from repro.experiments.headline import headline_stats, render_headline

        print(render_headline(headline_stats(evaluation=_evaluation(args))))
    elif args.command == "table2":
        from repro.experiments.table2 import render_table2, table2

        rows = table2(vm_id=args.vm, evaluation=_evaluation(args))
        print(render_table2(rows, vm_id=args.vm))
    elif args.command == "table3":
        from repro.experiments.table3 import render_table3, table3

        print(render_table3(table3(evaluation=_evaluation(args))))
    elif args.command in ("fig4", "fig5"):
        from repro.experiments.selection_series import figure4, figure5

        fig = figure4(_seed(args)) if args.command == "fig4" else figure5(_seed(args))
        print(fig.render())
    elif args.command == "fig6":
        from repro.experiments.fig6 import figure6, render_figure6

        rows = figure6(vm_id=args.vm, evaluation=_evaluation(args))
        print(render_figure6(rows, vm_id=args.vm))
    elif args.command == "ablation":
        from repro.experiments import ablation as ab
        from repro.experiments.report import format_table

        sweeps = {
            "window": ab.sweep_window,
            "k": ab.sweep_k,
            "pca": ab.sweep_pca,
            "classifier": ab.sweep_classifier,
            "pool": ab.sweep_pool,
        }
        rows = sweeps[args.knob](seed=_seed(args), n_folds=min(args.folds, 3))
        print(
            format_table(
                ["setting", "mean LAR MSE", "forecast accuracy"],
                [[r.setting, r.mean_mse, r.mean_accuracy] for r in rows],
                title=f"Ablation: {args.knob}",
            )
        )
    elif args.command == "report":
        from repro.experiments.export import export_all_artifacts

        files = export_all_artifacts(
            args.directory, seed=_seed(args), n_folds=args.folds
        )
        print(f"wrote {len(files)} artifacts to {args.directory}:")
        for name in files:
            print(f"  {name}")
    elif args.command == "generate-traces":
        from repro.traces.generate import generate_paper_traces
        from repro.traces.io import save_trace_set

        trace_set = generate_paper_traces(_seed(args))
        save_trace_set(trace_set, args.directory)
        print(
            f"wrote {len(trace_set)} traces "
            f"({len(trace_set.valid())} valid) to {args.directory}"
        )
    elif args.command == "assess":
        from repro.analysis.applicability import assess_applicability
        from repro.core.config import LARConfig
        from repro.traces.io import load_trace

        trace = load_trace(args.trace)
        report = assess_applicability(
            trace.values, config=LARConfig(window=args.window)
        )
        print(f"{trace.trace_id}: {report.render()}")
        return 0 if report.recommended else 1
    elif args.command == "fleet":
        return _run_fleet(args)
    elif args.command == "obs":
        return _run_obs(args)
    elif args.command == "frontier":
        from repro.analysis.cost import cost_performance_frontier
        from repro.experiments.report import format_table
        from repro.traces.io import load_trace

        trace = load_trace(args.trace)
        reports = cost_performance_frontier(trace.values)
        print(
            format_table(
                ["strategy", "MSE", "cost", "Pareto"],
                [
                    [r.strategy, r.mse, r.cost, "*" if r.pareto_efficient else ""]
                    for r in reports
                ],
                title=f"Cost/performance frontier: {trace.trace_id}",
            )
        )
    return 0


def _build_fleet_feeds(n: int, ticks: int, seed: int) -> dict:
    """Synthetic per-stream series for the serving demos.

    Three generator families round-robin across the fleet; every third
    stream drifts mid-run (a +25 level shift) so the QA-breach →
    retrain path always exercises on long enough runs.
    """
    from repro.traces.synthetic import (
        ar1_series,
        conflict_series,
        white_noise_series,
    )

    generators = (
        lambda m, s: 20.0 + 4.0 * ar1_series(m, phi=0.9, seed=s),
        lambda m, s: conflict_series(m, seed=s),
        lambda m, s: 30.0 + 5.0 * white_noise_series(m, seed=s),
    )
    feeds = {}
    for i in range(n):
        name = f"stream-{i:03d}"
        series = generators[i % len(generators)](ticks, seed + i)
        if i % 3 == 0 and ticks > 120:
            # A third of the fleet drifts mid-run: the QA-retrain path.
            series = series.copy()
            series[ticks // 2 :] += 25.0
        feeds[name] = series
    return feeds


def _fleet_demo_config(
    ticks: int,
    workers=None,
    label_cache: bool = True,
    train_shards=None,
    shard_min_streams=None,
    retrain_mode: str = "sync",
):
    """The FleetConfig both serving demos run with."""
    from repro.core.config import LARConfig
    from repro.parallel.pool_exec import ParallelConfig
    from repro.serving import FleetConfig

    lar = LARConfig(window=5)
    extra = {}
    if shard_min_streams is not None:
        extra["shard_min_streams"] = shard_min_streams
    return FleetConfig(
        lar=lar,
        min_train=min(40, max(lar.window + max(lar.k, 2), ticks // 2)),
        qa_threshold=2.0,
        label_cache=label_cache,
        parallel=ParallelConfig(max_workers=workers),
        train_shards=train_shards,
        retrain_mode=retrain_mode,
        **extra,
    )


def _serve_fleet(fleet, feeds, ticks: int) -> float:
    """Run the forecast/ingest loop; return elapsed seconds.

    In async mode the final flush (waiting out and integrating bursts
    still in flight) is part of the serve, so it counts in the elapsed
    time the demos report.
    """
    from time import perf_counter

    start = perf_counter()
    for t in range(ticks):
        fleet.forecast_all()
        fleet.ingest({name: feeds[name][t] for name in fleet.stream_names})
    fleet.drain_retrains(wait=True)
    return perf_counter() - start


def _run_fleet(args) -> int:
    """Drive a synthetic multi-stream feed through a PredictionFleet."""
    import numpy as np

    from repro.serving import PredictionFleet

    if args.streams < 1 or args.ticks < 1:
        print("fleet: --streams and --ticks must be >= 1", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("fleet: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.train_shards is not None and args.train_shards < 1:
        print("fleet: --train-shards must be >= 1", file=sys.stderr)
        return 2
    if args.prom_port is not None and not (0 <= args.prom_port <= 65535):
        print("fleet: --prom-port must be in [0, 65535]", file=sys.stderr)
        return 2

    n, ticks = args.streams, args.ticks
    telemetry = bool(
        args.telemetry or args.stats_out or args.prom_out
        or args.prom_port is not None or args.flight_dir
    )
    feeds = _build_fleet_feeds(n, ticks, _seed(args))
    config = _fleet_demo_config(
        ticks,
        workers=args.workers,
        label_cache=not args.no_label_cache,
        train_shards=args.train_shards,
        shard_min_streams=args.shard_min_streams,
        retrain_mode=args.retrain_mode,
    )
    fleet = PredictionFleet(
        config,
        streams=feeds,
        telemetry=telemetry,
        flight_dir=args.flight_dir,
    )
    endpoint = None
    if args.prom_port is not None:
        from repro.obs import serve_prometheus

        endpoint = serve_prometheus(
            fleet.telemetry.registry, port=args.prom_port
        )
        print(f"serving Prometheus exposition at {endpoint.url}")
    try:
        elapsed = _serve_fleet(fleet, feeds, ticks)
        return _report_fleet(args, fleet, elapsed)
    finally:
        if endpoint is not None:
            endpoint.close()
        fleet.close()


def _report_fleet(args, fleet, elapsed: float) -> int:
    """Print the fleet run's metrics/telemetry reports (exit code 0)."""
    import numpy as np

    n, ticks = args.streams, args.ticks
    metrics = fleet.metrics()
    print(metrics.render(max_rows=args.max_rows))
    mse = [m.rolling_mse for m in metrics.streams if m.trained]
    if mse:
        print(f"mean rolling MSE over trained streams: {np.mean(mse):.4f}")
    print(
        f"served {n} streams x {ticks} ticks in {elapsed:.2f}s "
        f"({n * ticks / elapsed:,.0f} stream-ticks/sec)"
    )
    if fleet.telemetry.enabled:
        tel = fleet.telemetry
        if args.telemetry:
            print()
            print(tel.tracer.render())
            _print_event_tail(tel.events, 10)
        if args.stats_out:
            from repro.obs import write_json

            write_json(args.stats_out, tel, extra={"fleet": metrics.as_dict()})
            print(f"wrote telemetry snapshot to {args.stats_out}")
        if args.prom_out:
            from repro.obs import write_prometheus

            write_prometheus(args.prom_out, tel.registry)
            print(f"wrote Prometheus exposition to {args.prom_out}")
        if getattr(args, "flight_dir", None):
            trigger = fleet.anomaly_trigger
            if trigger is not None and trigger.dumps:
                print(
                    f"flight recorder dumped {len(trigger.dumps)} "
                    f"anomaly snapshot(s):"
                )
                for path in trigger.dumps:
                    print(f"  {path}")
            else:
                print(
                    f"flight recorder armed at {args.flight_dir} "
                    f"(no anomalies tripped)"
                )
    return 0


def _print_event_tail(events, n: int) -> None:
    """Human-readable tail of the structured event log."""
    tail = events.tail(n)
    print(
        f"Events: {events.total_emitted} emitted, "
        f"{events.dropped} dropped, last {len(tail)}:"
    )
    for e in tail:
        data = " ".join(f"{k}={v}" for k, v in e.data.items())
        stream = e.stream if e.stream is not None else "-"
        print(f"  [{e.seq:>5}] tick={e.tick:<6} {e.kind:<18} {stream:<12} {data}")


def _run_obs(args) -> int:
    """Telemetry showcase: a drift-storm run with every phase traced."""
    from repro.obs import json_snapshot, prometheus_text
    from repro.serving import PredictionFleet

    if args.streams < 1 or args.ticks < 1:
        print("obs: --streams and --ticks must be >= 1", file=sys.stderr)
        return 2

    n, ticks = args.streams, args.ticks
    feeds = _build_fleet_feeds(n, ticks, _seed(args))
    config = _fleet_demo_config(ticks, retrain_mode=args.retrain_mode)
    from repro.obs import Telemetry

    tel = Telemetry(flight=bool(args.trace_out))
    fleet = PredictionFleet(config, streams=feeds, telemetry=tel)
    elapsed = _serve_fleet(fleet, feeds, ticks)
    metrics = fleet.metrics()

    if args.format == "prom":
        print(prometheus_text(tel.registry), end="")
    elif args.format == "json":
        import json

        print(
            json.dumps(
                json_snapshot(tel, extra={"fleet": metrics.as_dict()}),
                indent=2,
            )
        )
    else:
        print(metrics.render(max_rows=10))
        print()
        print(tel.tracer.render())
        if args.quantiles:
            print()
            print(tel.tracer.render_quantiles())
        _print_event_tail(tel.events, args.events)
        print(
            f"served {n} streams x {ticks} ticks in {elapsed:.2f}s "
            f"with full telemetry"
        )
    if args.quantiles and args.format != "summary":
        print(tel.tracer.render_quantiles())
    if args.trace_out:
        from repro.obs import write_chrome_trace

        path = write_chrome_trace(args.trace_out, tel.flight, tel.events)
        print(
            f"wrote Chrome trace ({len(tel.flight)} spans) to {path} "
            f"- open in Perfetto or chrome://tracing"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
