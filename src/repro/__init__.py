"""repro — a full reproduction of "Adaptive Predictor Integration for
System Performance Prediction" (Zhang & Figueiredo, IPPS 2007).

The package implements the **LARPredictor** — a learning-aided adaptive
resource predictor that forecasts, via PCA + k-NN over historical
prediction performance, which member of a time-series predictor pool
will be best for the current workload window, and then runs only that
member — together with every substrate the paper's evaluation needs:
the predictor pool (LAST, AR, SW_AVG and extensions), the NWS
cumulative-MSE baselines, the P-LAR oracle, a simulated VMware-ESX-style
monitoring stack (device models, host arbitration, vmkusage agent, RRD,
profiler, prediction DB), and the experiment drivers that regenerate
every table and figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import LARPredictor
>>> rng = np.random.default_rng(7)
>>> series = np.sin(np.arange(600) / 5.0) + 0.2 * rng.standard_normal(600)
>>> lar = LARPredictor().train(series[:300])
>>> lar.forecast(series[:300]).predictor_name in ("LAST", "AR", "SW_AVG")
True
"""

from repro._version import __version__
from repro.core import (
    Forecast,
    LARConfig,
    LARPredictor,
    PredictionQualityAssuror,
    StrategyResult,
    StrategyRunner,
    TraceEvaluation,
    default_strategies,
)
from repro.exceptions import ReproError
from repro.learn import PCA, KNNClassifier
from repro.predictors import (
    ARPredictor,
    LastValuePredictor,
    PredictorPool,
    SlidingWindowAveragePredictor,
    make_predictor,
)
from repro.selection import (
    CumulativeMSESelector,
    LearnedSelection,
    OracleSelection,
    StaticSelection,
)
from repro.serving import FleetConfig, PredictionFleet
from repro.traces import Trace, TraceSet, generate_paper_traces, load_paper_traces

__all__ = [
    "__version__",
    "ReproError",
    "LARPredictor",
    "LARConfig",
    "Forecast",
    "StrategyRunner",
    "StrategyResult",
    "TraceEvaluation",
    "PredictionQualityAssuror",
    "default_strategies",
    "PCA",
    "KNNClassifier",
    "PredictorPool",
    "LastValuePredictor",
    "ARPredictor",
    "SlidingWindowAveragePredictor",
    "make_predictor",
    "LearnedSelection",
    "OracleSelection",
    "CumulativeMSESelector",
    "StaticSelection",
    "PredictionFleet",
    "FleetConfig",
    "Trace",
    "TraceSet",
    "generate_paper_traces",
    "load_paper_traces",
]
