"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class at API boundaries while still distinguishing
configuration mistakes from data problems or unfit models.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataError",
    "NotFittedError",
    "InsufficientDataError",
    "UnknownPredictorError",
    "DatabaseError",
    "DuplicateKeyError",
    "MissingSeriesError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or an inconsistent combination of parameters.

    Raised eagerly at construction time (fail fast) rather than deep inside
    a numerical routine, so stack traces point at the caller's mistake.
    """


class DataError(ReproError, ValueError):
    """Input data violates a structural requirement.

    Examples: a series containing NaN/inf where finite values are required,
    a 2-D array passed where a 1-D series is expected, or feature matrices
    with mismatched row counts.
    """


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a prior ``fit`` was called before fitting."""


class InsufficientDataError(DataError):
    """The input series is too short for the requested operation.

    Carries the required and actual lengths so harnesses can report the
    shortfall precisely.
    """

    def __init__(self, required: int, actual: int, what: str = "series"):
        self.required = int(required)
        self.actual = int(actual)
        self.what = str(what)
        super().__init__(
            f"{self.what} has {self.actual} values but at least "
            f"{self.required} are required"
        )


class UnknownPredictorError(ReproError, KeyError):
    """A predictor name was requested that is not present in the pool."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        msg = f"unknown predictor {name!r}"
        if self.available:
            msg += f"; available: {', '.join(self.available)}"
        super().__init__(msg)

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message readable
        return self.args[0]


class DatabaseError(ReproError):
    """Base class for prediction-database and RRD storage errors."""


class DuplicateKeyError(DatabaseError):
    """An insert collided with an existing composite primary key."""


class MissingSeriesError(DatabaseError, KeyError):
    """A query for a (vm, device, metric) series matched nothing."""

    def __str__(self) -> str:
        return self.args[0] if self.args else ""
