"""Process-local metrics registry: counters, gauges, histograms.

The serving stack's instrumentation substrate. Three instrument kinds,
modelled on the Prometheus client data model but with none of its
machinery — a fleet lives in one process and its scrape surface is the
text exposition in :mod:`repro.obs.exporters`:

* :class:`Counter` — monotone float, ``inc()``;
* :class:`Gauge` — last-write-wins float, ``set()`` / ``inc()``;
* :class:`Histogram` — **fixed** bucket edges chosen at registration
  (cumulative ``le`` semantics at export time). Fixed buckets keep
  ``observe()`` at one ``bisect`` + two adds, so per-phase wall-time
  observations are cheap enough for the tick hot loop.

Instruments are grouped into *families* (one metric name, one kind, one
help string) whose children are distinguished by label sets — e.g. every
tracing span records into one ``repro_span_seconds`` family labelled
``span="tick.knn_query"``. Families are created on first use and
returned idempotently, so call sites never coordinate registration.

Every class has a null counterpart (:data:`NULL_REGISTRY` hands them
out) whose methods are no-ops; disabled telemetry binds those, so an
instrumented call site costs one attribute lookup plus a no-op call.
"""

from __future__ import annotations

import re
from bisect import bisect_left

from repro.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
    "TRAIN_TIME_BUCKETS",
]

#: Default histogram edges for wall-time observations, in seconds.
#: Spans 0.1 ms .. 10 s log-ish; the implicit +Inf bucket catches the rest.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Histogram edges for training-burst observations: those run 1 ms .. a
#: minute, so tick-scale sub-millisecond edges would waste resolution.
TRAIN_TIME_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; inc({amount}) is negative"
            )
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Instantaneous value (set or adjusted at will)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative ``le`` export semantics.

    ``buckets`` are the finite upper edges, strictly increasing; an
    implicit ``+Inf`` bucket always exists. An observation lands in the
    first bucket whose edge is ``>= value`` (Prometheus ``le``).
    """

    __slots__ = ("buckets", "_counts", "_sum")

    def __init__(self, buckets=DEFAULT_TIME_BUCKETS) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ConfigurationError("histogram needs at least one bucket edge")
        if any(lo >= hi for lo, hi in zip(edges, edges[1:])):
            raise ConfigurationError(
                f"histogram buckets must be strictly increasing, got {edges}"
            )
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)  # [+Inf] is the last slot
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value

    @property
    def count(self) -> int:
        """Total observations."""
        return sum(self._counts)

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def cumulative_counts(self) -> list[int]:
        """Per-bucket cumulative counts, ``+Inf`` last (== :attr:`count`)."""
        out, running = [], 0
        for c in self._counts:
            running += c
            out.append(running)
        return out


class _Family:
    """One metric name: a kind, a help string, and labelled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name, kind, help_text, buckets=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        # Family default edges; individual children may override at
        # their creation (tick-scale vs train-scale phases share the
        # repro_span_seconds family but need different resolutions).
        self.buckets = (
            buckets if buckets is not None else DEFAULT_TIME_BUCKETS
        )
        # Keyed by the sorted (label, value) tuple; () is the bare child.
        self.children: dict[tuple, Counter | Gauge | Histogram] = {}

    def child(self, labels: tuple, buckets=None):
        inst = self.children.get(labels)
        if inst is None:
            if self.kind == "counter":
                inst = Counter()
            elif self.kind == "gauge":
                inst = Gauge()
            else:
                inst = Histogram(
                    buckets if buckets is not None else self.buckets
                )
            self.children[labels] = inst
        return inst


class MetricsRegistry:
    """Create-on-first-use instrument store.

    The same ``(name, labels)`` pair always returns the same instrument
    object; re-registering a name with a different kind is an error
    (it would silently fork the time series).
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._collectors: list = []

    # -- collectors ----------------------------------------------------------

    def add_collector(self, collector) -> None:
        """Register a callable run before every read of the registry.

        Collectors let a hot path accumulate in its own cheap structures
        (plain dicts, numpy arrays) and settle the registry lazily: each
        one runs at the top of :meth:`families` — and therefore before
        every :meth:`snapshot`, Prometheus exposition, and scrape — so
        readers always see settled values while writers never pay
        per-observation instrument costs.
        """
        if collector not in self._collectors:
            self._collectors.append(collector)

    def remove_collector(self, collector) -> None:
        """Unregister *collector* (no-op when absent)."""
        try:
            self._collectors.remove(collector)
        except ValueError:
            pass

    # -- instrument accessors ------------------------------------------------

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """The counter *name* (created on first use)."""
        return self._get(name, "counter", help, None, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """The gauge *name* (created on first use)."""
        return self._get(name, "gauge", help, None, labels)

    def histogram(
        self, name: str, help: str = "", *,
        buckets=None, **labels,
    ) -> Histogram:
        """The histogram *name* (created on first use).

        ``buckets=None`` means "use the family's edges" (the family
        itself defaults to :data:`DEFAULT_TIME_BUCKETS`). Explicit
        *buckets* set the family default on first use of the name and
        override the edges for a *child* being created — so one family
        can hold tick-scale and train-scale children side by side.
        Buckets never re-shape an existing child.
        """
        edges = None if buckets is None else tuple(buckets)
        return self._get(name, "histogram", help, edges, labels)

    # -- introspection -------------------------------------------------------

    def families(self):
        """Registered families, sorted by metric name.

        Runs registered collectors first so lazily-settled metrics are
        current for whoever is reading (snapshot, exposition, scrape).
        """
        for collector in list(self._collectors):
            collector()
        return [self._families[k] for k in sorted(self._families)]

    def snapshot(self) -> dict:
        """JSON-safe dump: ``{name: {kind, help, series: [...]}}``."""
        out = {}
        for family in self.families():
            series = []
            for labels, inst in sorted(family.children.items()):
                entry: dict = {"labels": dict(labels)}
                if family.kind == "histogram":
                    entry["count"] = inst.count
                    entry["sum"] = inst.sum
                    entry["buckets"] = dict(
                        zip(
                            [*map(str, inst.buckets), "+Inf"],
                            inst.cumulative_counts(),
                        )
                    )
                else:
                    entry["value"] = inst.value
                series.append(entry)
            out[family.name] = {
                "kind": family.kind, "help": family.help, "series": series,
            }
        return out

    # -- internals -----------------------------------------------------------

    def _get(self, name, kind, help_text, buckets, labels):
        family = self._families.get(name)
        if family is None:
            if not _NAME_RE.match(name):
                raise ConfigurationError(f"invalid metric name {name!r}")
            for key in labels:
                if not _LABEL_RE.match(key):
                    raise ConfigurationError(f"invalid label name {key!r}")
            family = _Family(name, kind, help_text, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        if kind == "histogram":
            return family.child(key, buckets)
        return family.child(key)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram((1.0,))


class NullRegistry(MetricsRegistry):
    """No-op registry: hands out shared inert instruments."""

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, help: str = "", *,
        buckets=None, **labels,
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def families(self):
        return []

    def snapshot(self) -> dict:
        return {}

    def add_collector(self, collector) -> None:
        pass

    def remove_collector(self, collector) -> None:
        pass


#: Shared inert registry (what disabled telemetry exposes).
NULL_REGISTRY = NullRegistry()
