"""Phase-level tracing spans for the serving hot paths.

A *span* measures one named phase of work — one ``with`` block around a
kernel (``tick.knn_query``, ``train.pca_eigh``, ...) — and records its
wall time and the number of items it covered. The :class:`Tracer`
aggregates per phase name (call count, total/min/max seconds, total and
last batch size) and mirrors every observation into the owning
registry as a ``repro_span_seconds`` histogram plus
``repro_span_batch_total`` counter, so span data travels through the
same exporters as every other metric.

Spans are deliberately synchronous and un-nested-aware: the serving
engines are single-threaded batch kernels, so a stack of span contexts
(parent ids, trace ids) would be bookkeeping without a consumer. If a
span's body raises, the time up to the raise is still recorded — a
phase that dies slowly should look slow.

:data:`NULL_TRACER` is the disabled counterpart: ``span()`` returns a
shared inert context manager and never reads the clock.
"""

from __future__ import annotations

from time import perf_counter

from repro.obs.quantiles import PhaseQuantiles
from repro.obs.registry import (
    TRAIN_TIME_BUCKETS,
    MetricsRegistry,
)

__all__ = ["Span", "PhaseStats", "Tracer", "NullTracer", "NULL_TRACER"]


class PhaseStats:
    """Aggregate of every completed span with one name."""

    __slots__ = (
        "count", "total_seconds", "min_seconds", "max_seconds",
        "last_seconds", "batch_total", "last_batch",
    )

    def __init__(self) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0
        self.last_seconds = 0.0
        self.batch_total = 0
        self.last_batch = 0

    def add(self, seconds: float, batch: int | None) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        self.last_seconds = seconds
        if batch is not None:
            self.batch_total += batch
            self.last_batch = batch

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
            "last_seconds": self.last_seconds,
            "batch_total": self.batch_total,
            "last_batch": self.last_batch,
        }


class Span:
    """One timed phase; use as a context manager."""

    __slots__ = ("_tracer", "name", "batch", "_t0")

    def __init__(self, tracer: "Tracer", name: str, batch: int | None):
        self._tracer = tracer
        self.name = name
        self.batch = batch
        self._t0 = 0.0

    def set_batch(self, batch: int) -> None:
        """Set the item count after the fact (inside the ``with`` body)."""
        self.batch = batch

    def __enter__(self) -> "Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.record(self.name, perf_counter() - self._t0, self.batch)


class Tracer:
    """Per-phase span aggregation bound to one registry.

    Beyond the sum/count :class:`PhaseStats` and the registry mirror,
    every observation feeds a streaming p50/p95/p99 digest
    (:class:`~repro.obs.quantiles.PhaseQuantiles`) and, when a flight
    recorder is attached, lands as a per-occurrence
    :class:`~repro.obs.flight.SpanRecord` in its ring. ``train.*``
    spans use :data:`~repro.obs.registry.TRAIN_TIME_BUCKETS` inside the
    shared ``repro_span_seconds`` family; everything else keeps the
    tick-scale default edges.
    """

    def __init__(self, registry: MetricsRegistry, flight=None):
        self._registry = registry
        self._flight = flight
        self._phases: dict[str, PhaseStats] = {}
        self._quantiles: dict[str, PhaseQuantiles] = {}
        # (stats, quantiles, histogram, counter) cached per (name, shard)
        # — the registry lookup (sort + dict hops) and even separate
        # stats/quantile dict reads are measurable at tick rate.
        self._cache: dict[tuple, tuple] = {}

    def attach_flight(self, flight) -> None:
        """Feed per-occurrence records into *flight* from now on."""
        self._flight = flight

    @property
    def flight(self):
        return self._flight

    def span(self, name: str, *, batch: int | None = None) -> Span:
        """A new span for phase *name* covering *batch* items."""
        return Span(self, name, batch)

    def _entry(self, name: str, shard: int | None) -> tuple:
        """Build (and cache) one (stats, quantiles, hist, counter) row."""
        stats = self._phases.get(name)
        if stats is None:
            stats = self._phases[name] = PhaseStats()
            self._quantiles[name] = PhaseQuantiles()
        labels = {"span": name}
        if shard is not None:
            labels["shard"] = str(shard)
        buckets = TRAIN_TIME_BUCKETS if name.startswith("train.") else None
        hist = self._registry.histogram(
            "repro_span_seconds",
            "Wall time per tracing span.",
            buckets=buckets,
            **labels,
        )
        counter = self._registry.counter(
            "repro_span_batch_total",
            "Items covered by tracing spans.",
            **labels,
        )
        entry = (stats, self._quantiles[name], hist, counter)
        self._cache[(name, shard)] = entry
        return entry

    def record(
        self,
        name: str,
        seconds: float,
        batch: int | None = None,
        *,
        start: float | None = None,
    ) -> None:
        """Record one completed phase directly (what spans call on exit).

        The hot loops use this with their own ``perf_counter()`` reads
        when a ``with`` block per phase would cost more than the phase's
        bookkeeping. *start* (a ``perf_counter()`` value) places the
        record exactly on the flight timeline; when omitted the record
        is assumed to have just ended.
        """
        entry = self._cache.get((name, None))
        if entry is None:
            entry = self._entry(name, None)
        stats, quantiles, hist, counter = entry
        stats.add(seconds, batch)
        quantiles.observe(seconds)
        hist.observe(seconds)
        if batch is not None:
            counter.inc(batch)
        if self._flight is not None:
            if start is None:
                start = perf_counter() - seconds
            self._flight.record(name, start, seconds, batch)

    def record_shard(
        self,
        name: str,
        seconds: float,
        *,
        batch: int | None = None,
        shard: int = 0,
        start: float | None = None,
    ) -> None:
        """Record a phase that ran inside shard worker *shard*.

        Aggregates (:class:`PhaseStats`, quantiles) fold into the plain
        phase name so sharded and single-process bursts stay comparable;
        the registry mirror and the flight ring carry the shard label so
        exports can decompose a burst per worker.
        """
        entry = self._cache.get((name, shard))
        if entry is None:
            entry = self._entry(name, shard)
        stats, quantiles, hist, counter = entry
        stats.add(seconds, batch)
        quantiles.observe(seconds)
        hist.observe(seconds)
        if batch is not None:
            counter.inc(batch)
        if self._flight is not None:
            if start is None:
                start = perf_counter() - seconds
            self._flight.record(name, start, seconds, batch, shard)

    def stats(self) -> dict[str, PhaseStats]:
        """Live per-phase aggregates (insertion-ordered by first use)."""
        return dict(self._phases)

    def quantiles(self) -> dict[str, PhaseQuantiles]:
        """Live per-phase streaming digests (same keys as :meth:`stats`)."""
        return dict(self._quantiles)

    def snapshot(self) -> dict:
        """JSON-safe per-phase aggregates."""
        return {name: s.as_dict() for name, s in self._phases.items()}

    def quantiles_snapshot(self) -> dict:
        """JSON-safe per-phase quantile estimates.

        Kept separate from :meth:`snapshot` so existing consumers of
        the span-aggregate document shape are unaffected.
        """
        return {
            name: {"count": q.count, **q.estimates()}
            for name, q in self._quantiles.items()
        }

    def render(self) -> str:
        """Fixed-width phase table (sorted by total time, descending)."""
        from repro.experiments.report import format_table

        rows = [
            [
                name,
                s.count,
                s.total_seconds,
                1e3 * s.total_seconds / s.count if s.count else 0.0,
                s.batch_total,
                s.batch_total / s.total_seconds if s.total_seconds else 0.0,
            ]
            for name, s in sorted(
                self._phases.items(),
                key=lambda item: -item[1].total_seconds,
            )
        ]
        return format_table(
            ["phase", "calls", "total s", "mean ms", "items", "items/sec"],
            rows,
            precision=3,
            title="Phase spans",
        )

    def render_quantiles(self) -> str:
        """Fixed-width tail-latency table (p50/p95/p99 ms per phase)."""
        from repro.experiments.report import format_table

        rows = []
        for name, q in sorted(
            self._quantiles.items(),
            key=lambda item: -self._phases[item[0]].total_seconds,
        ):
            est = q.estimates()
            rows.append(
                [
                    name,
                    q.count,
                    1e3 * est.get("p50", 0.0),
                    1e3 * est.get("p95", 0.0),
                    1e3 * est.get("p99", 0.0),
                ]
            )
        return format_table(
            ["phase", "obs", "p50 ms", "p95 ms", "p99 ms"],
            rows,
            precision=3,
            title="Phase latency quantiles",
        )


class _NullSpan:
    __slots__ = ()

    def set_batch(self, batch: int) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: never reads the clock, aggregates nothing."""

    flight = None

    def span(self, name: str, *, batch: int | None = None) -> _NullSpan:
        return _NULL_SPAN

    def attach_flight(self, flight) -> None:
        pass

    def record(
        self,
        name: str,
        seconds: float,
        batch: int | None = None,
        *,
        start: float | None = None,
    ) -> None:
        pass

    def record_shard(
        self,
        name: str,
        seconds: float,
        *,
        batch: int | None = None,
        shard: int = 0,
        start: float | None = None,
    ) -> None:
        pass

    def stats(self) -> dict:
        return {}

    def quantiles(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {}

    def quantiles_snapshot(self) -> dict:
        return {}

    def render(self) -> str:
        return "Phase spans\n(telemetry disabled)"

    def render_quantiles(self) -> str:
        return "Phase latency quantiles\n(telemetry disabled)"


#: Shared inert tracer (what disabled telemetry exposes).
NULL_TRACER = NullTracer()
