"""Phase-level tracing spans for the serving hot paths.

A *span* measures one named phase of work — one ``with`` block around a
kernel (``tick.knn_query``, ``train.pca_eigh``, ...) — and records its
wall time and the number of items it covered. The :class:`Tracer`
aggregates per phase name (call count, total/min/max seconds, total and
last batch size) and mirrors every observation into the owning
registry as a ``repro_span_seconds`` histogram plus
``repro_span_batch_total`` counter, so span data travels through the
same exporters as every other metric.

Spans are deliberately synchronous and un-nested-aware: the serving
engines are single-threaded batch kernels, so a stack of span contexts
(parent ids, trace ids) would be bookkeeping without a consumer. If a
span's body raises, the time up to the raise is still recorded — a
phase that dies slowly should look slow.

:data:`NULL_TRACER` is the disabled counterpart: ``span()`` returns a
shared inert context manager and never reads the clock.
"""

from __future__ import annotations

from time import perf_counter

from repro.obs.registry import MetricsRegistry

__all__ = ["Span", "PhaseStats", "Tracer", "NullTracer", "NULL_TRACER"]


class PhaseStats:
    """Aggregate of every completed span with one name."""

    __slots__ = (
        "count", "total_seconds", "min_seconds", "max_seconds",
        "last_seconds", "batch_total", "last_batch",
    )

    def __init__(self) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0
        self.last_seconds = 0.0
        self.batch_total = 0
        self.last_batch = 0

    def add(self, seconds: float, batch: int | None) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        self.last_seconds = seconds
        if batch is not None:
            self.batch_total += batch
            self.last_batch = batch

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
            "last_seconds": self.last_seconds,
            "batch_total": self.batch_total,
            "last_batch": self.last_batch,
        }


class Span:
    """One timed phase; use as a context manager."""

    __slots__ = ("_tracer", "name", "batch", "_t0")

    def __init__(self, tracer: "Tracer", name: str, batch: int | None):
        self._tracer = tracer
        self.name = name
        self.batch = batch
        self._t0 = 0.0

    def set_batch(self, batch: int) -> None:
        """Set the item count after the fact (inside the ``with`` body)."""
        self.batch = batch

    def __enter__(self) -> "Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.record(self.name, perf_counter() - self._t0, self.batch)


class Tracer:
    """Per-phase span aggregation bound to one registry."""

    def __init__(self, registry: MetricsRegistry):
        self._registry = registry
        self._phases: dict[str, PhaseStats] = {}

    def span(self, name: str, *, batch: int | None = None) -> Span:
        """A new span for phase *name* covering *batch* items."""
        return Span(self, name, batch)

    def record(
        self, name: str, seconds: float, batch: int | None = None
    ) -> None:
        """Record one completed phase directly (what spans call on exit).

        The hot loops use this with their own ``perf_counter()`` reads
        when a ``with`` block per phase would cost more than the phase's
        bookkeeping.
        """
        stats = self._phases.get(name)
        if stats is None:
            stats = self._phases[name] = PhaseStats()
        stats.add(seconds, batch)
        self._registry.histogram(
            "repro_span_seconds", "Wall time per tracing span.", span=name
        ).observe(seconds)
        if batch is not None:
            self._registry.counter(
                "repro_span_batch_total",
                "Items covered by tracing spans.",
                span=name,
            ).inc(batch)

    def stats(self) -> dict[str, PhaseStats]:
        """Live per-phase aggregates (insertion-ordered by first use)."""
        return dict(self._phases)

    def snapshot(self) -> dict:
        """JSON-safe per-phase aggregates."""
        return {name: s.as_dict() for name, s in self._phases.items()}

    def render(self) -> str:
        """Fixed-width phase table (sorted by total time, descending)."""
        from repro.experiments.report import format_table

        rows = [
            [
                name,
                s.count,
                s.total_seconds,
                1e3 * s.total_seconds / s.count if s.count else 0.0,
                s.batch_total,
                s.batch_total / s.total_seconds if s.total_seconds else 0.0,
            ]
            for name, s in sorted(
                self._phases.items(),
                key=lambda item: -item[1].total_seconds,
            )
        ]
        return format_table(
            ["phase", "calls", "total s", "mean ms", "items", "items/sec"],
            rows,
            precision=3,
            title="Phase spans",
        )

class _NullSpan:
    __slots__ = ()

    def set_batch(self, batch: int) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: never reads the clock, aggregates nothing."""

    def span(self, name: str, *, batch: int | None = None) -> _NullSpan:
        return _NULL_SPAN

    def record(
        self, name: str, seconds: float, batch: int | None = None
    ) -> None:
        pass

    def stats(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {}

    def render(self) -> str:
        return "Phase spans\n(telemetry disabled)"


#: Shared inert tracer (what disabled telemetry exposes).
NULL_TRACER = NullTracer()
