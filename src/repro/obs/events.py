"""Bounded structured event log for fleet lifecycle moments.

Metrics aggregate; events *narrate*. A QA breach folded into a counter
tells you how many breaches happened — the event log tells you which
stream, at which tick, at what window MSE, and whether the retrain it
ordered ran or was deferred by the budget. The log is a fixed-capacity
ring: old events fall off (counted, not silently), so a fleet serving
millions of ticks holds a bounded tail of recent history.

Event kinds emitted by the serving stack (``repro.serving.fleet``):

=====================  ====================================================
kind                   meaning (``data`` payload keys)
=====================  ====================================================
``stream_add``         stream registered
``stream_remove``      stream dropped
``qa_breach``          an audit breached the threshold (``window_mse``)
``train_order``        warm-up complete, initial training scheduled
``retrain_order``      QA latched a breach, retrain scheduled
``retrain_deferred``   budget passed over a due stream this round
``train_complete``     initial training ran
``retrain_complete``   QA-ordered retrain ran
=====================  ====================================================

Every event carries the fleet's ingest-tick index and the stream name,
so the ring can be joined against span timings and counters on either
axis.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter, time
from typing import NamedTuple

from repro.exceptions import ConfigurationError

__all__ = ["Event", "EventLog", "NullEventLog", "NULL_EVENT_LOG"]


class Event(NamedTuple):
    """One structured log entry.

    A NamedTuple rather than a dataclass: the serving hot path emits
    one of these per audited stream per tick, and tuple construction
    is what keeps the telemetry overhead gate honest.

    Attributes
    ----------
    seq:
        Monotone sequence number (survives ring eviction — gaps at the
        head mean events were dropped).
    kind:
        Event type tag (see the module table).
    tick:
        Fleet ingest-tick index at emission time.
    stream:
        Stream name, or ``None`` for fleet-wide events.
    data:
        Kind-specific payload.
    wall:
        Wall-clock seconds (``time.time()``) at emission — correlates
        flight dumps with external logs. ``0.0`` on records loaded from
        pre-upgrade snapshots.
    mono:
        Monotonic seconds (``time.perf_counter()``) at emission — same
        timebase as flight-recorder span starts, so events can sit on
        the Chrome-trace timeline. ``0.0`` on pre-upgrade records.
    """

    seq: int
    kind: str
    tick: int
    stream: str | None = None
    data: dict = {}
    wall: float = 0.0
    mono: float = 0.0

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "tick": self.tick,
            "stream": self.stream,
            "data": dict(self.data),
            "wall": self.wall,
            "mono": self.mono,
        }


class EventLog:
    """Fixed-capacity ring of :class:`Event` records."""

    def __init__(self, capacity: int = 1024):
        if not isinstance(capacity, int) or capacity < 1:
            raise ConfigurationError(
                f"event log capacity must be a positive integer, "
                f"got {capacity!r}"
            )
        self.capacity = capacity
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0

    def emit(
        self, kind: str, *, tick: int = 0, stream: str | None = None, **data
    ) -> Event:
        """Append one event (evicting the oldest when full)."""
        event = Event(
            seq=self._seq,
            kind=kind,
            tick=tick,
            stream=stream,
            data=data,
            wall=time(),
            mono=perf_counter(),
        )
        self._seq += 1
        if len(self._ring) == self.capacity:
            self._dropped += 1
        self._ring.append(event)
        return event

    # -- reading -------------------------------------------------------------

    @property
    def total_emitted(self) -> int:
        """Events ever emitted (including evicted ones)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self):
        return iter(tuple(self._ring))

    def records(
        self, *, kind: str | None = None, stream: str | None = None
    ) -> tuple[Event, ...]:
        """Retained events, oldest first, optionally filtered."""
        return tuple(
            e
            for e in self._ring
            if (kind is None or e.kind == kind)
            and (stream is None or e.stream == stream)
        )

    def tail(self, n: int = 10) -> tuple[Event, ...]:
        """The *n* most recent events, oldest first."""
        if n <= 0:
            return ()
        return tuple(self._ring)[-n:]

    def snapshot(self) -> dict:
        """JSON-safe dump of the retained ring plus loss accounting."""
        return {
            "capacity": self.capacity,
            "total_emitted": self._seq,
            "dropped": self._dropped,
            "events": [e.as_dict() for e in self._ring],
        }

    @classmethod
    def from_snapshot(cls, doc: dict) -> "EventLog":
        """Rebuild a log from a :meth:`snapshot` document.

        Tolerates pre-upgrade snapshots whose events carry no
        ``wall``/``mono`` stamps (they load as ``0.0``).
        """
        log = cls(capacity=int(doc.get("capacity", 1024)))
        for entry in doc.get("events", ()):
            log._ring.append(
                Event(
                    seq=int(entry["seq"]),
                    kind=entry["kind"],
                    tick=int(entry.get("tick", 0)),
                    stream=entry.get("stream"),
                    data=dict(entry.get("data", {})),
                    wall=float(entry.get("wall", 0.0)),
                    mono=float(entry.get("mono", 0.0)),
                )
            )
        log._seq = int(doc.get("total_emitted", len(log._ring)))
        log._dropped = int(doc.get("dropped", 0))
        return log

    def clear(self) -> None:
        """Drop retained events (sequence numbering continues)."""
        self._ring.clear()

    def __repr__(self) -> str:
        return (
            f"EventLog(capacity={self.capacity}, retained={len(self._ring)}, "
            f"total_emitted={self._seq}, dropped={self._dropped})"
        )


class NullEventLog(EventLog):
    """No-op event log: emits vanish, reads are empty."""

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def emit(
        self, kind: str, *, tick: int = 0, stream: str | None = None, **data
    ) -> None:  # type: ignore[override]
        return None


#: Shared inert event log (what disabled telemetry exposes).
NULL_EVENT_LOG = NullEventLog()
