"""Streaming quantile digests for phase latencies (P² algorithm).

The tracer's :class:`~repro.obs.tracing.PhaseStats` keeps sums and
extrema; histograms keep fixed-bucket counts. Neither answers "what is
p99 tick latency right now?" without choosing bucket edges in advance.
:class:`P2Quantile` estimates one quantile online in O(1) memory and
O(1) time per observation using the P² algorithm (Jain & Chlamtac,
CACM 1985): five markers track the running min, max, target quantile
and its two flanking quantiles; each observation nudges marker heights
toward their desired positions with a piecewise-parabolic (falling back
to linear) adjustment.

:class:`PhaseQuantiles` bundles the three digests the serving stack
cares about (p50/p95/p99) per phase name; :class:`Tracer` feeds one per
span name so ``repro obs --quantiles`` and flight dumps can report tail
latency without a second pass over the data.

Accuracy is approximate (typically within a few percent of the true
sample quantile for smooth distributions); the first five observations
are exact, and estimates on fewer than five observations interpolate
the sorted bootstrap buffer directly.
"""

from __future__ import annotations

from bisect import insort

from repro.exceptions import ConfigurationError

__all__ = ["P2Quantile", "PhaseQuantiles", "DEFAULT_QUANTILES"]

#: The quantiles a :class:`PhaseQuantiles` bundle tracks by default.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


class P2Quantile:
    """One streaming quantile estimate (P², Jain & Chlamtac 1985)."""

    __slots__ = ("q", "_count", "_heights", "_positions", "_d0", "_rates")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(
                f"quantile must be strictly inside (0, 1), got {q!r}"
            )
        self.q = q
        self._count = 0
        # Until five observations arrive, _heights doubles as the sorted
        # bootstrap buffer; afterwards it holds the five marker heights.
        self._heights: list[float] = []
        self._positions = [0, 1, 2, 3, 4]
        # Desired marker positions are closed-form — d0 + (n - 5) * rate
        # after n observations — so the hot path never updates them.
        self._d0 = (0.0, 2.0 * q, 4.0 * q, 2.0 + 2.0 * q, 4.0)
        self._rates = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    @property
    def count(self) -> int:
        """Observations absorbed so far."""
        return self._count

    def observe(self, value: float) -> None:
        """Absorb one observation."""
        value = float(value)
        n = self._count = self._count + 1
        if n <= 5:
            insort(self._heights, value)
            return

        h, pos = self._heights, self._positions
        # Locate the cell the observation falls into, stretching the
        # extreme markers when it lands outside the current range.
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while value >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1

        # Nudge the three interior markers toward their desired positions.
        m = n - 5
        d0, rates = self._d0, self._rates
        for i in (1, 2, 3):
            d = d0[i] + m * rates[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1
            ):
                step = 1 if d >= 1.0 else -1
                candidate = _parabolic(h, pos, i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = _linear(h, pos, i, step)
                pos[i] += step

    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation)."""
        n = self._count
        if n == 0:
            return 0.0
        if n <= 5:
            # Exact: interpolate the sorted bootstrap buffer.
            rank = self.q * (n - 1)
            lo = int(rank)
            hi = min(lo + 1, n - 1)
            frac = rank - lo
            return self._heights[lo] * (1.0 - frac) + self._heights[hi] * frac
        return self._heights[2]


def _parabolic(h, pos, i, step):
    """Piecewise-parabolic (P²) height prediction for marker *i*."""
    num = step / (pos[i + 1] - pos[i - 1])
    left = (pos[i] - pos[i - 1] + step) * (h[i + 1] - h[i]) / (
        pos[i + 1] - pos[i]
    )
    right = (pos[i + 1] - pos[i] - step) * (h[i] - h[i - 1]) / (
        pos[i] - pos[i - 1]
    )
    return h[i] + num * (left + right)


def _linear(h, pos, i, step):
    """Linear fallback when the parabolic prediction leaves the cell."""
    return h[i] + step * (h[i + step] - h[i]) / (pos[i + step] - pos[i])


class PhaseQuantiles:
    """A p50/p95/p99 digest bundle for one phase name."""

    __slots__ = ("_digests",)

    def __init__(self, quantiles: tuple = DEFAULT_QUANTILES) -> None:
        self._digests = tuple(P2Quantile(q) for q in quantiles)

    def observe(self, value: float) -> None:
        for digest in self._digests:
            digest.observe(value)

    @property
    def count(self) -> int:
        for digest in self._digests:
            return digest.count
        return 0

    def estimates(self) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` current values."""
        return {_plabel(d.q): d.value() for d in self._digests}


def _plabel(q: float) -> str:
    pct = q * 100.0
    if pct == int(pct):
        return f"p{int(pct)}"
    return f"p{pct:g}".replace(".", "_")
