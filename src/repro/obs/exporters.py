"""Exporters: Prometheus text exposition and JSON snapshots.

Two consumer shapes cover the deployment stories the ROADMAP cares
about:

* **Prometheus text exposition** (:func:`prometheus_text`) — the
  scrape-endpoint format (version 0.0.4): ``# HELP`` / ``# TYPE``
  comments, one ``name{labels} value`` sample per line, histograms as
  cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
  :func:`serve_prometheus` puts a live stdlib HTTP endpoint in front of
  a registry (``repro fleet --prom-port``) so a real scraper can pull
  it; :func:`write_prometheus` remains the file-sidecar variant.
* **JSON snapshots** (:func:`json_snapshot`, :func:`write_json`) — the
  whole telemetry state (metrics, span aggregates, event ring) as one
  document for ad-hoc tooling and the ``repro fleet --stats-out`` /
  ``repro obs`` CLI surface.

:func:`parse_prometheus_text` is the matching minimal reader — it
exists so tests (and ``repro obs --check`` style tooling) can assert
that what we expose actually parses back to the numbers we exported,
not as a general Prometheus client.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

__all__ = [
    "prometheus_text",
    "parse_prometheus_text",
    "json_snapshot",
    "write_json",
    "write_prometheus",
    "serve_prometheus",
    "PrometheusEndpoint",
]


def _fmt_value(value: float) -> str:
    """Exposition-format number: integral floats render as integers."""
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _labels_text(labels: tuple, extra: tuple = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def prometheus_text(registry) -> str:
    """Render *registry* in the Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, inst in sorted(family.children.items()):
            if family.kind == "histogram":
                edges = [*(_fmt_value(b) for b in inst.buckets), "+Inf"]
                for edge, count in zip(edges, inst.cumulative_counts()):
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_labels_text(labels, (('le', edge),))} {count}"
                    )
                lines.append(
                    f"{family.name}_sum{_labels_text(labels)} "
                    f"{_fmt_value(inst.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_labels_text(labels)} {inst.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_labels_text(labels)} "
                    f"{_fmt_value(inst.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)
_LABEL_UNESCAPE_RE = re.compile(r"\\(.)")
_UNESCAPE_MAP = {"\\": "\\", "n": "\n", '"': '"'}


def _unescape_label(raw: str) -> str:
    """Invert :func:`_escape_label` (one pass, so ``\\\\n`` stays literal)."""
    return _LABEL_UNESCAPE_RE.sub(
        lambda m: _UNESCAPE_MAP.get(m.group(1), m.group(0)), raw
    )


def parse_prometheus_text(text: str) -> dict:
    """Parse exposition *text* back into ``{(name, labels): value}``.

    *labels* is a sorted ``(key, value)`` tuple. Raises ``ValueError``
    on any line that is neither a comment, blank, nor a well-formed
    sample — the point is to *validate* our own exporter's output.
    """
    samples: dict[tuple, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line {lineno}: {line!r}")
        labels = []
        body = match.group("labels")
        if body:
            pos = 0
            while pos < len(body):
                pair = _LABEL_PAIR_RE.match(body, pos)
                if pair is None:
                    raise ValueError(
                        f"unparseable label set on line {lineno}: {body!r}"
                    )
                labels.append(
                    (pair.group("key"), _unescape_label(pair.group("value")))
                )
                pos = pair.end()
        value_text = match.group("value")
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"unparseable sample value on line {lineno}: {value_text!r}"
            ) from None
        samples[(match.group("name"), tuple(sorted(labels)))] = value
    return samples


def json_snapshot(telemetry, *, extra: dict | None = None) -> dict:
    """One JSON-safe document for *telemetry* (plus optional extras).

    *extra* entries (e.g. a fleet metrics dump) are merged at the top
    level alongside the ``telemetry`` key.
    """
    doc = {"telemetry": telemetry.snapshot()}
    if extra:
        doc.update(extra)
    return doc


def write_json(path, telemetry, *, extra: dict | None = None) -> Path:
    """Write :func:`json_snapshot` to *path*; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(json_snapshot(telemetry, extra=extra), indent=2) + "\n"
    )
    return path


def write_prometheus(path, registry) -> Path:
    """Write :func:`prometheus_text` to *path*; returns the path."""
    path = Path(path)
    path.write_text(prometheus_text(registry))
    return path


class PrometheusEndpoint:
    """A live scrape endpoint wrapping one registry.

    Handle returned by :func:`serve_prometheus`: exposes the bound
    ``port``/``url`` and shuts the server down on :meth:`close` (or
    ``with`` exit). The server runs on a daemon thread, so a process
    that forgets to close still exits cleanly.
    """

    def __init__(self, server, thread) -> None:
        self._server = server
        self._thread = thread
        self.host, self.port = server.server_address[:2]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._thread.join(timeout=5.0)
            self._server = None

    def __enter__(self) -> "PrometheusEndpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._server is None else self.url
        return f"PrometheusEndpoint({state})"


def serve_prometheus(registry, *, host: str = "127.0.0.1", port: int = 0):
    """Serve *registry* live over HTTP in the exposition format.

    Stdlib only (``http.server`` on a daemon thread): ``/metrics`` and
    ``/`` answer with :func:`prometheus_text` rendered at scrape time,
    ``/healthz`` answers ``ok`` (a liveness probe that skips rendering),
    anything else is a 404. Every scrape sets a
    ``repro_scrape_timestamp_seconds`` gauge to the wall clock, so a
    scraper comparing it against its own clock can tell a wedged fleet
    (stale metrics, fresh timestamp) from a dead endpoint (no answer).
    ``port=0`` binds an ephemeral port — read it back from the returned
    :class:`PrometheusEndpoint`.
    """
    # Imported here: the exporters module is on fleet import paths that
    # never serve HTTP, and http.server pulls in socketserver + email.
    import threading
    import time as _time
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                body = b"ok\n"
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return
            if path not in ("/", "/metrics"):
                self.send_error(404, "metrics live at /metrics")
                return
            registry.gauge(
                "repro_scrape_timestamp_seconds",
                "Wall-clock time of the most recent scrape.",
            ).set(_time.time())
            body = prometheus_text(registry).encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # scrapes every few seconds would spam stderr

    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever,
        name="repro-prometheus-endpoint",
        daemon=True,
    )
    thread.start()
    return PrometheusEndpoint(server, thread)
