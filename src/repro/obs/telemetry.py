"""The telemetry facade: one object bundling registry, tracer, events.

Instrumented components hold a single ``Telemetry`` reference (or
``None`` when telemetry is off) and reach its three legs:

* :attr:`Telemetry.registry` — the metrics registry
  (:class:`~repro.obs.registry.MetricsRegistry`);
* :attr:`Telemetry.tracer` — phase spans
  (:class:`~repro.obs.tracing.Tracer`), aggregating into the registry;
* :attr:`Telemetry.events` — the bounded structured event ring
  (:class:`~repro.obs.events.EventLog`).

:class:`NullTelemetry` (singleton :data:`NULL_TELEMETRY`) is the same
shape with all three legs inert, so a caller handed "whatever the fleet
exposes" can snapshot/export unconditionally. Inside the serving hot
loops the convention is stricter: disabled telemetry is ``None`` and
hooks sit behind an ``is not None`` check, so the disabled cost is one
attribute load and a branch.
"""

from __future__ import annotations

from repro.obs.events import NULL_EVENT_LOG, EventLog
from repro.obs.flight import FlightRecorder
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Tracer

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY"]


class Telemetry:
    """Live telemetry: a registry, a tracer feeding it, an event ring.

    Parameters
    ----------
    registry:
        Share an existing registry (e.g. several fleets exporting to one
        scrape endpoint); defaults to a fresh one.
    event_capacity:
        Ring size of the structured event log.
    flight:
        ``True`` attaches a :class:`~repro.obs.flight.FlightRecorder`
        (the fourth leg, ``.flight``) so every span occurrence lands in
        its ring; defaults to off, and :meth:`enable_flight` can attach
        one later.
    flight_capacity:
        Ring size of the flight recorder when enabled.
    """

    enabled = True

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        event_capacity: int = 1024,
        flight: bool = False,
        flight_capacity: int = 4096,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.flight = FlightRecorder(flight_capacity) if flight else None
        self.tracer = Tracer(self.registry, self.flight)
        self.events = EventLog(event_capacity)

    def enable_flight(self, capacity: int = 4096) -> FlightRecorder:
        """Attach a flight recorder (idempotent); returns the recorder."""
        if self.flight is None:
            self.flight = FlightRecorder(capacity)
            self.tracer.attach_flight(self.flight)
        return self.flight

    @staticmethod
    def disabled() -> "NullTelemetry":
        """The shared inert telemetry object."""
        return NULL_TELEMETRY

    def snapshot(self) -> dict:
        """JSON-safe dump of all legs."""
        doc = {
            "enabled": True,
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.snapshot(),
            "events": self.events.snapshot(),
        }
        if self.flight is not None:
            doc["flight"] = self.flight.snapshot()
        return doc

    def __repr__(self) -> str:
        return (
            f"Telemetry(metrics={len(self.registry.families())}, "
            f"spans={len(self.tracer.stats())}, "
            f"events={len(self.events)})"
        )


class NullTelemetry(Telemetry):
    """Telemetry-shaped null object: every leg is a shared no-op."""

    enabled = False
    flight = None

    def __init__(self) -> None:
        self.registry = NULL_REGISTRY
        self.tracer = NULL_TRACER
        self.events = NULL_EVENT_LOG

    def enable_flight(self, capacity: int = 4096) -> None:
        return None

    def snapshot(self) -> dict:
        return {"enabled": False}

    def __repr__(self) -> str:
        return "NullTelemetry()"


#: The shared inert telemetry instance.
NULL_TELEMETRY = NullTelemetry()
