"""Near-zero-overhead telemetry for the serving stack (``repro.obs``).

The Prediction Quality Assuror already monitors the *model* (paper
§3.2); this package monitors the *system serving it*: where a fleet
tick spends its time, how often QA audits breach, which retrains the
budget deferred. Three legs, bundled by :class:`Telemetry`:

* a process-local metrics registry — counters, gauges, fixed-bucket
  histograms (:mod:`repro.obs.registry`);
* phase-level tracing spans over the batched tick/train engines and
  their per-stream fallbacks (:mod:`repro.obs.tracing`);
* a bounded structured event log (:mod:`repro.obs.events`);
* an optional flight recorder — a bounded ring of per-occurrence span
  records with streaming p50/p95/p99 digests, an anomaly trigger that
  dumps the ring on QA-breach storms / latency spikes / broken worker
  pools, and a Chrome trace-event exporter (:mod:`repro.obs.flight`,
  :mod:`repro.obs.quantiles`);

plus exporters (:mod:`repro.obs.exporters`): Prometheus text exposition
and JSON snapshots.

Enable it on a fleet with ``PredictionFleet(config, telemetry=True)``;
when disabled (the default) the serving hot loops skip instrumentation
behind a single attribute check, and :data:`NULL_TELEMETRY` stands in
so exporters and snapshots still work unconditionally.
"""

from repro.obs.events import NULL_EVENT_LOG, Event, EventLog, NullEventLog
from repro.obs.flight import (
    AnomalyTrigger,
    FlightRecorder,
    SpanRecord,
    chrome_trace,
    write_chrome_trace,
)
from repro.obs.quantiles import DEFAULT_QUANTILES, P2Quantile, PhaseQuantiles
from repro.obs.exporters import (
    PrometheusEndpoint,
    json_snapshot,
    parse_prometheus_text,
    prometheus_text,
    serve_prometheus,
    write_json,
    write_prometheus,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    TRAIN_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.obs.tracing import NULL_TRACER, NullTracer, PhaseStats, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
    "TRAIN_TIME_BUCKETS",
    "SpanRecord",
    "FlightRecorder",
    "AnomalyTrigger",
    "chrome_trace",
    "write_chrome_trace",
    "P2Quantile",
    "PhaseQuantiles",
    "DEFAULT_QUANTILES",
    "Span",
    "PhaseStats",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Event",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "prometheus_text",
    "parse_prometheus_text",
    "json_snapshot",
    "write_json",
    "write_prometheus",
    "serve_prometheus",
    "PrometheusEndpoint",
]
